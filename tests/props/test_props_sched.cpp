// Property suite: scheduler feasibility — simplex projection and unit
// mapping never exceed their budgets and conserve symbols.
#include "sched/allocate.h"
#include "sched/unitmap.h"
#include "support/proptest.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <vector>

namespace w4k {
namespace {

using proptest::prop_assert;

TEST(PropsSched, SimplexProjectionIsFeasible) {
  W4K_PROP("sched.simplex-feasible", [](Rng& rng) {
    const std::size_t n = 1 + rng.below(24);
    const double budget = rng.uniform(1e-4, 0.05);
    std::vector<double> t(n);
    for (auto& v : t) v = rng.uniform(-0.02, 0.05);
    sched::project_to_simplex(t, budget);
    double sum = 0.0;
    for (double v : t) {
      prop_assert(v >= 0.0, "negative entry " + std::to_string(v));
      sum += v;
    }
    prop_assert(sum <= budget + 1e-9,
                "sum " + std::to_string(sum) + " > budget " +
                    std::to_string(budget));
  });
}

TEST(PropsSched, SimplexProjectionIsIdempotent) {
  W4K_PROP("sched.simplex-idempotent", [](Rng& rng) {
    const std::size_t n = 1 + rng.below(16);
    const double budget = rng.uniform(1e-4, 0.05);
    std::vector<double> t(n);
    for (auto& v : t) v = rng.uniform(-0.02, 0.05);
    sched::project_to_simplex(t, budget);
    std::vector<double> again = t;
    sched::project_to_simplex(again, budget);
    for (std::size_t i = 0; i < n; ++i)
      prop_assert(std::abs(again[i] - t[i]) <= 1e-9,
                  "projection moved an already-feasible point");
  });
}

// Random groups over random layer budgets: the greedy unit mapper must
// never assign more symbols from a (group, layer) than the byte budget
// allows, and each member's tally is the sum of its groups' assignments.
TEST(PropsSched, UnitMapRespectsBudgetsAndConservesSymbols) {
  W4K_PROP("sched.unitmap-budget", [](Rng& rng) {
    const std::size_t n_users = 1 + rng.below(5);
    const std::size_t symbol_size = 64 << rng.below(3);
    const int width = 16 * static_cast<int>(2 + rng.below(4));
    const int height = 16 * static_cast<int>(2 + rng.below(4));
    const auto units = sched::frame_units(width, height, symbol_size,
                                          1 + rng.below(16));

    // Random group structure: each group a random non-empty user subset.
    const std::size_t n_groups = 1 + rng.below(4);
    std::vector<sched::GroupSpec> groups(n_groups);
    std::vector<sched::LayerArray> bytes(n_groups);
    for (std::size_t g = 0; g < n_groups; ++g) {
      for (std::size_t u = 0; u < n_users; ++u)
        if (rng.chance(0.6)) groups[g].members.push_back(u);
      if (groups[g].members.empty())
        groups[g].members.push_back(rng.below(n_users));
      for (auto& b : bytes[g])
        b = rng.uniform(0.0, 40.0 * static_cast<double>(symbol_size));
    }

    const auto res =
        sched::map_to_units(groups, bytes, units, n_users, symbol_size);

    // Per-(group, layer) symbol spend within the byte budget.
    std::vector<sched::LayerArray> spent(n_groups, sched::LayerArray{});
    for (const auto& a : res.assignments) {
      prop_assert(a.group < n_groups && a.unit_index < units.size(),
                  "assignment indices out of range");
      const auto layer =
          static_cast<std::size_t>(units[a.unit_index].id.layer);
      spent[a.group][layer] += static_cast<double>(a.symbols);
    }
    for (std::size_t g = 0; g < n_groups; ++g)
      for (std::size_t l = 0; l < spent[g].size(); ++l) {
        const double budget_symbols =
            std::floor(bytes[g][l] / static_cast<double>(symbol_size));
        prop_assert(spent[g][l] <= budget_symbols + 1e-9,
                    "group " + std::to_string(g) + " layer " +
                        std::to_string(l) + " spent " +
                        std::to_string(spent[g][l]) + " of " +
                        std::to_string(budget_symbols));
      }

    // Conservation: user tallies equal membership-weighted assignments.
    for (std::size_t u = 0; u < n_users; ++u)
      for (std::size_t i = 0; i < units.size(); ++i) {
        std::size_t expect = 0;
        for (const auto& a : res.assignments)
          if (a.unit_index == i && groups[a.group].contains(u))
            expect += a.symbols;
        prop_assert(res.user_symbols[u][i] == expect,
                    "user tally diverges from assignments");
        prop_assert(res.user_decodes[u][i] ==
                        (res.user_symbols[u][i] >= units[i].k_symbols),
                    "decode flag inconsistent with k");
      }
  });
}

}  // namespace
}  // namespace w4k

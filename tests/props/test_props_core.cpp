// Self-tests for the property-testing core: deterministic reproduction,
// replay seeds, iteration scaling, and shrinking.
#include "support/proptest.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace w4k::proptest {
namespace {

TEST(PropTestCore, PassingPropertyRunsAllIterations) {
  Options opts;
  opts.iterations = 57;
  const auto res = check_property("always-true", [](Rng&) {}, opts);
  EXPECT_TRUE(res.passed);
  EXPECT_EQ(res.iterations_run, 57);
}

TEST(PropTestCore, FailureReportsReproducibleSeed) {
  Options opts;
  opts.iterations = 200;
  // Fails for ~1/8 of inputs: the runner must find a failure and print a
  // seed that re-triggers it deterministically.
  const auto flaky = [](Rng& rng) {
    prop_assert(rng.below(8) != 0, "drew a zero");
  };
  const auto res = check_property("flaky", flaky, opts);
  ASSERT_FALSE(res.passed);
  EXPECT_NE(res.message.find("W4K_PROP_ITER_SEED="), std::string::npos);

  // Replaying the failing seed fails again, immediately.
  Options replay;
  replay.has_replay_seed = true;
  replay.replay_seed = res.failing_seed;
  const auto again = check_property("flaky", flaky, replay);
  EXPECT_FALSE(again.passed);
  EXPECT_EQ(again.iterations_run, 1);
  EXPECT_EQ(again.failing_seed, res.failing_seed);

  // ... and the same base seed finds the same failing iteration seed.
  const auto rerun = check_property("flaky", flaky, opts);
  ASSERT_FALSE(rerun.passed);
  EXPECT_EQ(rerun.failing_seed, res.failing_seed);
}

TEST(PropTestCore, IterationSeedsAreDistinct) {
  std::vector<std::uint64_t> seeds;
  for (int i = 0; i < 1000; ++i)
    seeds.push_back(iteration_seed(42, i));
  std::sort(seeds.begin(), seeds.end());
  EXPECT_EQ(std::unique(seeds.begin(), seeds.end()), seeds.end());
  // Different base seeds give different streams.
  EXPECT_NE(iteration_seed(1, 0), iteration_seed(2, 0));
}

TEST(PropTestCore, SizedPropertyShrinksToMinimalCounterexample) {
  Options opts;
  opts.iterations = 50;
  // Fails for every size >= 7: the shrinker must report exactly 7.
  const auto res = check_sized_property(
      "size-threshold",
      [](Rng&, std::size_t size) {
        prop_assert(size < 7, "size " + std::to_string(size));
      },
      /*max_size=*/200, opts);
  ASSERT_FALSE(res.passed);
  EXPECT_NE(res.message.find("shrunk to 7"), std::string::npos)
      << res.message;
}

TEST(PropTestCore, EnvParsingAcceptsDecimalAndHex) {
  EXPECT_EQ(parse_env_u64("W4K_NONEXISTENT_VAR_FOR_TEST", 77), 77u);
  // options_from_env defaults: 100 iterations unless W4K_PROP_ITERS is set
  // (the suite runs without it, so assert only the floor).
  const Options o = options_from_env();
  EXPECT_GE(o.iterations, 1);
}

}  // namespace
}  // namespace w4k::proptest

// Property suite for multi-AP attachment and handoff.
//
// Two laws the handoff machinery must obey for ANY knob setting:
//
//   1. Disabled means invisible: with cfg.handoff.enabled == false the
//      SessionReport is byte-identical no matter what the hysteresis /
//      dwell / backoff knobs say (they must not even be read), across
//      W4K_THREADS 1 and 4. A user starts on their strongest AP and
//      never moves, so the knobs have nothing to act on.
//   2. Enabled never breaks the books: with handoff on and arbitrary
//      knob values, arbitrary AP outages and beacon losses, every
//      pipeline invariant (airtime budget, exclusion, partition-pure
//      grouping) still holds — the InvariantChecker runs in kThrow mode
//      so any violation fails the property — and the report stays
//      byte-identical across thread counts.
#include "channel/multi_ap.h"
#include "common/thread_pool.h"
#include "core/pretrained.h"
#include "core/runner.h"
#include "fault/injector.h"
#include "fault/plan.h"
#include "support/proptest.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

namespace w4k {
namespace {

using proptest::prop_assert;

class HandoffPropertyTest : public ::testing::Test {
 protected:
  static constexpr int kW = 256;
  static constexpr int kH = 144;

  static void SetUpTestSuite() {
    quality_ = new model::QualityModel(42);
    core::PretrainedOptions opts;
    opts.cache_path = "session_test_model.cache";
    core::ensure_trained(*quality_, opts);
    video::VideoSpec spec;
    spec.width = kW;
    spec.height = kH;
    spec.frames = 3;
    spec.seed = 11;
    contexts_ = new std::vector<core::FrameContext>(core::make_contexts(
        video::SyntheticVideo(spec), 2, core::scaled_symbol_size(kW, kH)));
  }
  static void TearDownTestSuite() {
    delete quality_;
    delete contexts_;
    quality_ = nullptr;
    contexts_ = nullptr;
  }

  static model::QualityModel* quality_;
  static std::vector<core::FrameContext>* contexts_;
};

model::QualityModel* HandoffPropertyTest::quality_ = nullptr;
std::vector<core::FrameContext>* HandoffPropertyTest::contexts_ = nullptr;

constexpr int kFrames = 12;

struct Room {
  channel::MultiApGeometry geo;
  std::vector<std::vector<linalg::CVector>> stacks;
  std::vector<std::vector<double>> azimuths;
};

Room make_room(std::size_t n_aps, std::size_t n_users, Rng& rng) {
  Room room;
  channel::PropagationConfig prop;
  room.geo.prop = prop;
  room.geo.aps = channel::default_ap_layout(n_aps, prop.room);
  const auto users = core::place_users_fixed(
      n_users, rng.uniform(2.5, 4.5), 1.047, rng);
  room.stacks = channel::ap_channel_stacks(room.geo, users);
  room.azimuths = channel::ap_user_azimuths(room.geo, users);
  return room;
}

/// A plan that actually stresses attachment: total/sector AP outages plus
/// handoff-beacon losses, drawn from the extended random generator.
fault::FaultPlan stress_plan(std::uint64_t seed, std::size_t n_users) {
  fault::RandomPlanConfig rcfg;
  rcfg.n_aps = 2;
  rcfg.ap_outages = 2;
  rcfg.handoff_beacon_losses = 2;
  return fault::FaultPlan::random(seed, kFrames, n_users, rcfg);
}

std::string run_json(model::QualityModel& quality,
                     const std::vector<core::FrameContext>& contexts,
                     const Room& room, const core::SessionConfig& cfg,
                     const fault::FaultPlan& plan, std::size_t n_users) {
  core::MulticastSession session(cfg, quality, beamforming::Codebook{});
  const fault::FaultInjector injector(plan, n_users, room.geo.n_aps());
  const core::SessionReport report = core::run_static_multi_ap(
      session, room.stacks, contexts, kFrames, injector, room.azimuths);
  std::ostringstream os;
  report.write_json(os);
  return os.str();
}

core::SessionConfig base_config(std::uint64_t seed) {
  core::SessionConfig cfg = core::SessionConfig::scaled(256, 144);
  cfg.seed = seed;
  cfg.handoff.n_aps = 2;
  return cfg;
}

void randomize_knobs(core::SessionConfig& cfg, Rng& rng) {
  cfg.handoff.hysteresis_db = rng.uniform(0.0, 12.0);
  cfg.handoff.degrade_floor_dbm = rng.uniform(-80.0, -50.0);
  cfg.handoff.degrade_after = 1 + static_cast<int>(rng.below(5));
  cfg.handoff.probe_frames = 1 + static_cast<int>(rng.below(4));
  cfg.handoff.min_dwell_frames = 1 + static_cast<int>(rng.below(16));
  cfg.handoff.backoff_cap = static_cast<int>(rng.below(7));
}

TEST_F(HandoffPropertyTest, DisabledHandoffIgnoresKnobs) {
  // Each iteration runs six full sessions (3 knob settings x 2 thread
  // counts), so scale the count down from the W4K_PROP_ITERS baseline.
  proptest::Options opts = proptest::options_from_env();
  if (!opts.has_replay_seed)
    opts.iterations = std::max(3, opts.iterations / 10);
  const auto res = proptest::check_property(
      "core.handoff.disabled-knob-invariance",
      [](Rng& rng) {
        const std::size_t n = 2 + rng.below(4);  // 2..5 users
        const std::uint64_t seed = rng.next();
        Room room = make_room(2, n, rng);
        const fault::FaultPlan plan = stress_plan(rng.next(), n);

        core::SessionConfig cfg = base_config(seed);
        cfg.handoff.enabled = false;
        ThreadPool::reset_shared(1);
        const std::string baseline =
            run_json(*quality_, *contexts_, room, cfg, plan, n);
        for (int variant = 0; variant < 2; ++variant) {
          core::SessionConfig knobs = base_config(seed);
          knobs.handoff.enabled = false;
          randomize_knobs(knobs, rng);
          ThreadPool::reset_shared(1);
          const std::string got_1t =
              run_json(*quality_, *contexts_, room, knobs, plan, n);
          ThreadPool::reset_shared(4);
          const std::string got_4t =
              run_json(*quality_, *contexts_, room, knobs, plan, n);
          ThreadPool::reset_shared(0);
          prop_assert(got_1t == baseline,
                      "handoff knobs changed a disabled-handoff report");
          prop_assert(got_4t == baseline,
                      "thread count or knobs changed a disabled-handoff "
                      "report at 4 threads");
        }
        ThreadPool::reset_shared(0);
      },
      opts);
  if (!res.passed) ADD_FAILURE() << res.message;
}

TEST_F(HandoffPropertyTest, InvariantsHoldAtAnyKnobSetting) {
  proptest::Options opts = proptest::options_from_env();
  if (!opts.has_replay_seed)
    opts.iterations = std::max(3, opts.iterations / 10);
  const auto res = proptest::check_property(
      "core.handoff.invariants-any-knobs",
      [](Rng& rng) {
        const std::size_t n = 2 + rng.below(4);
        const std::uint64_t seed = rng.next();
        Room room = make_room(2, n, rng);
        fault::FaultPlan plan = stress_plan(rng.next(), n);
        // A blockage burst on top so handoff interacts with the ladder.
        fault::BlockageBurst burst;
        burst.start_frame = 1 + static_cast<std::uint32_t>(rng.below(4));
        burst.n_frames = 1 + static_cast<std::uint32_t>(rng.below(6));
        burst.user = rng.below(n);
        burst.extra_loss_db = rng.uniform(10.0, 40.0);
        plan.blockage.push_back(burst);

        core::SessionConfig cfg = base_config(seed);
        cfg.handoff.enabled = true;
        randomize_knobs(cfg, rng);
        // kThrow is the test-build default: any invariant violation
        // (airtime budget, cross-AP group, scheduled-while-excluded)
        // throws out of run_static_multi_ap and fails the property.
        ThreadPool::reset_shared(1);
        const std::string got_1t =
            run_json(*quality_, *contexts_, room, cfg, plan, n);
        ThreadPool::reset_shared(4);
        const std::string got_4t =
            run_json(*quality_, *contexts_, room, cfg, plan, n);
        ThreadPool::reset_shared(0);
        prop_assert(got_1t == got_4t,
                    "thread count changed a handoff-enabled report");
      },
      opts);
  if (!res.passed) ADD_FAILURE() << res.message;
}

}  // namespace
}  // namespace w4k

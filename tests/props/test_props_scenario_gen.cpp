// Property suite for the campaign scenario generator: every
// (campaign_seed, cell_index) pair must materialize into objects that pass
// their own validate() (SessionConfig, FaultPlan, MultiApGeometry), and
// ScenarioGen::cell must be pure — the same inputs yield a byte-identical
// cell on repeated calls and across threads. Purity is what makes the
// campaign's merged summary independent of the worker partition, so it is
// pinned here rather than assumed.
#include "campaign/scenario.h"
#include "support/proptest.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

namespace w4k::campaign {
namespace {

using proptest::prop_assert;

TEST(ScenarioGenProps, EveryCellMaterializesAndValidates) {
  W4K_PROP("scenario-gen-validates", [](Rng& rng) {
    const std::uint64_t campaign_seed = rng.next();
    const std::uint64_t cell_index = rng.below(1u << 20);
    const ScenarioSpec spec = ScenarioGen::cell(campaign_seed, cell_index);

    // Structural sanity of the spec itself.
    prop_assert(spec.campaign_seed == campaign_seed &&
                    spec.cell_index == cell_index,
                "spec does not echo its inputs");
    prop_assert(spec.n_users >= 1 && spec.n_users <= 8, "user count range");
    prop_assert(spec.frames() > 0, "cell streams zero frames");
    prop_assert(spec.room_length_m >= 10.0 && spec.room_length_m <= 20.0 &&
                    spec.room_width_m >= 8.0 && spec.room_width_m <= 12.0,
                "room outside the generator's bounds");
    if (spec.kind == CellKind::kMultiAp) {
      prop_assert(spec.n_aps >= 2 && spec.n_aps <= 4, "multi-AP count");
    } else {
      prop_assert(spec.n_aps == 1, "single-AP cell with n_aps != 1");
    }
    if (spec.kind == CellKind::kMobile)
      prop_assert(spec.frames() == 3 * spec.n_beacons,
                  "mobile frame count not trace-derived");

    // Every runtime surface the spec maps onto must accept it: these
    // throw std::invalid_argument on any generator bug.
    (void)make_config(spec);
    const fault::FaultPlan plan = make_fault_plan(spec);
    plan.validate(spec.n_users, spec.n_aps);  // idempotent re-check
    if (!spec.faults_enabled)
      prop_assert(plan.empty(), "fault-free cell produced fault events");
    if (spec.kind == CellKind::kMultiAp) (void)make_geometry(spec);
  });
}

TEST(ScenarioGenProps, PureAcrossRepeatedCalls) {
  W4K_PROP("scenario-gen-pure-repeat", [](Rng& rng) {
    const std::uint64_t campaign_seed = rng.next();
    const std::uint64_t cell_index = rng.below(1u << 20);
    const std::string first =
        ScenarioGen::cell(campaign_seed, cell_index).to_text();
    const std::string second =
        ScenarioGen::cell(campaign_seed, cell_index).to_text();
    prop_assert(first == second, "repeated calls differ:\n" + first +
                                     "-- vs --\n" + second);
    // Neighbouring cells must draw independent scenarios (the mix step
    // decorrelates them); identical text would mean a broken seed mix.
    const std::string neighbour =
        ScenarioGen::cell(campaign_seed, cell_index + 1).to_text();
    prop_assert(first != neighbour, "adjacent cells byte-identical");
  });
}

TEST(ScenarioGenProps, PureAcrossThreads) {
  W4K_PROP("scenario-gen-pure-threads", [](Rng& rng) {
    const std::uint64_t campaign_seed = rng.next();
    const std::uint64_t base_cell = rng.below(1u << 20);
    constexpr int kThreads = 4;
    constexpr int kCellsPerThread = 8;

    // Reference: generated serially on this thread.
    std::vector<std::string> expected;
    for (int c = 0; c < kCellsPerThread; ++c)
      expected.push_back(
          ScenarioGen::cell(campaign_seed, base_cell + c).to_text());

    // Each thread regenerates the same cells concurrently.
    std::vector<std::vector<std::string>> got(kThreads);
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t)
      threads.emplace_back([&, t] {
        for (int c = 0; c < kCellsPerThread; ++c)
          got[t].push_back(
              ScenarioGen::cell(campaign_seed, base_cell + c).to_text());
      });
    for (std::thread& t : threads) t.join();

    for (int t = 0; t < kThreads; ++t)
      for (int c = 0; c < kCellsPerThread; ++c)
        prop_assert(got[t][c] == expected[c],
                    "thread " + std::to_string(t) + " cell " +
                        std::to_string(c) + " diverged");
  });
}

}  // namespace
}  // namespace w4k::campaign

// Unit tests for the verify-layer invariant checker: modes, counters,
// metrics reporting, and lazy detail evaluation.
#include "verify/invariants.h"

#include "obs/metrics.h"

#include <gtest/gtest.h>

namespace w4k::verify {
namespace {

class InvariantsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    saved_ = mode();
    reset_violations();
  }
  void TearDown() override {
    set_mode(saved_);
    reset_violations();
  }
  Mode saved_ = Mode::kThrow;
};

TEST_F(InvariantsTest, PassingCheckIsFree) {
  set_mode(Mode::kThrow);
  const auto before = violation_count();
  check(true, "test.never-fires", [] { return std::string("unreached"); });
  EXPECT_EQ(violation_count(), before);
}

TEST_F(InvariantsTest, ThrowModeThrowsAndCounts) {
  set_mode(Mode::kThrow);
  const auto before = violation_count();
  EXPECT_THROW(
      check(false, "test.throw-mode", [] { return std::string("detail"); }),
      InvariantViolation);
  EXPECT_EQ(violation_count(), before + 1);
  EXPECT_NE(last_violation().find("test.throw-mode"), std::string::npos);
  EXPECT_NE(last_violation().find("detail"), std::string::npos);
}

TEST_F(InvariantsTest, ReportModeCountsWithoutThrowing) {
  set_mode(Mode::kReport);
  const auto before = violation_count();
  EXPECT_NO_THROW(check(false, "test.report-mode",
                        [] { return std::string("counted"); }));
  check(false, "test.report-mode", [] { return std::string("again"); });
  EXPECT_EQ(violation_count(), before + 2);
  EXPECT_NE(last_violation().find("again"), std::string::npos);
}

TEST_F(InvariantsTest, OffModeSkipsDetailLambda) {
  set_mode(Mode::kOff);
  EXPECT_FALSE(enabled());
  bool evaluated = false;
  check(false, "test.off-mode", [&] {
    evaluated = true;
    return std::string("should not run");
  });
  EXPECT_FALSE(evaluated);
  EXPECT_EQ(violation_count(), 0u);
}

TEST_F(InvariantsTest, ViolationsFlowIntoMetricsRegistry) {
  set_mode(Mode::kReport);
  auto& reg = obs::MetricsRegistry::global();
  auto& total = reg.counter("verify.violations");
  auto& named = reg.counter("verify.test.metrics-check");
  const auto total_before = total.value();
  const auto named_before = named.value();
  check(false, "test.metrics-check", [] { return std::string("x"); });
  EXPECT_EQ(total.value(), total_before + 1);
  EXPECT_EQ(named.value(), named_before + 1);
}

TEST_F(InvariantsTest, ResetClearsCountAndMessage) {
  set_mode(Mode::kReport);
  check(false, "test.reset", [] { return std::string("x"); });
  ASSERT_GT(violation_count(), 0u);
  reset_violations();
  EXPECT_EQ(violation_count(), 0u);
  EXPECT_TRUE(last_violation().empty());
}

}  // namespace
}  // namespace w4k::verify

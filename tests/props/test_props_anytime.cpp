// Property suite: the anytime scheduler's two contracts.
//
// (a) Feasibility under any deadline: with decide_deadline_ms set to
//     anything >= 1 ms, decide() still returns a plan in which every
//     reachable user is a member of some candidate group AND receives
//     positive airtime — the singleton prefix and coverage repair
//     guarantee base-layer service no matter how hard the clock cuts.
// (b) Purity of the hierarchical path: past the cluster-tree threshold
//     (N > 12) the candidate plan is still a pure function of the inputs,
//     so stateless/pooled/cached enumeration stay bit-identical, and the
//     full session report is byte-stable across thread counts and
//     beam-cache settings.
#include "channel/mobility.h"
#include "core/pretrained.h"
#include "core/runner.h"
#include "sched/beam_cache.h"
#include "sched/workspace.h"
#include "support/proptest.h"

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

namespace w4k {
namespace {

using proptest::prop_assert;

std::vector<linalg::CVector> random_channels(Rng& rng, std::size_t n) {
  channel::PropagationConfig prop;
  std::vector<linalg::CVector> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    out.push_back(channel::make_channel(
        prop, channel::Position::from_polar(rng.uniform(2.5, 10.0),
                                            rng.uniform(-0.8, 0.8))));
  return out;
}

bool same_beam(const beamforming::GroupBeam& a,
               const beamforming::GroupBeam& b) {
  if (a.beam.size() != b.beam.size() || a.rate.value != b.rate.value ||
      a.min_rss.value != b.min_rss.value)
    return false;
  for (std::size_t i = 0; i < a.beam.size(); ++i)
    if (a.beam[i] != b.beam[i]) return false;
  return true;
}

void expect_same_groups(std::span<const sched::GroupSpec> a,
                        std::span<const sched::GroupSpec> b,
                        const std::string& what) {
  prop_assert(a.size() == b.size(),
              what + ": group count " + std::to_string(a.size()) + " vs " +
                  std::to_string(b.size()));
  for (std::size_t i = 0; i < a.size(); ++i) {
    prop_assert(a[i].members == b[i].members, what + ": member mismatch");
    prop_assert(same_beam(a[i].beam, b[i].beam),
                what + ": beam bits differ at group " + std::to_string(i));
  }
}

// (b) Hierarchical candidate generation is pure: for any N past the
// threshold, stateless serial, stateless pooled, and cached enumeration
// (under CSI churn) produce bit-identical group sets.
TEST(PropsAnytime, HierarchicalEnumerationPureAcrossCacheAndPool) {
  W4K_PROP("sched.anytime.hierarchical-purity", [](Rng& rng) {
    const std::size_t n = 13 + rng.below(8);  // 13..20: cluster-tree path
    const std::uint64_t seed = rng.next();
    const auto scheme = beamforming::Scheme::kOptimizedMulticast;
    sched::BeamCache cache(scheme, seed);
    ThreadPool pool(3);
    auto channels = random_channels(rng, n);
    for (int step = 0; step < 3; ++step) {
      for (std::size_t u = 0; u < n; ++u)
        if (rng.chance(0.3)) {
          channel::PropagationConfig prop;
          channels[u] = channel::make_channel(
              prop, channel::Position::from_polar(rng.uniform(2.5, 10.0),
                                                  rng.uniform(-0.8, 0.8)));
        }
      const sched::GroupEnumConfig cfg;  // threshold 12 -> hierarchical
      // Three separate workspaces: each span stays valid until the next
      // enumeration on its own workspace, so all three can be compared.
      sched::SchedWorkspace ws_serial, ws_pooled, ws_cached;
      const auto serial =
          sched::enumerate_groups(scheme, channels, beamforming::Codebook{},
                                  seed, cfg, nullptr, ws_serial);
      const auto pooled =
          sched::enumerate_groups(scheme, channels, beamforming::Codebook{},
                                  seed, cfg, &pool, ws_pooled);
      const auto cached = cache.enumerate_into(
          channels, beamforming::Codebook{}, cfg,
          rng.chance(0.5) ? &pool : nullptr, ws_cached);
      expect_same_groups(serial, pooled,
                         "pooled, step " + std::to_string(step));
      expect_same_groups(serial, cached,
                         "cached, step " + std::to_string(step));
      prop_assert(!serial.empty(), "hierarchical path emitted nothing");
    }
  });
}

// --- Session-level fixture (shared trained model + contexts) -------------

class AnytimeSessionTest : public ::testing::Test {
 protected:
  static constexpr int kW = 256;
  static constexpr int kH = 144;

  static void SetUpTestSuite() {
    quality_ = new model::QualityModel(42);
    core::PretrainedOptions opts;
    opts.cache_path = "session_test_model.cache";
    core::ensure_trained(*quality_, opts);
    video::VideoSpec spec;
    spec.width = kW;
    spec.height = kH;
    spec.frames = 3;
    spec.seed = 11;
    contexts_ = new std::vector<core::FrameContext>(core::make_contexts(
        video::SyntheticVideo(spec), 2, core::scaled_symbol_size(kW, kH)));
  }
  static void TearDownTestSuite() {
    delete quality_;
    delete contexts_;
    quality_ = nullptr;
    contexts_ = nullptr;
  }

  static model::QualityModel* quality_;
  static std::vector<core::FrameContext>* contexts_;
};

model::QualityModel* AnytimeSessionTest::quality_ = nullptr;
std::vector<core::FrameContext>* AnytimeSessionTest::contexts_ = nullptr;

// (a) Any deadline >= 1 ms still yields a feasible, covering plan: the
// schedule fits the frame budget, every user sits in at least one emitted
// group, and every grouped user gets positive airtime (coverage repair).
TEST_F(AnytimeSessionTest, DeadlineBoundedDecideAlwaysServesEveryUser) {
  W4K_PROP("sched.anytime.deadline-feasibility", [](Rng& rng) {
    const std::size_t n = 2 + rng.below(23);  // 2..24 users
    core::SessionConfig cfg = core::SessionConfig::scaled(kW, kH);
    cfg.seed = rng.next();
    cfg.mcs_margin_db = 1.0;
    cfg.decide_deadline_ms = rng.uniform(1.0, 5.0);
    core::MulticastSession session(cfg, *quality_, beamforming::Codebook{});
    const auto channels = random_channels(rng, n);
    const std::vector<std::uint8_t> exclude(n, 0);
    const auto d =
        session.decide(channels, contexts_->front(), exclude);

    prop_assert(!d.groups.empty(), "deadline produced an empty plan");
    double total_time = 0.0;
    for (const auto& layers : d.allocation.time_rows())
      for (double t : layers) {
        prop_assert(t >= 0.0, "negative airtime");
        total_time += t;
      }
    prop_assert(total_time <= 33.4e-3, "schedule exceeds the frame budget");

    for (std::size_t u = 0; u < n; ++u) {
      bool grouped = false;
      for (const auto& g : d.groups) grouped |= g.contains(u);
      prop_assert(grouped, "user " + std::to_string(u) +
                               " in no group under deadline");
      double served = 0.0;
      for (double b : d.allocation.user_bytes(u)) served += b;
      prop_assert(served > 0.0, "user " + std::to_string(u) +
                                    " got zero airtime under deadline");
    }
  });
}

// (b) With the deadline disabled, the full session report at N=14 (deep in
// hierarchical territory) is byte-identical across beam cache on/off and
// 1/4 worker threads — the purity contract survives the new generator.
TEST_F(AnytimeSessionTest, HierarchicalSessionReportByteStable) {
  const auto run_json = [](model::QualityModel& quality,
                           const std::vector<core::FrameContext>& contexts,
                           bool beam_cache, std::size_t threads) {
    channel::MovingReceiverConfig mc;
    mc.n_users = 14;
    mc.moving.assign(14, false);
    mc.moving[0] = true;  // one walker
    mc.duration = 0.3;    // 3 beacons -> 9 frames
    mc.seed = 23;
    const channel::CsiTrace trace = channel::moving_receiver_trace(mc);

    core::SessionConfig cfg = core::SessionConfig::scaled(kW, kH);
    cfg.seed = 29;
    cfg.mcs_margin_db = 1.0;
    cfg.beam_cache = beam_cache;
    ThreadPool::reset_shared(threads);
    core::MulticastSession session(cfg, quality, beamforming::Codebook{});
    const core::SessionReport report =
        core::run_trace(session, trace, contexts);
    std::ostringstream os;
    report.write_json(os);
    return os.str();
  };
  const std::string reference = run_json(*quality_, *contexts_, false, 1);
  EXPECT_EQ(run_json(*quality_, *contexts_, true, 1), reference)
      << "beam cache changed the hierarchical report";
  EXPECT_EQ(run_json(*quality_, *contexts_, false, 4), reference)
      << "threads changed the hierarchical report";
  EXPECT_EQ(run_json(*quality_, *contexts_, true, 4), reference)
      << "beam cache + threads changed the hierarchical report";
  ThreadPool::reset_shared(0);
}

}  // namespace
}  // namespace w4k

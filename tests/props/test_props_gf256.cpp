// Property suite: GF(256) field axioms and row-kernel consistency.
#include "gf256/gf256.h"
#include "support/proptest.h"

#include <gtest/gtest.h>

#include <vector>

namespace w4k {
namespace {

using proptest::prop_assert;
using proptest::prop_assert_eq;

std::uint8_t rand_elem(Rng& rng) {
  return static_cast<std::uint8_t>(rng.below(256));
}

std::uint8_t rand_nonzero(Rng& rng) {
  return static_cast<std::uint8_t>(1 + rng.below(255));
}

TEST(PropsGf256, MultiplicationIsCommutativeAndAssociative) {
  W4K_PROP("gf256.mul-comm-assoc", [](Rng& rng) {
    const std::uint8_t a = rand_elem(rng), b = rand_elem(rng),
                       c = rand_elem(rng);
    prop_assert_eq(gf256::mul(a, b), gf256::mul(b, a), "commutativity");
    prop_assert_eq(gf256::mul(gf256::mul(a, b), c),
                   gf256::mul(a, gf256::mul(b, c)), "associativity");
  });
}

TEST(PropsGf256, DistributesOverXorAddition) {
  W4K_PROP("gf256.distributive", [](Rng& rng) {
    const std::uint8_t a = rand_elem(rng), b = rand_elem(rng),
                       c = rand_elem(rng);
    prop_assert_eq(gf256::mul(a, static_cast<std::uint8_t>(b ^ c)),
                   static_cast<std::uint8_t>(gf256::mul(a, b) ^
                                             gf256::mul(a, c)),
                   "a*(b+c) == a*b + a*c");
  });
}

TEST(PropsGf256, IdentityZeroAndInverse) {
  W4K_PROP("gf256.identity-inverse", [](Rng& rng) {
    const std::uint8_t a = rand_elem(rng);
    prop_assert_eq(gf256::mul(a, 1), a, "multiplicative identity");
    prop_assert_eq(gf256::mul(a, 0), std::uint8_t{0}, "absorbing zero");
    const std::uint8_t nz = rand_nonzero(rng);
    prop_assert_eq(gf256::mul(nz, gf256::inv(nz)), std::uint8_t{1},
                   "a * a^-1 == 1");
    prop_assert_eq(gf256::div(a, nz), gf256::mul(a, gf256::inv(nz)),
                   "division is multiplication by inverse");
  });
}

TEST(PropsGf256, PowMatchesRepeatedMultiplication) {
  W4K_PROP("gf256.pow", [](Rng& rng) {
    const std::uint8_t a = rand_elem(rng);
    const unsigned p = static_cast<unsigned>(rng.below(16));
    std::uint8_t expect = 1;
    for (unsigned i = 0; i < p; ++i) expect = gf256::mul(expect, a);
    prop_assert_eq(gf256::pow(a, p), expect, "pow vs repeated mul");
  });
}

TEST(PropsGf256, RowKernelsMatchScalarDefinition) {
  // mul_add_row / scale_row (SIMD-dispatched) must agree byte-for-byte
  // with the scalar field ops at every length, including the unaligned
  // tails the vector kernels special-case.
  W4K_PROP("gf256.row-kernels", [](Rng& rng) {
    const std::size_t n = 1 + rng.below(300);
    const std::uint8_t coeff = rand_elem(rng);
    std::vector<std::uint8_t> dst(n), src(n);
    for (auto& b : dst) b = rand_elem(rng);
    for (auto& b : src) b = rand_elem(rng);

    std::vector<std::uint8_t> expect = dst;
    for (std::size_t i = 0; i < n; ++i)
      expect[i] = static_cast<std::uint8_t>(expect[i] ^
                                            gf256::mul(coeff, src[i]));
    std::vector<std::uint8_t> got = dst;
    gf256::mul_add_row(got, src, coeff);
    prop_assert(got == expect, "mul_add_row mismatch at len " +
                                   std::to_string(n));

    expect = dst;
    for (auto& b : expect) b = gf256::mul(b, coeff);
    got = dst;
    gf256::scale_row(got, coeff);
    prop_assert(got == expect,
                "scale_row mismatch at len " + std::to_string(n));
  });
}

}  // namespace
}  // namespace w4k

// Chaos suite: randomized fault plans over many seeds, asserting the
// invariants that must survive ANY combination of blockage bursts, lost
// feedback, stale/corrupt CSI, budget collapse, and user churn:
//
//   * no crash, no throw, no hang;
//   * frame ids stay monotonic;
//   * every per-user output stays well-formed (sizes, ranges, finiteness),
//     including across churn;
//   * the base layer is still attempted under budget collapse;
//   * SSIM recovers within a few frames of a blockage burst ending;
//   * identical seeds produce bit-identical SessionReports;
//   * a fault-free FaultPlan reproduces the plain (no-injector) run
//     bit-identically — the fault path costs nothing when unused.
//
// The generic invariant and bit-identity checks live in the shared chaos
// harness (tests/support/chaos_harness.h), which the standalone tier-1
// drivers chaos_scale and chaos_multiap reuse; this suite layers the
// targeted degradation-ladder scenarios on top.
#include "core/runner.h"
#include "fault/plan.h"
#include "support/chaos_harness.h"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

namespace w4k::core {
namespace {

constexpr int kW = 256;
constexpr int kH = 144;
constexpr std::size_t kUsers = 3;
constexpr int kFrames = 8;

class ChaosTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    quality_ = new model::QualityModel(42);
    chaos::ensure_chaos_model(*quality_);
    contexts_ = new std::vector<FrameContext>(chaos::chaos_contexts(kW, kH));
  }
  static void TearDownTestSuite() {
    delete quality_;
    delete contexts_;
    quality_ = nullptr;
    contexts_ = nullptr;
  }

  static std::vector<linalg::CVector> channels_at(double distance) {
    Rng rng(5);
    channel::PropagationConfig prop;
    return channels_for(prop, place_users_fixed(kUsers, distance, 0.6, rng));
  }

  static SessionConfig chaos_config(std::uint64_t seed) {
    SessionConfig cfg = SessionConfig::scaled(kW, kH);
    cfg.seed = seed;
    return cfg;
  }

  static SessionReport run_plan(const fault::FaultPlan& plan,
                                std::uint64_t session_seed, int n_frames) {
    SessionConfig cfg = chaos_config(session_seed);
    MulticastSession session(cfg, *quality_, beamforming::Codebook{});
    const fault::FaultInjector injector(plan, kUsers);
    return run_static(session, channels_at(3.0), *contexts_, n_frames,
                      injector);
  }

  static std::string joined(const chaos::Violations& violations) {
    std::ostringstream os;
    for (const std::string& what : violations) os << what << '\n';
    return os.str();
  }

  /// The invariants every chaos run must satisfy, whatever the plan did
  /// (shared with the standalone drivers via the chaos harness).
  static void check_invariants(const SessionReport& report, int n_frames) {
    const chaos::Violations v = chaos::check_report_invariants(
        report, static_cast<std::size_t>(n_frames), kUsers);
    EXPECT_TRUE(v.empty()) << joined(v);
  }

  /// Bitwise equality, not tolerance: determinism is the contract.
  static void expect_identical(const SessionReport& a,
                               const SessionReport& b) {
    const chaos::Violations v = chaos::diff_reports(a, b);
    EXPECT_TRUE(v.empty()) << joined(v);
  }

  static model::QualityModel* quality_;
  static std::vector<FrameContext>* contexts_;
};

model::QualityModel* ChaosTest::quality_ = nullptr;
std::vector<FrameContext>* ChaosTest::contexts_ = nullptr;

// --- Randomized sweep: one ctest case per seed so the suite parallelizes.
class ChaosSeedTest : public ChaosTest,
                      public ::testing::WithParamInterface<std::uint64_t> {};

TEST_P(ChaosSeedTest, RandomPlanSurvivesWithInvariants) {
  const std::uint64_t seed = GetParam();
  const fault::FaultPlan plan = fault::FaultPlan::random(
      seed, static_cast<std::uint32_t>(kFrames), kUsers);
  SessionReport report;
  ASSERT_NO_THROW(report = run_plan(plan, /*session_seed=*/seed + 1,
                                    kFrames));
  check_invariants(report, kFrames);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosSeedTest,
                         ::testing::Range<std::uint64_t>(0, 50));

// --- Determinism ---------------------------------------------------------

TEST_F(ChaosTest, IdenticalSeedsBitIdenticalReports) {
  for (std::uint64_t seed : {3u, 17u, 41u}) {
    const fault::FaultPlan plan = fault::FaultPlan::random(
        seed, static_cast<std::uint32_t>(kFrames), kUsers);
    const SessionReport a = run_plan(plan, seed, kFrames);
    const SessionReport b = run_plan(plan, seed, kFrames);
    expect_identical(a, b);
  }
}

TEST_F(ChaosTest, FaultFreePlanReproducesPlainRunBitIdentically) {
  // An empty plan through the full fault machinery must cost nothing:
  // same rng draws, same decisions, same report, bit for bit.
  SessionConfig cfg = chaos_config(9);
  const auto chans = channels_at(3.0);
  MulticastSession plain(cfg, *quality_, beamforming::Codebook{});
  const SessionReport a = run_static(plain, chans, *contexts_, kFrames);

  MulticastSession faulted(cfg, *quality_, beamforming::Codebook{});
  const fault::FaultInjector injector(fault::FaultPlan{}, kUsers);
  const SessionReport b =
      run_static(faulted, chans, *contexts_, kFrames, injector);
  expect_identical(a, b);
}

// --- Targeted degradation-ladder scenarios -------------------------------

TEST_F(ChaosTest, BudgetCollapseStillDeliversBaseLayer) {
  fault::FaultPlan plan;
  plan.budget.push_back({/*start_frame=*/2, /*n_frames=*/3,
                         /*budget_scale=*/0.2});
  const SessionReport report = run_plan(plan, 5, kFrames);
  check_invariants(report, kFrames);
  const double blank = contexts_->front().content.blank_ssim;
  bool any_shed = false;
  for (int f = 2; f < 5; ++f) {
    any_shed |= report.frame(f).shed_symbols > 0;
    for (std::size_t u = 0; u < kUsers; ++u) {
      // The channel is good: the base layer must arrive even at 20% budget,
      // so the rendered frame beats (or at worst matches) a blank one.
      EXPECT_GT(report.frame(f).decoded_fraction[u], 0.0)
          << "frame " << f << " user " << u;
      EXPECT_GE(report.frame(f).ssim[u], blank - 0.05);
    }
  }
  EXPECT_TRUE(any_shed);  // the collapse actually bit
}

TEST_F(ChaosTest, SsimRecoversAfterBlockageBurst) {
  fault::FaultPlan plan;
  plan.blockage.push_back({/*start_frame=*/2, /*n_frames=*/3, /*user=*/1,
                           /*extra_loss_db=*/30.0});
  const int n_frames = 10;
  const SessionReport report = run_plan(plan, 6, n_frames);
  check_invariants(report, n_frames);
  // During the burst the blocked user suffers.
  EXPECT_LT(report.frame(3).ssim[1], 0.9);
  // Burst covers frames 2-4; truth recovers at 5, the decision CSI one
  // beacon later. Within 3 frames of the burst ending the user is back.
  EXPECT_GT(report.frame(7).ssim[1], 0.9);
  EXPECT_GT(report.frame(n_frames - 1).ssim[1], 0.9);
  // The unblocked users never dipped to blank.
  const double blank = contexts_->front().content.blank_ssim;
  for (std::size_t i = 0; i < report.frames(); ++i) {
    EXPECT_GT(report.frame(i).ssim[0], blank + 0.05);
    EXPECT_GT(report.frame(i).ssim[2], blank + 0.05);
  }
}

TEST_F(ChaosTest, PersistentOutageQuarantinesAndReleases) {
  // Blockage the beacon never sees (every beacon during the burst is
  // missed, so decisions run on pre-burst held CSI): the blocked user is
  // transmitted to at full MCS and decodes nothing, frame after frame.
  // Quarantine must kick in, and the periodic re-probe must release the
  // user once the blockage lifts.
  fault::FaultPlan plan;
  plan.blockage.push_back({/*start_frame=*/1, /*n_frames=*/10, /*user=*/1,
                           /*extra_loss_db=*/30.0});
  for (std::uint32_t f = 1; f <= 10; ++f)
    plan.csi.push_back({f, /*corrupt=*/false});

  SessionConfig cfg = chaos_config(7);
  cfg.quarantine_after = 3;
  cfg.quarantine_reprobe_period = 4;
  MulticastSession session(cfg, *quality_, beamforming::Codebook{});
  const fault::FaultInjector injector(plan, kUsers);
  const int n_frames = 16;
  const SessionReport report =
      run_static(session, channels_at(3.0), *contexts_, n_frames, injector);
  check_invariants(report, n_frames);

  bool ever_quarantined = false;
  for (std::size_t i = 0; i < report.frames(); ++i) {
    const auto& q = report.frame(i).user_quarantined;
    if (!q.empty() && q[1]) ever_quarantined = true;
    // Quarantining user 1 must never take the healthy users down.
    EXPECT_GT(report.frame(i).ssim[0], 0.85) << "frame " << i;
  }
  EXPECT_TRUE(ever_quarantined);
  // Blockage ends after frame 10; the next re-probe decodes and releases.
  const auto& last = report.frame(n_frames - 1);
  EXPECT_TRUE(last.user_quarantined.empty() || !last.user_quarantined[1]);
  EXPECT_GT(last.ssim[1], 0.9);
}

TEST_F(ChaosTest, ChurnKeepsReportsWellFormed) {
  fault::FaultPlan plan;
  plan.churn.push_back({/*frame=*/2, /*user=*/1, /*join=*/false});
  plan.churn.push_back({/*frame=*/5, /*user=*/1, /*join=*/true});
  plan.churn.push_back({/*frame=*/3, /*user=*/2, /*join=*/false});
  const SessionReport report = run_plan(plan, 8, kFrames);
  check_invariants(report, kFrames);

  // Absence is recorded exactly as scheduled...
  for (std::size_t i = 0; i < report.frames(); ++i) {
    const auto& f = report.frame(i);
    const bool u1_present = i < 2 || i >= 5;
    const bool u2_present = i < 3;
    EXPECT_EQ(f.user_present.empty() || f.user_present[1], u1_present)
        << "frame " << i;
    EXPECT_EQ(f.user_present.empty() || f.user_present[2], u2_present)
        << "frame " << i;
    EXPECT_TRUE(f.user_present.empty() || f.user_present[0]);
  }
  // ...and the aggregates only count present samples.
  std::size_t expected_samples = 0;
  for (std::size_t i = 0; i < report.frames(); ++i)
    for (std::size_t u = 0; u < kUsers; ++u) {
      const auto& f = report.frame(i);
      if (f.user_present.empty() || f.user_present[u]) ++expected_samples;
    }
  EXPECT_EQ(report.all_ssim().size(), expected_samples);
  EXPECT_LT(expected_samples, static_cast<std::size_t>(kFrames) * kUsers);

  // The user that rejoined at frame 5 streams normally afterwards.
  EXPECT_GT(report.frame(kFrames - 1).ssim[1], 0.85);
}

TEST_F(ChaosTest, LostFeedbackDegradesGracefully) {
  // Every report from user 1 vanishes for the whole run. Blind worst-case
  // makeup keeps the stream alive; the capped backoff keeps the silent
  // user from eating the budget forever.
  fault::FaultPlan plan;
  for (std::uint32_t f = 0; f < kFrames; ++f)
    plan.feedback.push_back({f, /*user=*/1, /*delay_frames=*/-1});
  const SessionReport report = run_plan(plan, 10, kFrames);
  check_invariants(report, kFrames);
  for (std::size_t i = 0; i < report.frames(); ++i)
    for (std::size_t u = 0; u < kUsers; ++u)
      EXPECT_GT(report.frame(i).ssim[u], 0.85)
          << "frame " << i << " user " << u;
}

TEST_F(ChaosTest, CorruptCsiBeaconIsSurvivable) {
  fault::FaultPlan plan;
  plan.csi.push_back({/*frame=*/3, /*corrupt=*/true});
  plan.csi.push_back({/*frame=*/4, /*corrupt=*/true});
  const SessionReport report = run_plan(plan, 11, kFrames);
  check_invariants(report, kFrames);
  // The corrupt beacons were bridged on held CSI, not acted upon.
  EXPECT_TRUE(report.frame(3).csi_held);
  EXPECT_TRUE(report.frame(4).csi_held);
  for (std::size_t u = 0; u < kUsers; ++u) {
    EXPECT_GT(report.frame(3).ssim[u], 0.85);
    EXPECT_GT(report.frame(kFrames - 1).ssim[u], 0.85);
  }
}

}  // namespace
}  // namespace w4k::core

#include "common/stats.h"
#include "core/pretrained.h"
#include "core/runner.h"

#include <gtest/gtest.h>

namespace w4k::core {
namespace {

constexpr int kW = 256;
constexpr int kH = 144;

class RunnerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    quality_ = new model::QualityModel(42);
    PretrainedOptions opts;
    opts.cache_path = "session_test_model.cache";
    ensure_trained(*quality_, opts);
    video::VideoSpec spec;
    spec.width = kW;
    spec.height = kH;
    spec.frames = 5;
    spec.seed = 11;
    contexts_ = new std::vector<FrameContext>(make_contexts(
        video::SyntheticVideo(spec), 4, scaled_symbol_size(kW, kH)));
  }
  static void TearDownTestSuite() {
    delete quality_;
    delete contexts_;
    quality_ = nullptr;
    contexts_ = nullptr;
  }
  static model::QualityModel* quality_;
  static std::vector<FrameContext>* contexts_;
};

model::QualityModel* RunnerTest::quality_ = nullptr;
std::vector<FrameContext>* RunnerTest::contexts_ = nullptr;

TEST_F(RunnerTest, StaticRunShapesAndCycling) {
  SessionConfig cfg = SessionConfig::scaled(kW, kH);
  MulticastSession session(cfg, *quality_, beamforming::Codebook{});
  Rng rng(1);
  channel::PropagationConfig prop;
  const auto channels =
      channels_for(prop, place_users_fixed(2, 3.0, 0.5, rng));
  // 9 frames over 4 contexts: cycles 4,4,1.
  const SessionReport run = run_static(session, channels, *contexts_, 9);
  EXPECT_EQ(run.frames(), 9u);
  EXPECT_EQ(run.all_ssim().size(), 18u);  // frames x users
  EXPECT_EQ(run.all_psnr().size(), 18u);
}

TEST_F(RunnerTest, StaticRunRequiresContexts) {
  SessionConfig cfg = SessionConfig::scaled(kW, kH);
  MulticastSession session(cfg, *quality_, beamforming::Codebook{});
  Rng rng(2);
  channel::PropagationConfig prop;
  const auto channels =
      channels_for(prop, place_users_fixed(1, 3.0, 0.5, rng));
  EXPECT_THROW(run_static(session, channels, {}, 3), std::invalid_argument);
}

TEST_F(RunnerTest, TraceRunUsesStaleDecisionCsi) {
  // Build a two-snapshot trace where the channel collapses at snapshot 1:
  // with frames_per_snapshot = 1, frame 1's decision uses snapshot 0
  // (good) while the truth is snapshot 1 (dead) — quality must crater,
  // demonstrating the one-beacon staleness the runner models.
  Rng rng(3);
  channel::PropagationConfig prop;
  const auto good = channels_for(prop, place_users_fixed(1, 3.0, 0.5, rng));
  const auto dead = channels_for(prop, place_users_fixed(1, 45.0, 0.5, rng));
  channel::CsiTrace trace;
  trace.snapshots = {good, dead};
  trace.positions = {{channel::Position{3, 0}}, {channel::Position{45, 0}}};

  SessionConfig cfg = SessionConfig::scaled(kW, kH);
  MulticastSession session(cfg, *quality_, beamforming::Codebook{});
  const SessionReport run = run_trace(session, trace, *contexts_, 1);
  ASSERT_EQ(run.frames(), 2u);
  EXPECT_GT(run.frame(0).ssim[0], 0.95);
  EXPECT_LT(run.frame(1).ssim[0], 0.9);
}

TEST_F(RunnerTest, TraceRunFramesPerSnapshot) {
  Rng rng(4);
  channel::PropagationConfig prop;
  const auto chans = channels_for(prop, place_users_fixed(1, 4.0, 0.5, rng));
  channel::CsiTrace trace;
  for (int t = 0; t < 3; ++t) {
    trace.snapshots.push_back(chans);
    trace.positions.push_back({channel::Position{4, 0}});
  }
  SessionConfig cfg = SessionConfig::scaled(kW, kH);
  MulticastSession session(cfg, *quality_, beamforming::Codebook{});
  const SessionReport run = run_trace(session, trace, *contexts_, 3);
  EXPECT_EQ(run.frames(), 9u);  // 3 snapshots x 3 frames (30 FPS)
}

TEST_F(RunnerTest, EmptyTraceThrows) {
  SessionConfig cfg = SessionConfig::scaled(kW, kH);
  MulticastSession session(cfg, *quality_, beamforming::Codebook{});
  EXPECT_THROW(run_trace(session, channel::CsiTrace{}, *contexts_, 3),
               std::invalid_argument);
}

TEST_F(RunnerTest, PlacementRandomAzimuthWindowRespectsMas) {
  Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    const auto users = place_users_random(5, 8.0, 16.0, 1.0, rng);
    double lo = 1e9, hi = -1e9;
    for (const auto& u : users) {
      lo = std::min(lo, u.azimuth());
      hi = std::max(hi, u.azimuth());
    }
    EXPECT_LE(hi - lo, 1.0 + 1e-9);
  }
}

}  // namespace
}  // namespace w4k::core

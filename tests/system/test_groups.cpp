#include "sched/groups.h"

#include "channel/propagation.h"

#include <gtest/gtest.h>

namespace w4k::sched {
namespace {

std::vector<linalg::CVector> make_users(int n, double distance = 4.0) {
  channel::PropagationConfig prop;
  std::vector<linalg::CVector> out;
  for (int i = 0; i < n; ++i)
    out.push_back(channel::make_channel(
        prop,
        channel::Position::from_polar(distance, -0.4 + 0.8 * i /
                                                     std::max(1, n - 1))));
  return out;
}

TEST(EnumerateGroups, MulticastEnumeratesAllSubsets) {
  Rng rng(1);
  const auto groups =
      enumerate_groups(beamforming::Scheme::kOptimizedMulticast,
                       make_users(3), beamforming::Codebook{}, rng);
  // 2^3 - 1 = 7 subsets, all viable at 4 m.
  EXPECT_EQ(groups.size(), 7u);
}

TEST(EnumerateGroups, UnicastOnlySingletons) {
  Rng rng(2);
  const auto groups =
      enumerate_groups(beamforming::Scheme::kOptimizedUnicast, make_users(4),
                       beamforming::Codebook{}, rng);
  EXPECT_EQ(groups.size(), 4u);
  for (const auto& g : groups) EXPECT_EQ(g.members.size(), 1u);
}

TEST(EnumerateGroups, MembersAscendingAndMaskOrdered) {
  Rng rng(3);
  const auto groups =
      enumerate_groups(beamforming::Scheme::kOptimizedMulticast,
                       make_users(3), beamforming::Codebook{}, rng);
  // Bitmask order: {0}, {1}, {0,1}, {2}, {0,2}, {1,2}, {0,1,2}.
  EXPECT_EQ(groups[0].members, (std::vector<std::size_t>{0}));
  EXPECT_EQ(groups[2].members, (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(groups[6].members, (std::vector<std::size_t>{0, 1, 2}));
  for (const auto& g : groups)
    for (std::size_t i = 1; i < g.members.size(); ++i)
      EXPECT_LT(g.members[i - 1], g.members[i]);
}

TEST(EnumerateGroups, RateThresholdPrunes) {
  Rng rng(4);
  GroupEnumConfig cfg;
  cfg.rate_threshold = Mbps{10000.0};  // nothing is this fast
  const auto groups =
      enumerate_groups(beamforming::Scheme::kOptimizedMulticast,
                       make_users(2), beamforming::Codebook{}, rng, cfg);
  EXPECT_TRUE(groups.empty());
}

TEST(EnumerateGroups, MaxGroupSizeCaps) {
  Rng rng(5);
  GroupEnumConfig cfg;
  cfg.max_group_size = 1;
  const auto groups =
      enumerate_groups(beamforming::Scheme::kOptimizedMulticast,
                       make_users(3), beamforming::Codebook{}, rng, cfg);
  EXPECT_EQ(groups.size(), 3u);
}

TEST(EnumerateGroups, UnreachableUserDropped) {
  Rng rng(6);
  channel::PropagationConfig prop;
  std::vector<linalg::CVector> users = make_users(2);
  users.push_back(channel::make_channel(
      prop, channel::Position::from_polar(500.0, 0.0)));  // far away
  const auto groups =
      enumerate_groups(beamforming::Scheme::kOptimizedMulticast, users,
                       beamforming::Codebook{}, rng);
  // Any group containing user 2 has zero rate and is pruned.
  for (const auto& g : groups) EXPECT_FALSE(g.contains(2));
  EXPECT_EQ(groups.size(), 3u);  // subsets of {0, 1}
}

TEST(EnumerateGroups, EmptyUsersThrow) {
  Rng rng(7);
  EXPECT_THROW(enumerate_groups(beamforming::Scheme::kOptimizedMulticast, {},
                                beamforming::Codebook{}, rng),
               std::invalid_argument);
}

TEST(EnumerateGroups, TooManyUsersThrow) {
  Rng rng(8);
  EXPECT_THROW(enumerate_groups(beamforming::Scheme::kOptimizedMulticast,
                                make_users(17), beamforming::Codebook{}, rng),
               std::invalid_argument);
}

TEST(EnumerateGroups, GroupRatesReflectBottleneck) {
  Rng rng(9);
  channel::PropagationConfig prop;
  std::vector<linalg::CVector> users;
  users.push_back(channel::make_channel(
      prop, channel::Position::from_polar(3.0, 0.0)));   // strong
  users.push_back(channel::make_channel(
      prop, channel::Position::from_polar(16.0, 0.5)));  // weak
  const auto groups =
      enumerate_groups(beamforming::Scheme::kOptimizedMulticast, users,
                       beamforming::Codebook{}, rng);
  const GroupSpec *solo0 = nullptr, *pair = nullptr;
  for (const auto& g : groups) {
    if (g.members == std::vector<std::size_t>{0}) solo0 = &g;
    if (g.members.size() == 2) pair = &g;
  }
  ASSERT_TRUE(solo0 && pair);
  EXPECT_GT(solo0->beam.rate.value, pair->beam.rate.value);
}

TEST(GroupSpec, ContainsWorks) {
  GroupSpec g;
  g.members = {1, 3, 5};
  EXPECT_TRUE(g.contains(3));
  EXPECT_FALSE(g.contains(2));
}

TEST(EnumerateGroups, EightUsersEnumerationCompletes) {
  Rng rng(10);
  const auto groups =
      enumerate_groups(beamforming::Scheme::kOptimizedMulticast,
                       make_users(8, 8.0), beamforming::Codebook{}, rng);
  EXPECT_GT(groups.size(), 120u);  // large subsets split power 8-way and
                                   // some fall below MCS 1; most survive
  EXPECT_LE(groups.size(), 255u);
}

}  // namespace
}  // namespace w4k::sched

#include "sched/groups.h"

#include "channel/propagation.h"
#include "common/thread_pool.h"

// This suite is the compat contract for the allocating enumerate_groups /
// beamform_subsets forwarders: it pins that the deprecated overloads stay
// bit-identical to the SchedWorkspace surface, so it calls them on purpose.
#if defined(__GNUC__) || defined(__clang__)
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
#endif

#include <gtest/gtest.h>

#include <cstdint>

namespace w4k::sched {
namespace {

std::vector<linalg::CVector> make_users(int n, double distance = 4.0) {
  channel::PropagationConfig prop;
  std::vector<linalg::CVector> out;
  for (int i = 0; i < n; ++i)
    out.push_back(channel::make_channel(
        prop,
        channel::Position::from_polar(distance, -0.4 + 0.8 * i /
                                                     std::max(1, n - 1))));
  return out;
}

TEST(EnumerateGroups, MulticastEnumeratesAllSubsets) {
  Rng rng(1);
  const auto groups =
      enumerate_groups(beamforming::Scheme::kOptimizedMulticast,
                       make_users(3), beamforming::Codebook{}, rng);
  // 2^3 - 1 = 7 subsets, all viable at 4 m.
  EXPECT_EQ(groups.size(), 7u);
}

TEST(EnumerateGroups, UnicastOnlySingletons) {
  Rng rng(2);
  const auto groups =
      enumerate_groups(beamforming::Scheme::kOptimizedUnicast, make_users(4),
                       beamforming::Codebook{}, rng);
  EXPECT_EQ(groups.size(), 4u);
  for (const auto& g : groups) EXPECT_EQ(g.members.size(), 1u);
}

TEST(EnumerateGroups, MembersAscendingAndMaskOrdered) {
  Rng rng(3);
  const auto groups =
      enumerate_groups(beamforming::Scheme::kOptimizedMulticast,
                       make_users(3), beamforming::Codebook{}, rng);
  // Bitmask order: {0}, {1}, {0,1}, {2}, {0,2}, {1,2}, {0,1,2}.
  EXPECT_EQ(groups[0].members, (std::vector<std::size_t>{0}));
  EXPECT_EQ(groups[2].members, (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(groups[6].members, (std::vector<std::size_t>{0, 1, 2}));
  for (const auto& g : groups)
    for (std::size_t i = 1; i < g.members.size(); ++i)
      EXPECT_LT(g.members[i - 1], g.members[i]);
}

TEST(EnumerateGroups, RateThresholdPrunes) {
  Rng rng(4);
  GroupEnumConfig cfg;
  cfg.rate_threshold = Mbps{10000.0};  // nothing is this fast
  const auto groups =
      enumerate_groups(beamforming::Scheme::kOptimizedMulticast,
                       make_users(2), beamforming::Codebook{}, rng, cfg);
  EXPECT_TRUE(groups.empty());
}

TEST(EnumerateGroups, MaxGroupSizeCaps) {
  Rng rng(5);
  GroupEnumConfig cfg;
  cfg.max_group_size = 1;
  const auto groups =
      enumerate_groups(beamforming::Scheme::kOptimizedMulticast,
                       make_users(3), beamforming::Codebook{}, rng, cfg);
  EXPECT_EQ(groups.size(), 3u);
}

TEST(EnumerateGroups, UnreachableUserDropped) {
  Rng rng(6);
  channel::PropagationConfig prop;
  std::vector<linalg::CVector> users = make_users(2);
  users.push_back(channel::make_channel(
      prop, channel::Position::from_polar(500.0, 0.0)));  // far away
  const auto groups =
      enumerate_groups(beamforming::Scheme::kOptimizedMulticast, users,
                       beamforming::Codebook{}, rng);
  // Any group containing user 2 has zero rate and is pruned.
  for (const auto& g : groups) EXPECT_FALSE(g.contains(2));
  EXPECT_EQ(groups.size(), 3u);  // subsets of {0, 1}
}

TEST(EnumerateGroups, EmptyUsersThrow) {
  Rng rng(7);
  EXPECT_THROW(enumerate_groups(beamforming::Scheme::kOptimizedMulticast, {},
                                beamforming::Codebook{}, rng),
               std::invalid_argument);
}

TEST(EnumerateGroups, TooManyUsersThrow) {
  // The hierarchical generator serves up to 64 users; 65 still throws.
  Rng rng(8);
  EXPECT_THROW(enumerate_groups(beamforming::Scheme::kOptimizedMulticast,
                                make_users(65), beamforming::Codebook{}, rng),
               std::invalid_argument);
}

TEST(EnumerateGroups, SeventeenUsersUseTheClusterTree) {
  // Past the hierarchical threshold the exhaustive lattice is replaced by
  // cluster-tree candidates: every user still gets a singleton (coverage),
  // masks stay ascending, and the candidate count is far below 2^17.
  const int n = 17;
  const auto users = make_users(n, 8.0);
  const auto groups = enumerate_groups(
      beamforming::Scheme::kOptimizedMulticast, users,
      beamforming::Codebook{}, 31);
  EXPECT_FALSE(groups.empty());
  EXPECT_LE(groups.size(), 256u);
  for (int u = 0; u < n; ++u) {
    bool singleton = false;
    for (const auto& g : groups)
      singleton |= g.members == std::vector<std::size_t>{
                                    static_cast<std::size_t>(u)};
    EXPECT_TRUE(singleton) << "no singleton for user " << u;
  }
  for (std::size_t i = 1; i < groups.size(); ++i) {
    GroupMask prev = 0, cur = 0;
    for (std::size_t u : groups[i - 1].members) prev |= GroupMask{1} << u;
    for (std::size_t u : groups[i].members) cur |= GroupMask{1} << u;
    EXPECT_LT(prev, cur);
  }
}

TEST(EnumerateGroups, GroupRatesReflectBottleneck) {
  Rng rng(9);
  channel::PropagationConfig prop;
  std::vector<linalg::CVector> users;
  users.push_back(channel::make_channel(
      prop, channel::Position::from_polar(3.0, 0.0)));   // strong
  users.push_back(channel::make_channel(
      prop, channel::Position::from_polar(16.0, 0.5)));  // weak
  const auto groups =
      enumerate_groups(beamforming::Scheme::kOptimizedMulticast, users,
                       beamforming::Codebook{}, rng);
  const GroupSpec *solo0 = nullptr, *pair = nullptr;
  for (const auto& g : groups) {
    if (g.members == std::vector<std::size_t>{0}) solo0 = &g;
    if (g.members.size() == 2) pair = &g;
  }
  ASSERT_TRUE(solo0 && pair);
  EXPECT_GT(solo0->beam.rate.value, pair->beam.rate.value);
}

TEST(GroupSpec, ContainsWorks) {
  GroupSpec g;
  g.members = {1, 3, 5};
  EXPECT_TRUE(g.contains(3));
  EXPECT_FALSE(g.contains(2));
}

TEST(EnumerateGroups, EightUsersEnumerationCompletes) {
  Rng rng(10);
  const auto groups =
      enumerate_groups(beamforming::Scheme::kOptimizedMulticast,
                       make_users(8, 8.0), beamforming::Codebook{}, rng);
  EXPECT_GT(groups.size(), 120u);  // large subsets split power 8-way and
                                   // some fall below MCS 1; most survive
  EXPECT_LE(groups.size(), 255u);
}

// --- Per-subset RNG decoupling (the PR 5 bug fix) ------------------------

bool same_beam(const beamforming::GroupBeam& a,
               const beamforming::GroupBeam& b) {
  if (a.beam.size() != b.beam.size() || a.rate.value != b.rate.value ||
      a.min_rss.value != b.min_rss.value)
    return false;
  for (std::size_t i = 0; i < a.beam.size(); ++i)
    if (a.beam[i] != b.beam[i]) return false;
  return true;
}

std::uint32_t mask_of(const GroupSpec& g) {
  std::uint32_t m = 0;
  for (std::size_t u : g.members) m |= 1u << static_cast<unsigned>(u);
  return m;
}

TEST(EnumerateGroups, SeedOverloadIsDeterministic) {
  const auto users = make_users(4);
  const auto a = enumerate_groups(beamforming::Scheme::kOptimizedMulticast,
                                  users, beamforming::Codebook{}, 77);
  const auto b = enumerate_groups(beamforming::Scheme::kOptimizedMulticast,
                                  users, beamforming::Codebook{}, 77);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].members, b[i].members);
    EXPECT_TRUE(same_beam(a[i].beam, b[i].beam));
  }
}

TEST(EnumerateGroups, FilterKnobsDoNotPerturbSurvivingBeams) {
  // The old coupling: one shared Rng threaded through every subset's SVD
  // power iteration, so excluding a user or tightening the threshold
  // shifted the RNG stream consumed by every *later* subset. Each subset
  // now derives its RNG from (seed, member bitmask); surviving groups'
  // beams must be bit-identical under any filter combination.
  const auto users = make_users(5);
  const std::uint64_t seed = 13;
  const auto full = enumerate_groups(beamforming::Scheme::kOptimizedMulticast,
                                     users, beamforming::Codebook{}, seed);

  std::vector<GroupEnumConfig> cfgs(4);
  cfgs[1].max_group_size = 2;
  cfgs[2].rate_threshold = Mbps{500.0};
  cfgs[3].exclude = {0, 0, 1, 0, 1};  // drop users 2 and 4
  cfgs[3].max_group_size = 3;

  for (const auto& cfg : cfgs) {
    const auto filtered = enumerate_groups(
        beamforming::Scheme::kOptimizedMulticast, users,
        beamforming::Codebook{}, seed, cfg);
    for (const auto& g : filtered) {
      const GroupSpec* match = nullptr;
      for (const auto& f : full)
        if (f.members == g.members) match = &f;
      ASSERT_NE(match, nullptr);
      EXPECT_TRUE(same_beam(g.beam, match->beam))
          << "beam for mask " << mask_of(g) << " perturbed by filter";
    }
  }
}

TEST(EnumerateGroups, ParallelEnumerationBitIdenticalToSerial) {
  const auto users = make_users(6);
  const auto serial = enumerate_groups(
      beamforming::Scheme::kOptimizedMulticast, users,
      beamforming::Codebook{}, 21, {}, nullptr);
  ThreadPool pool(4);
  const auto parallel = enumerate_groups(
      beamforming::Scheme::kOptimizedMulticast, users,
      beamforming::Codebook{}, 21, {}, &pool);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].members, parallel[i].members);
    EXPECT_TRUE(same_beam(serial[i].beam, parallel[i].beam));
  }
}

TEST(EnumerateGroups, LegacyRngOverloadMatchesSeedOverload) {
  // The Rng& overload draws one value for the whole enumeration and
  // delegates — so it shares the per-subset decoupling.
  const auto users = make_users(3);
  Rng rng(99);
  Rng probe(99);
  const std::uint64_t drawn = probe.next();
  const auto via_rng = enumerate_groups(
      beamforming::Scheme::kOptimizedMulticast, users,
      beamforming::Codebook{}, rng);
  const auto via_seed = enumerate_groups(
      beamforming::Scheme::kOptimizedMulticast, users,
      beamforming::Codebook{}, drawn);
  ASSERT_EQ(via_rng.size(), via_seed.size());
  for (std::size_t i = 0; i < via_rng.size(); ++i)
    EXPECT_TRUE(same_beam(via_rng[i].beam, via_seed[i].beam));
}

TEST(SubsetSeed, MixesMaskAndSeed) {
  // Distinct masks (and distinct session seeds) must land in distinct RNG
  // streams; a collision would couple two subsets' power iterations.
  std::vector<std::uint64_t> seen;
  for (std::uint32_t mask = 1; mask < 64; ++mask)
    seen.push_back(subset_seed(7, mask));
  for (std::size_t i = 0; i < seen.size(); ++i)
    for (std::size_t j = i + 1; j < seen.size(); ++j)
      EXPECT_NE(seen[i], seen[j]);
  EXPECT_NE(subset_seed(7, 3), subset_seed(8, 3));
}

TEST(BeamformSubsets, BatchedPathBitIdenticalToSubsetBeam) {
  // The SoA-packed batch path (pre-normalized rows + packed Gram power
  // iteration) must reproduce subset_beam bit for bit on every mask shape:
  // singletons, merges, and groups containing a dead (zero) channel.
  auto users = make_users(6);
  // Zero out user 4's channel to exercise the dead-member path.
  users[4] = linalg::CVector(users[4].size());
  const std::uint64_t seed = 55;
  std::vector<GroupMask> masks;
  for (GroupMask mask = 1; mask < (GroupMask{1} << users.size()); ++mask)
    masks.push_back(mask);
  const auto batched =
      beamform_subsets(beamforming::Scheme::kOptimizedMulticast, users,
                       masks, beamforming::Codebook{}, seed, nullptr);
  ASSERT_EQ(batched.size(), masks.size());
  for (std::size_t i = 0; i < masks.size(); ++i) {
    const auto direct =
        subset_beam(beamforming::Scheme::kOptimizedMulticast, users,
                    masks[i], beamforming::Codebook{}, seed);
    EXPECT_TRUE(same_beam(batched[i], direct))
        << "batched beam differs for mask " << masks[i];
  }
}

TEST(PlanCandidates, BoundPruningIsExactOnTheExhaustivePath) {
  // Everything the bound prunes would have been emission-filtered anyway:
  // the surviving-group set must match a full enumeration's exactly.
  channel::PropagationConfig prop;
  auto users = make_users(4, 6.0);
  users.push_back(channel::make_channel(
      prop, channel::Position::from_polar(400.0, 0.2)));  // unreachable
  GroupEnumConfig cfg;
  cfg.rate_threshold = Mbps{700.0};
  const auto plan = plan_candidates(
      beamforming::Scheme::kOptimizedMulticast, users, cfg);
  EXPECT_GT(plan.pruned, 0u);  // the far user's subsets never beamform
  const auto groups = enumerate_groups(
      beamforming::Scheme::kOptimizedMulticast, users,
      beamforming::Codebook{}, 5, cfg);
  for (const auto& g : groups) {
    EXPECT_FALSE(g.contains(4));
    EXPECT_GE(g.beam.rate.value, 700.0);
  }
}

}  // namespace
}  // namespace w4k::sched

// FaultPlan parsing, validation, seeded generation, and FrameFaults
// resolution — the declarative layer under the chaos suite.
#include "fault/injector.h"
#include "fault/plan.h"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

namespace w4k::fault {
namespace {

// --- Parser --------------------------------------------------------------

TEST(FaultPlanParse, AllEventKindsAndComments) {
  std::istringstream is(
      "# a hostile afternoon\n"
      "feedback 3 1 lost\n"
      "feedback 4 0 delay 2   # arrives two beacons late\n"
      "\n"
      "csi 5 stale\n"
      "csi 6 corrupt\n"
      "blockage 2 4 1 18.5\n"
      "budget 7 2 0.25\n"
      "churn 1 2 leave\n"
      "churn 9 2 join\n");
  const FaultPlan plan = parse_fault_plan(is);
  ASSERT_EQ(plan.feedback.size(), 2u);
  EXPECT_EQ(plan.feedback[0].frame, 3u);
  EXPECT_EQ(plan.feedback[0].user, 1u);
  EXPECT_EQ(plan.feedback[0].delay_frames, -1);
  EXPECT_EQ(plan.feedback[1].delay_frames, 2);
  ASSERT_EQ(plan.csi.size(), 2u);
  EXPECT_FALSE(plan.csi[0].corrupt);
  EXPECT_TRUE(plan.csi[1].corrupt);
  ASSERT_EQ(plan.blockage.size(), 1u);
  EXPECT_EQ(plan.blockage[0].n_frames, 4u);
  EXPECT_DOUBLE_EQ(plan.blockage[0].extra_loss_db, 18.5);
  ASSERT_EQ(plan.budget.size(), 1u);
  EXPECT_DOUBLE_EQ(plan.budget[0].budget_scale, 0.25);
  ASSERT_EQ(plan.churn.size(), 2u);
  EXPECT_FALSE(plan.churn[0].join);
  EXPECT_TRUE(plan.churn[1].join);
  EXPECT_FALSE(plan.empty());
}

TEST(FaultPlanParse, MultiApEventKinds) {
  std::istringstream is(
      "blockage 2 4 1 18.5 ap 1   # only AP 1's ray is shadowed\n"
      "ap_outage 3 6 0 total\n"
      "ap_outage 2 4 1 sector -45 90\n"
      "handoff_beacon 7\n"
      "relay_churn 5 3 2\n");
  const FaultPlan plan = parse_fault_plan(is);
  ASSERT_EQ(plan.blockage.size(), 1u);
  EXPECT_EQ(plan.blockage[0].ap, 1);
  ASSERT_EQ(plan.ap_outage.size(), 2u);
  EXPECT_EQ(plan.ap_outage[0].start_frame, 3u);
  EXPECT_EQ(plan.ap_outage[0].n_frames, 6u);
  EXPECT_EQ(plan.ap_outage[0].ap, 0u);
  EXPECT_TRUE(plan.ap_outage[0].total);
  EXPECT_FALSE(plan.ap_outage[1].total);
  EXPECT_DOUBLE_EQ(plan.ap_outage[1].sector_center_deg, -45.0);
  EXPECT_DOUBLE_EQ(plan.ap_outage[1].sector_width_deg, 90.0);
  ASSERT_EQ(plan.handoff_beacon.size(), 1u);
  EXPECT_EQ(plan.handoff_beacon[0].frame, 7u);
  ASSERT_EQ(plan.relay_churn.size(), 1u);
  EXPECT_EQ(plan.relay_churn[0].start_frame, 5u);
  EXPECT_EQ(plan.relay_churn[0].n_frames, 3u);
  EXPECT_EQ(plan.relay_churn[0].user, 2u);
  EXPECT_FALSE(plan.empty());
}

TEST(FaultPlanParse, ErrorsNameTheLine) {
  const auto expect_error = [](const char* text, const char* needle) {
    std::istringstream is(text);
    try {
      parse_fault_plan(is);
      FAIL() << "expected throw for: " << text;
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
          << e.what();
    }
  };
  expect_error("bogus 1 2 3\n", "fault-plan:1");
  expect_error("csi 5 stale\nfeedback 3 1 maybe\n", "fault-plan:2");
  expect_error("feedback 3 1 delay 0\n", "delay must be > 0");
  expect_error("budget 0 1 1.5\n", "scale must be in (0, 1]");
  expect_error("budget 0 0 0.5\n", "n_frames must be > 0");
  expect_error("blockage 0 1 0 -3\n", "extra_db");
  expect_error("churn 1 0 vanish\n", "join");
  expect_error("csi 5 stale extra\n", "trailing tokens");
  expect_error("feedback 3\n", "expected");
  expect_error("blockage 0 1 0 10 ap -1\n", "ap must be >= 0");
  expect_error("blockage 0 1 0 10 at 1\n", "expected 'ap <ap>'");
  expect_error("ap_outage 0 0 0 total\n", "n_frames must be > 0");
  expect_error("ap_outage 0 1 0 dark\n", "'total' or 'sector'");
  expect_error("ap_outage 0 1 0 sector 0 0\n", "width must be in (0, 360]");
  expect_error("ap_outage 0 1 0 sector 0 400\n", "width must be in (0, 360]");
  expect_error("ap_outage 0 1 0 sector nan 90\n", "expected <center_deg>");
  expect_error("relay_churn 0 0 1\n", "n_frames must be > 0");
  expect_error("handoff_beacon 3 extra\n", "trailing tokens");
}

TEST(FaultPlanParse, ToTextRoundTripsEveryKind) {
  std::istringstream is(
      "feedback 3 1 lost\n"
      "feedback 4 0 delay 2\n"
      "csi 5 stale\n"
      "blockage 2 4 1 18.5 ap 1\n"
      "blockage 6 2 0 30\n"
      "budget 7 2 0.25\n"
      "churn 1 2 leave\n"
      "ap_outage 3 6 0 total\n"
      "ap_outage 2 4 1 sector -45 90.5\n"
      "handoff_beacon 7\n"
      "relay_churn 5 3 2\n");
  const FaultPlan plan = parse_fault_plan(is);
  const std::string text = to_text(plan);
  std::istringstream again(text);
  const FaultPlan plan2 = parse_fault_plan(again);
  EXPECT_EQ(to_text(plan2), text);
  ASSERT_EQ(plan2.ap_outage.size(), 2u);
  EXPECT_TRUE(plan2.ap_outage[0].total);
  EXPECT_DOUBLE_EQ(plan2.ap_outage[1].sector_width_deg, 90.5);
  ASSERT_EQ(plan2.blockage.size(), 2u);
  EXPECT_EQ(plan2.blockage[0].ap, 1);
  EXPECT_EQ(plan2.blockage[1].ap, -1);
  ASSERT_EQ(plan2.handoff_beacon.size(), 1u);
  ASSERT_EQ(plan2.relay_churn.size(), 1u);
}

TEST(FaultPlanParse, LoadFromMissingFileThrowsWithPath) {
  try {
    load_fault_plan("/nonexistent/plan.txt");
    FAIL();
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("/nonexistent/plan.txt"),
              std::string::npos);
  }
}

// --- Validation ----------------------------------------------------------

TEST(FaultPlanValidate, NamesTheOffendingEvent) {
  FaultPlan plan;
  plan.blockage.push_back({0, 1, 0, 10.0});
  plan.blockage.push_back({0, 1, 0, -1.0});
  try {
    plan.validate();
    FAIL();
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("FaultPlan.blockage[1].extra_loss_db"),
              std::string::npos)
        << e.what();
  }
}

TEST(FaultPlanValidate, RejectsOutOfRangeUsers) {
  FaultPlan plan;
  plan.churn.push_back({0, 5, false});
  EXPECT_NO_THROW(plan.validate(0));  // user range unknown: skipped
  EXPECT_THROW(plan.validate(3), std::invalid_argument);
  EXPECT_NO_THROW(plan.validate(6));
}

TEST(FaultPlanValidate, RejectsBadScalesAndNaN) {
  FaultPlan plan;
  plan.budget.push_back({0, 1, 0.0});
  EXPECT_THROW(plan.validate(), std::invalid_argument);
  plan.budget[0].budget_scale = std::nan("");
  EXPECT_THROW(plan.validate(), std::invalid_argument);
  plan.budget[0].budget_scale = 1.0;
  EXPECT_NO_THROW(plan.validate());
}

TEST(FaultPlanValidate, RejectsOutOfRangeAps) {
  FaultPlan plan;
  plan.ap_outage.push_back({0, 2, 3, true});
  EXPECT_NO_THROW(plan.validate(0, 0));  // ap range unknown: skipped
  EXPECT_NO_THROW(plan.validate(0, 4));
  try {
    plan.validate(0, 2);
    FAIL();
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("FaultPlan.ap_outage[0].ap"),
              std::string::npos)
        << e.what();
  }
  plan.ap_outage.clear();
  plan.blockage.push_back({0, 1, 0, 10.0, /*ap=*/5});
  EXPECT_THROW(plan.validate(1, 2), std::invalid_argument);
  plan.blockage[0].ap = -1;  // "every AP" needs no range check
  EXPECT_NO_THROW(plan.validate(1, 2));
}

TEST(FaultPlanValidate, RejectsBadSectorsAndRelayChurn) {
  FaultPlan plan;
  plan.ap_outage.push_back(
      {0, 2, 0, /*total=*/false, /*center=*/0.0, /*width=*/0.0});
  EXPECT_THROW(plan.validate(), std::invalid_argument);
  plan.ap_outage[0].sector_width_deg = 361.0;
  EXPECT_THROW(plan.validate(), std::invalid_argument);
  plan.ap_outage[0].sector_width_deg = 90.0;
  plan.ap_outage[0].sector_center_deg = std::nan("");
  EXPECT_THROW(plan.validate(), std::invalid_argument);
  plan.ap_outage[0].sector_center_deg = 0.0;
  EXPECT_NO_THROW(plan.validate());
  plan.ap_outage[0].n_frames = 0;
  EXPECT_THROW(plan.validate(), std::invalid_argument);
  plan.ap_outage.clear();

  plan.relay_churn.push_back({0, 0, 1});
  EXPECT_THROW(plan.validate(), std::invalid_argument);
  plan.relay_churn[0].n_frames = 2;
  EXPECT_NO_THROW(plan.validate(4));
  plan.relay_churn[0].user = 9;
  EXPECT_THROW(plan.validate(4), std::invalid_argument);
}

// --- Seeded generation ---------------------------------------------------

TEST(FaultPlanRandom, DeterministicPerSeed) {
  const FaultPlan a = FaultPlan::random(99, 32, 4);
  const FaultPlan b = FaultPlan::random(99, 32, 4);
  ASSERT_EQ(a.feedback.size(), b.feedback.size());
  for (std::size_t i = 0; i < a.feedback.size(); ++i) {
    EXPECT_EQ(a.feedback[i].frame, b.feedback[i].frame);
    EXPECT_EQ(a.feedback[i].user, b.feedback[i].user);
    EXPECT_EQ(a.feedback[i].delay_frames, b.feedback[i].delay_frames);
  }
  ASSERT_EQ(a.blockage.size(), b.blockage.size());
  for (std::size_t i = 0; i < a.blockage.size(); ++i)
    EXPECT_EQ(a.blockage[i].extra_loss_db, b.blockage[i].extra_loss_db);
  const FaultPlan c = FaultPlan::random(100, 32, 4);
  EXPECT_FALSE(c.empty());
}

TEST(FaultPlanRandom, GeneratedPlansAlwaysValidate) {
  for (std::uint64_t seed = 0; seed < 100; ++seed) {
    const FaultPlan plan = FaultPlan::random(seed, 16, 3);
    EXPECT_NO_THROW(plan.validate(3)) << "seed " << seed;
  }
}

TEST(FaultPlanRandom, DefaultConfigEmitsNoMultiApEvents) {
  // Backward-compat: a default RandomPlanConfig must generate exactly the
  // plans it did before the multi-AP kinds existed — no new event types,
  // and bit-identical text per seed across calls.
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    const FaultPlan plan = FaultPlan::random(seed, 32, 4);
    EXPECT_TRUE(plan.ap_outage.empty()) << "seed " << seed;
    EXPECT_TRUE(plan.handoff_beacon.empty()) << "seed " << seed;
    EXPECT_TRUE(plan.relay_churn.empty()) << "seed " << seed;
    for (const auto& b : plan.blockage)
      EXPECT_EQ(b.ap, -1) << "seed " << seed;
    EXPECT_EQ(to_text(plan), to_text(FaultPlan::random(seed, 32, 4)));
  }
}

TEST(FaultPlanRandom, MultiApKnobsGenerateValidatingPlans) {
  RandomPlanConfig cfg;
  cfg.ap_outages = 2;
  cfg.handoff_beacon_losses = 2;
  cfg.relay_churns = 2;
  cfg.n_aps = 3;
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    const FaultPlan plan = FaultPlan::random(seed, 24, 4, cfg);
    EXPECT_EQ(plan.ap_outage.size(), 2u) << "seed " << seed;
    EXPECT_EQ(plan.handoff_beacon.size(), 2u) << "seed " << seed;
    EXPECT_EQ(plan.relay_churn.size(), 2u) << "seed " << seed;
    EXPECT_NO_THROW(plan.validate(4, 3)) << "seed " << seed;
    for (const auto& o : plan.ap_outage)
      EXPECT_LT(o.ap, 3u) << "seed " << seed;
    // Deterministic per seed, including the new kinds.
    EXPECT_EQ(to_text(plan), to_text(FaultPlan::random(seed, 24, 4, cfg)));
  }
}

TEST(FaultPlanRandom, NeverChurnsOutUserZero) {
  for (std::uint64_t seed = 0; seed < 100; ++seed) {
    const FaultPlan plan = FaultPlan::random(seed, 16, 3);
    for (const auto& c : plan.churn) EXPECT_NE(c.user, 0u) << "seed " << seed;
  }
}

// --- FrameFaults resolution ----------------------------------------------

TEST(FaultInjectorTest, ResolvesPerFrameState) {
  FaultPlan plan;
  plan.feedback.push_back({2, 1, -1});
  plan.feedback.push_back({2, 0, 3});
  plan.csi.push_back({2, false});
  plan.budget.push_back({1, 3, 0.4});
  plan.blockage.push_back({2, 2, 1, 12.0});
  plan.churn.push_back({1, 2, false});
  plan.churn.push_back({3, 2, true});
  const FaultInjector inj(plan, 3);

  const FrameFaults f0 = inj.at(0);
  EXPECT_FALSE(f0.any());
  EXPECT_DOUBLE_EQ(f0.budget_scale, 1.0);

  const FrameFaults f2 = inj.at(2);
  EXPECT_TRUE(f2.any());
  EXPECT_TRUE(f2.csi_stale);
  EXPECT_FALSE(f2.csi_corrupt);
  EXPECT_DOUBLE_EQ(f2.budget_scale, 0.4);
  EXPECT_EQ(f2.feedback_lost[1], 1);
  EXPECT_EQ(f2.feedback_lost[0], 1);       // delayed = missing this frame
  EXPECT_EQ(f2.feedback_delayed[0], 1);    // ...but known-alive
  EXPECT_EQ(f2.feedback_delayed[1], 0);
  EXPECT_DOUBLE_EQ(f2.blockage_db[1], 12.0);
  EXPECT_DOUBLE_EQ(f2.blockage_db[0], 0.0);
  EXPECT_EQ(f2.user_active[2], 0);         // left at frame 1
  EXPECT_EQ(f2.user_active[0], 1);

  const FrameFaults f4 = inj.at(4);
  EXPECT_EQ(f4.user_active[2], 1);         // rejoined at frame 3
  EXPECT_DOUBLE_EQ(f4.budget_scale, 1.0);  // collapse covered frames 1-3
  EXPECT_DOUBLE_EQ(f4.blockage_db[1], 0.0);
}

TEST(FaultInjectorTest, OverlappingBurstsStackAndCollapseTakesMin) {
  FaultPlan plan;
  plan.blockage.push_back({0, 4, 0, 10.0});
  plan.blockage.push_back({2, 4, 0, 5.0});
  plan.budget.push_back({0, 4, 0.5});
  plan.budget.push_back({2, 4, 0.2});
  const FaultInjector inj(plan, 1);
  EXPECT_DOUBLE_EQ(inj.at(1).blockage_db[0], 10.0);
  EXPECT_DOUBLE_EQ(inj.at(3).blockage_db[0], 15.0);  // additive overlap
  EXPECT_DOUBLE_EQ(inj.at(1).budget_scale, 0.5);
  EXPECT_DOUBLE_EQ(inj.at(3).budget_scale, 0.2);     // worst stall wins
}

TEST(FaultInjectorTest, ApplyAttenuatesTruthNowAndDecisionLate) {
  FaultPlan plan;
  plan.blockage.push_back({/*start=*/5, /*n=*/2, /*user=*/0,
                           /*db=*/20.0});
  const FaultInjector inj(plan, 1);
  const linalg::CVector h{{1.0, 0.0}, {0.0, -2.0}};

  // First burst frame: the truth is attenuated 20 dB (x0.1 amplitude),
  // the decision CSI still looks clean (beacon predates the burst).
  std::vector<linalg::CVector> decision{h}, truth{h};
  inj.apply(5, decision, truth);
  EXPECT_DOUBLE_EQ(truth[0][0].real(), 0.1);
  EXPECT_DOUBLE_EQ(truth[0][1].imag(), -0.2);
  EXPECT_DOUBLE_EQ(decision[0][0].real(), 1.0);

  // Next frame the beacon has caught up: both are attenuated.
  decision = {h};
  truth = {h};
  inj.apply(6, decision, truth);
  EXPECT_DOUBLE_EQ(truth[0][0].real(), 0.1);
  EXPECT_DOUBLE_EQ(decision[0][0].real(), 0.1);

  // One frame past the burst: truth is clean again, the decision still
  // sees the last burst frame.
  decision = {h};
  truth = {h};
  inj.apply(7, decision, truth);
  EXPECT_DOUBLE_EQ(truth[0][0].real(), 1.0);
  EXPECT_DOUBLE_EQ(decision[0][0].real(), 0.1);
}

TEST(FaultInjectorTest, CorruptBeaconPoisonsDecisionOnly) {
  FaultPlan plan;
  plan.csi.push_back({3, /*corrupt=*/true});
  const FaultInjector inj(plan, 1);
  const linalg::CVector h{{1.0, 0.5}};
  std::vector<linalg::CVector> decision{h}, truth{h};
  inj.apply(3, decision, truth);
  EXPECT_TRUE(std::isnan(decision[0][0].real()));
  EXPECT_DOUBLE_EQ(truth[0][0].real(), 1.0);
}

TEST(FaultInjectorTest, ConstructionValidatesAgainstUserCount) {
  FaultPlan plan;
  plan.feedback.push_back({0, 7, -1});
  EXPECT_THROW(FaultInjector(plan, 3), std::invalid_argument);
  EXPECT_NO_THROW(FaultInjector(plan, 8));
}

}  // namespace
}  // namespace w4k::fault

#include "transport/feedback.h"
#include "transport/leaky_bucket.h"
#include "transport/packet.h"

#include <gtest/gtest.h>

namespace w4k::transport {
namespace {

TEST(LeakyBucket, StartsFull) {
  LeakyBucket b(Mbps{100.0}, 10000);
  EXPECT_TRUE(b.can_send(10000));
  EXPECT_FALSE(b.can_send(10001));
}

TEST(LeakyBucket, SendConsumesCredit) {
  LeakyBucket b(Mbps{100.0}, 10000);
  b.on_send(6000);
  EXPECT_DOUBLE_EQ(b.credit_bytes(), 4000.0);
  EXPECT_TRUE(b.can_send(4000));
  EXPECT_FALSE(b.can_send(4001));
}

TEST(LeakyBucket, AdvanceRefillsAtRate) {
  LeakyBucket b(Mbps{8.0}, 1'000'000);  // 1 MB/s fill
  b.on_send(1'000'000);
  b.advance(0.5);
  EXPECT_NEAR(b.credit_bytes(), 500'000.0, 1.0);
}

TEST(LeakyBucket, CreditCappedAtDepth) {
  LeakyBucket b(Mbps{8.0}, 1000);
  b.advance(100.0);  // would accrue 100 MB
  EXPECT_DOUBLE_EQ(b.credit_bytes(), 1000.0);
}

TEST(LeakyBucket, CapBoundsBurstAndThusDelay) {
  // The paper sets the cap to ~10 packets to bound driver queueing: after
  // an idle period the largest possible burst is the cap.
  LeakyBucket b(Mbps{1000.0}, 10 * 6016);
  b.advance(10.0);  // long idle
  std::size_t burst = 0;
  while (b.can_send(6016)) {
    b.on_send(6016);
    ++burst;
  }
  EXPECT_EQ(burst, 10u);
}

TEST(LeakyBucket, TimeUntilComputesWait) {
  LeakyBucket b(Mbps{8.0}, 2000);  // 1 MB/s
  b.on_send(2000);
  EXPECT_NEAR(b.time_until(1000), 1e-3, 1e-9);
  EXPECT_DOUBLE_EQ(b.time_until(0), 0.0);
}

TEST(LeakyBucket, ZeroRateNeverRefills) {
  LeakyBucket b(Mbps{0.0}, 1000);
  b.on_send(1000);
  EXPECT_GT(b.time_until(1), 1e17);
  b.advance(100.0);
  EXPECT_FALSE(b.can_send(1));
}

TEST(LeakyBucket, SetRateTakesEffect) {
  LeakyBucket b(Mbps{8.0}, 10000);
  b.on_send(10000);
  b.set_rate(Mbps{80.0});
  b.advance(0.001);  // 10 MB/s * 1 ms = 10 kB
  EXPECT_NEAR(b.credit_bytes(), 10000.0, 1.0);
}

TEST(LeakyBucket, NegativeAdvanceIgnored) {
  LeakyBucket b(Mbps{8.0}, 1000);
  b.on_send(500);
  b.advance(-1.0);
  EXPECT_DOUBLE_EQ(b.credit_bytes(), 500.0);
}

TEST(LeakyBucket, ZeroCapacityThrows) {
  EXPECT_THROW(LeakyBucket(Mbps{1.0}, 0), std::invalid_argument);
}

TEST(BandwidthEstimator, NeedsFullWindow) {
  BandwidthEstimator est(5);
  for (int i = 0; i < 4; ++i) est.on_probe(i * 0.001, 6000);
  EXPECT_FALSE(est.estimate().has_value());
  est.on_probe(4 * 0.001, 6000);
  EXPECT_TRUE(est.estimate().has_value());
}

TEST(BandwidthEstimator, MeasuresBackToBackRate) {
  // 6000 B every 1 ms -> 48 Mbps.
  BandwidthEstimator est(5);
  for (int i = 0; i < 5; ++i) est.on_probe(i * 0.001, 6000);
  EXPECT_NEAR(est.estimate()->value, 48.0, 1e-9);
}

TEST(BandwidthEstimator, SlidingWindowTracksChanges) {
  BandwidthEstimator est(5);
  // Slow phase: 1 ms spacing.
  for (int i = 0; i < 5; ++i) est.on_probe(i * 0.001, 6000);
  // Fast phase: 0.1 ms spacing.
  double t = 5 * 0.001;
  for (int i = 0; i < 5; ++i) {
    t += 0.0001;
    est.on_probe(t, 6000);
  }
  EXPECT_NEAR(est.estimate()->value, 480.0, 1e-6);
}

TEST(BandwidthEstimator, ZeroSpanYieldsNothing) {
  BandwidthEstimator est(3);
  for (int i = 0; i < 3; ++i) est.on_probe(1.0, 6000);  // same timestamp
  EXPECT_FALSE(est.estimate().has_value());
}

TEST(BandwidthEstimator, ResetClearsWindow) {
  BandwidthEstimator est(3);
  for (int i = 0; i < 3; ++i) est.on_probe(i * 0.001, 6000);
  ASSERT_TRUE(est.estimate().has_value());
  est.reset();
  EXPECT_EQ(est.samples(), 0u);
  EXPECT_FALSE(est.estimate().has_value());
}

TEST(BandwidthEstimator, PaperWindowIsHundredPackets) {
  BandwidthEstimator est;  // default
  for (int i = 0; i < 99; ++i) est.on_probe(i * 0.0001, 6000);
  EXPECT_FALSE(est.estimate().has_value());
  est.on_probe(99 * 0.0001, 6000);
  EXPECT_TRUE(est.estimate().has_value());
}

TEST(BandwidthEstimator, TinyWindowThrows) {
  EXPECT_THROW(BandwidthEstimator(1), std::invalid_argument);
}

TEST(Packet, WireSizeUsesPayloadOrSymbolSize) {
  Packet p;
  EXPECT_EQ(p.wire_size(6000), Packet::kHeaderBytes + 6000);
  p.payload.assign(100, 0);
  EXPECT_EQ(p.wire_size(6000), Packet::kHeaderBytes + 100);
}

// --- Serial-number arithmetic for the wrapping sequence fields -----------
//
// frame_id (u32) and group_id (u16) both wrap on a long-lived sender;
// ordering via plain `<` inverts at the boundary. These regression tests
// pin the RFC 1982 semantics at the exact wrap points.

TEST(SeqArith, U32OrderingAcrossWrap) {
  const std::uint32_t max = 0xffffffffu;
  EXPECT_TRUE(seq_less<std::uint32_t>(max, 0u));       // 0 is newer
  EXPECT_FALSE(seq_less<std::uint32_t>(0u, max));
  EXPECT_TRUE(seq_less<std::uint32_t>(max - 1, max));
  EXPECT_TRUE(seq_less<std::uint32_t>(max, 5u));
  EXPECT_FALSE(seq_less<std::uint32_t>(5u, max));
  EXPECT_FALSE(seq_less<std::uint32_t>(7u, 7u));
  EXPECT_TRUE(seq_less_eq<std::uint32_t>(7u, 7u));
  // Plain `<` gets every one of the cross-wrap cases above backwards.
  EXPECT_LT(0u, max);
}

TEST(SeqArith, U16OrderingAcrossWrap) {
  const std::uint16_t max = 0xffff;
  EXPECT_TRUE(seq_less<std::uint16_t>(max, std::uint16_t{0}));
  EXPECT_FALSE(seq_less<std::uint16_t>(std::uint16_t{0}, max));
  EXPECT_TRUE(
      seq_less<std::uint16_t>(std::uint16_t{0xfff0}, std::uint16_t{0x0010}));
}

TEST(SeqArith, HalfRangeIsUnordered) {
  // Exactly 2^(N-1) apart is ambiguous by construction: neither precedes.
  EXPECT_FALSE(seq_less<std::uint32_t>(0u, 0x80000000u));
  EXPECT_FALSE(seq_less<std::uint32_t>(0x80000000u, 0u));
  EXPECT_FALSE(
      seq_less<std::uint16_t>(std::uint16_t{0}, std::uint16_t{0x8000}));
}

TEST(SeqArith, DistanceWrapsForward) {
  EXPECT_EQ(seq_distance<std::uint32_t>(0xfffffffeu, 3u), 5u);
  EXPECT_EQ(seq_distance<std::uint32_t>(3u, 3u), 0u);
  EXPECT_EQ(seq_distance<std::uint16_t>(std::uint16_t{0xfffe},
                                        std::uint16_t{1}),
            std::uint16_t{3});
}

TEST(SeqArith, ReportCollectorFrameMatchIsWrapSafe) {
  // The feedback dedupe path compares frame ids by equality only, which
  // needs no serial arithmetic — pin that a collector armed at the wrap
  // boundary accepts exactly its own frame id and nothing adjacent.
  ReportCollector c(0xffffffffu, 2, 1);
  ReceptionReport r;
  r.frame_id = 0xffffffffu;
  r.user = 0;
  r.symbols_received = {4};
  EXPECT_TRUE(c.accept(r));
  r.frame_id = 0;  // next frame after the wrap: a different frame
  r.user = 1;
  EXPECT_FALSE(c.accept(r));
  c.reset(0, 2, 1);
  EXPECT_TRUE(c.accept(r));
}

}  // namespace
}  // namespace w4k::transport

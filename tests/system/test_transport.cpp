#include "transport/feedback.h"
#include "transport/leaky_bucket.h"
#include "transport/packet.h"

#include <gtest/gtest.h>

namespace w4k::transport {
namespace {

TEST(LeakyBucket, StartsFull) {
  LeakyBucket b(Mbps{100.0}, 10000);
  EXPECT_TRUE(b.can_send(10000));
  EXPECT_FALSE(b.can_send(10001));
}

TEST(LeakyBucket, SendConsumesCredit) {
  LeakyBucket b(Mbps{100.0}, 10000);
  b.on_send(6000);
  EXPECT_DOUBLE_EQ(b.credit_bytes(), 4000.0);
  EXPECT_TRUE(b.can_send(4000));
  EXPECT_FALSE(b.can_send(4001));
}

TEST(LeakyBucket, AdvanceRefillsAtRate) {
  LeakyBucket b(Mbps{8.0}, 1'000'000);  // 1 MB/s fill
  b.on_send(1'000'000);
  b.advance(0.5);
  EXPECT_NEAR(b.credit_bytes(), 500'000.0, 1.0);
}

TEST(LeakyBucket, CreditCappedAtDepth) {
  LeakyBucket b(Mbps{8.0}, 1000);
  b.advance(100.0);  // would accrue 100 MB
  EXPECT_DOUBLE_EQ(b.credit_bytes(), 1000.0);
}

TEST(LeakyBucket, CapBoundsBurstAndThusDelay) {
  // The paper sets the cap to ~10 packets to bound driver queueing: after
  // an idle period the largest possible burst is the cap.
  LeakyBucket b(Mbps{1000.0}, 10 * 6016);
  b.advance(10.0);  // long idle
  std::size_t burst = 0;
  while (b.can_send(6016)) {
    b.on_send(6016);
    ++burst;
  }
  EXPECT_EQ(burst, 10u);
}

TEST(LeakyBucket, TimeUntilComputesWait) {
  LeakyBucket b(Mbps{8.0}, 2000);  // 1 MB/s
  b.on_send(2000);
  EXPECT_NEAR(b.time_until(1000), 1e-3, 1e-9);
  EXPECT_DOUBLE_EQ(b.time_until(0), 0.0);
}

TEST(LeakyBucket, ZeroRateNeverRefills) {
  LeakyBucket b(Mbps{0.0}, 1000);
  b.on_send(1000);
  EXPECT_GT(b.time_until(1), 1e17);
  b.advance(100.0);
  EXPECT_FALSE(b.can_send(1));
}

TEST(LeakyBucket, SetRateTakesEffect) {
  LeakyBucket b(Mbps{8.0}, 10000);
  b.on_send(10000);
  b.set_rate(Mbps{80.0});
  b.advance(0.001);  // 10 MB/s * 1 ms = 10 kB
  EXPECT_NEAR(b.credit_bytes(), 10000.0, 1.0);
}

TEST(LeakyBucket, NegativeAdvanceIgnored) {
  LeakyBucket b(Mbps{8.0}, 1000);
  b.on_send(500);
  b.advance(-1.0);
  EXPECT_DOUBLE_EQ(b.credit_bytes(), 500.0);
}

TEST(LeakyBucket, ZeroCapacityThrows) {
  EXPECT_THROW(LeakyBucket(Mbps{1.0}, 0), std::invalid_argument);
}

TEST(BandwidthEstimator, NeedsFullWindow) {
  BandwidthEstimator est(5);
  for (int i = 0; i < 4; ++i) est.on_probe(i * 0.001, 6000);
  EXPECT_FALSE(est.estimate().has_value());
  est.on_probe(4 * 0.001, 6000);
  EXPECT_TRUE(est.estimate().has_value());
}

TEST(BandwidthEstimator, MeasuresBackToBackRate) {
  // 6000 B every 1 ms -> 48 Mbps.
  BandwidthEstimator est(5);
  for (int i = 0; i < 5; ++i) est.on_probe(i * 0.001, 6000);
  EXPECT_NEAR(est.estimate()->value, 48.0, 1e-9);
}

TEST(BandwidthEstimator, SlidingWindowTracksChanges) {
  BandwidthEstimator est(5);
  // Slow phase: 1 ms spacing.
  for (int i = 0; i < 5; ++i) est.on_probe(i * 0.001, 6000);
  // Fast phase: 0.1 ms spacing.
  double t = 5 * 0.001;
  for (int i = 0; i < 5; ++i) {
    t += 0.0001;
    est.on_probe(t, 6000);
  }
  EXPECT_NEAR(est.estimate()->value, 480.0, 1e-6);
}

TEST(BandwidthEstimator, ZeroSpanYieldsNothing) {
  BandwidthEstimator est(3);
  for (int i = 0; i < 3; ++i) est.on_probe(1.0, 6000);  // same timestamp
  EXPECT_FALSE(est.estimate().has_value());
}

TEST(BandwidthEstimator, ResetClearsWindow) {
  BandwidthEstimator est(3);
  for (int i = 0; i < 3; ++i) est.on_probe(i * 0.001, 6000);
  ASSERT_TRUE(est.estimate().has_value());
  est.reset();
  EXPECT_EQ(est.samples(), 0u);
  EXPECT_FALSE(est.estimate().has_value());
}

TEST(BandwidthEstimator, PaperWindowIsHundredPackets) {
  BandwidthEstimator est;  // default
  for (int i = 0; i < 99; ++i) est.on_probe(i * 0.0001, 6000);
  EXPECT_FALSE(est.estimate().has_value());
  est.on_probe(99 * 0.0001, 6000);
  EXPECT_TRUE(est.estimate().has_value());
}

TEST(BandwidthEstimator, TinyWindowThrows) {
  EXPECT_THROW(BandwidthEstimator(1), std::invalid_argument);
}

TEST(Packet, WireSizeUsesPayloadOrSymbolSize) {
  Packet p;
  EXPECT_EQ(p.wire_size(6000), Packet::kHeaderBytes + 6000);
  p.payload.assign(100, 0);
  EXPECT_EQ(p.wire_size(6000), Packet::kHeaderBytes + 100);
}

}  // namespace
}  // namespace w4k::transport

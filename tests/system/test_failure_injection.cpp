// Failure injection: the system must degrade gracefully, never crash or
// hang, under hostile conditions — deep outage mid-trace, pathological
// queue sizes, total feedback loss, near-total packet loss, and abrupt
// channel collapse between decision and transmission.
#include "common/stats.h"
#include "core/pretrained.h"
#include "core/runner.h"

#include <gtest/gtest.h>

namespace w4k::core {
namespace {

constexpr int kW = 256;
constexpr int kH = 144;

class FailureInjectionTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    quality_ = new model::QualityModel(42);
    PretrainedOptions opts;
    opts.cache_path = "session_test_model.cache";
    ensure_trained(*quality_, opts);
    video::VideoSpec spec;
    spec.width = kW;
    spec.height = kH;
    spec.frames = 3;
    spec.seed = 11;
    contexts_ = new std::vector<FrameContext>(make_contexts(
        video::SyntheticVideo(spec), 2, scaled_symbol_size(kW, kH)));
  }
  static void TearDownTestSuite() {
    delete quality_;
    delete contexts_;
    quality_ = nullptr;
    contexts_ = nullptr;
  }

  static std::vector<linalg::CVector> channels_at(double distance) {
    Rng rng(5);
    channel::PropagationConfig prop;
    return channels_for(prop, place_users_fixed(2, distance, 0.6, rng));
  }

  static model::QualityModel* quality_;
  static std::vector<FrameContext>* contexts_;
};

model::QualityModel* FailureInjectionTest::quality_ = nullptr;
std::vector<FrameContext>* FailureInjectionTest::contexts_ = nullptr;

TEST_F(FailureInjectionTest, ChannelCollapseBetweenBeaconAndFrame) {
  // Decision made on a 3 m channel; by transmit time the user is at 25 m.
  // The frame must complete (no hang), deliver almost nothing, and the
  // next adapted frame must recover.
  SessionConfig cfg = SessionConfig::scaled(kW, kH);
  MulticastSession session(cfg, *quality_, beamforming::Codebook{});
  const auto good = channels_at(3.0);
  const auto collapsed = channels_at(25.0);

  const FrameOutcome crashed =
      session.step(good, collapsed, contexts_->front());
  EXPECT_LT(crashed.ssim[0], 0.9);

  const FrameOutcome recovered =
      session.step(collapsed, collapsed, contexts_->front());
  EXPECT_GE(recovered.ssim[0], crashed.ssim[0]);
}

TEST_F(FailureInjectionTest, DeepOutageMidTraceAndRecovery) {
  // Splice an outage (users at 40 m: below MCS 1) into an otherwise good
  // trace. Outage frames render ~blank; recovery is immediate.
  channel::CsiTrace trace;
  const auto good = channels_at(3.0);
  const auto dead = channels_at(40.0);
  for (int t = 0; t < 9; ++t) {
    trace.snapshots.push_back(t >= 3 && t < 6 ? dead : good);
    trace.positions.push_back(
        {channel::Position{3, 0}, channel::Position{3, 1}});
  }
  SessionConfig cfg = SessionConfig::scaled(kW, kH);
  MulticastSession session(cfg, *quality_, beamforming::Codebook{});
  const SessionReport run = run_trace(session, trace, *contexts_, 1);
  ASSERT_EQ(run.frames(), 9u);
  const double blank = contexts_->front().content.blank_ssim;
  EXPECT_NEAR(run.frame(4).ssim[0], blank, 0.05);   // outage ~ blank
  EXPECT_GT(run.frame(8).ssim[0], 0.9);             // recovered
}

TEST_F(FailureInjectionTest, NoFeedbackChannel) {
  SessionConfig cfg = SessionConfig::scaled(kW, kH);
  cfg.engine.feedback_rounds = 0;
  cfg.loss.at_zero_margin = 0.2;  // hostile channel, no repair possible
  MulticastSession session(cfg, *quality_, beamforming::Codebook{});
  const auto chans = channels_at(6.0);
  const SessionReport run = run_static(session, chans, *contexts_, 5);
  // Quality suffers but every frame completes with sane outputs.
  for (double s : run.all_ssim()) {
    EXPECT_GT(s, 0.3);
    EXPECT_LE(s, 1.0);
  }
}

TEST_F(FailureInjectionTest, PathologicalQueueOfOnePacket) {
  SessionConfig cfg = SessionConfig::scaled(kW, kH);
  cfg.engine.queue_capacity_bytes = cfg.engine.symbol_size + 1;
  cfg.engine.rate_control = false;  // dump the burst at the tiny queue
  MulticastSession session(cfg, *quality_, beamforming::Codebook{});
  const auto chans = channels_at(3.0);
  const SessionReport run = run_static(session, chans, *contexts_, 4);
  // Nearly everything drops; the receiver sees ~blank frames. No crash.
  for (const auto& f : run.frame_outcomes())
    EXPECT_GT(f.stats.packets_dropped_queue, 0u);
}

TEST_F(FailureInjectionTest, NearTotalLoss) {
  SessionConfig cfg = SessionConfig::scaled(kW, kH);
  cfg.loss.floor = 0.95;  // 95% of packets vanish
  MulticastSession session(cfg, *quality_, beamforming::Codebook{});
  const auto chans = channels_at(3.0);
  const SessionReport run = run_static(session, chans, *contexts_, 3);
  const double blank = contexts_->front().content.blank_ssim;
  for (double s : run.all_ssim()) EXPECT_GE(s, blank - 0.05);
}

TEST_F(FailureInjectionTest, ZeroFrameBudget) {
  SessionConfig cfg = SessionConfig::scaled(kW, kH);
  cfg.engine.frame_budget = 1e-9;  // effectively no airtime
  MulticastSession session(cfg, *quality_, beamforming::Codebook{});
  const auto chans = channels_at(3.0);
  const FrameOutcome out = session.step(chans, chans, contexts_->front());
  EXPECT_LE(out.stats.packets_sent, 1u);
  EXPECT_NEAR(out.ssim[0], contexts_->front().content.blank_ssim, 0.05);
}

TEST_F(FailureInjectionTest, BacklogStormWithoutRateControlDrains) {
  // Several frames of over-subscription must not accumulate unbounded
  // state: the backlog is capped by the queue capacity.
  SessionConfig cfg = SessionConfig::scaled(kW, kH);
  cfg.engine.rate_control = false;
  MulticastSession session(cfg, *quality_, beamforming::Codebook{});
  const auto chans = channels_at(16.0);  // slow link, big frames
  const SessionReport run = run_static(session, chans, *contexts_, 8);
  for (const auto& f : run.frame_outcomes())
    EXPECT_LE(f.stats.backlog_packets_after,
              cfg.engine.queue_capacity_bytes / cfg.engine.symbol_size + 1);
}

}  // namespace
}  // namespace w4k::core

#include "core/session.h"

#include "common/stats.h"

#include "core/pretrained.h"
#include "core/runner.h"

#include <gtest/gtest.h>

namespace w4k::core {
namespace {

constexpr int kW = 256;
constexpr int kH = 144;

/// Shared expensive state: trained model + frame contexts.
class SessionTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    quality_ = new model::QualityModel(42);
    PretrainedOptions opts;
    opts.cache_path = "session_test_model.cache";
    ensure_trained(*quality_, opts);

    video::VideoSpec spec;
    spec.width = kW;
    spec.height = kH;
    spec.frames = 4;
    spec.richness = video::Richness::kHigh;
    spec.seed = 11;
    contexts_ = new std::vector<FrameContext>(make_contexts(
        video::SyntheticVideo(spec), 3, scaled_symbol_size(kW, kH)));
  }
  static void TearDownTestSuite() {
    delete quality_;
    delete contexts_;
    quality_ = nullptr;
    contexts_ = nullptr;
  }

  static MulticastSession make_session(SessionConfig cfg = SessionConfig::scaled(kW, kH)) {
    return MulticastSession(cfg, *quality_, beamforming::Codebook{});
  }

  static std::vector<linalg::CVector> channels(std::size_t n,
                                               double distance = 3.0) {
    Rng rng(5);
    channel::PropagationConfig prop;
    return channels_for(prop,
                        place_users_fixed(n, distance, 1.047, rng));
  }

  static model::QualityModel* quality_;
  static std::vector<FrameContext>* contexts_;
};

model::QualityModel* SessionTest::quality_ = nullptr;
std::vector<FrameContext>* SessionTest::contexts_ = nullptr;

TEST_F(SessionTest, TwoUsersAtThreeMetersHitPaperQuality) {
  auto session = make_session();
  const auto run = run_static(session, channels(2), *contexts_, 10);
  const w4k::Summary s = run.ssim_summary();
  EXPECT_GT(s.mean, 0.94);   // paper: ~0.975 at 3 m / 2 users
  EXPECT_GT(s.min, 0.85);
  const w4k::Summary p = run.psnr_summary();
  EXPECT_GT(p.mean, 38.0);   // paper: ~43 dB
}

TEST_F(SessionTest, PerUserOutputsShapedCorrectly) {
  auto session = make_session();
  const auto& ctx = contexts_->front();
  const auto chans = channels(3);
  const FrameOutcome out = session.step(chans, chans, ctx);
  EXPECT_EQ(out.ssim.size(), 3u);
  EXPECT_EQ(out.psnr.size(), 3u);
  EXPECT_EQ(out.decoded_fraction.size(), 3u);
  for (double s : out.ssim) {
    EXPECT_GT(s, 0.0);
    EXPECT_LE(s, 1.0);
  }
}

TEST_F(SessionTest, QualityDegradesWithDistance) {
  auto near_session = make_session();
  auto far_session = make_session();
  const auto near_run =
      run_static(near_session, channels(2, 3.0), *contexts_, 6);
  const auto far_run =
      run_static(far_session, channels(2, 14.0), *contexts_, 6);
  EXPECT_GT(near_run.ssim_summary().mean, far_run.ssim_summary().mean);
}

TEST_F(SessionTest, MulticastSchemeBeatsUnicastWithThreeUsers) {
  SessionConfig multi_cfg = SessionConfig::scaled(kW, kH);
  SessionConfig uni_cfg = multi_cfg;
  uni_cfg.scheme = beamforming::Scheme::kOptimizedUnicast;
  auto multi = make_session(multi_cfg);
  auto uni = make_session(uni_cfg);
  const auto chans = channels(3, 6.0);
  const auto multi_run = run_static(multi, chans, *contexts_, 8);
  const auto uni_run = run_static(uni, chans, *contexts_, 8);
  EXPECT_GT(multi_run.ssim_summary().mean, uni_run.ssim_summary().mean);
}

TEST_F(SessionTest, SourceCodingOnBeatsOff) {
  SessionConfig on_cfg = SessionConfig::scaled(kW, kH);
  SessionConfig off_cfg = on_cfg;
  off_cfg.engine.source_coding = false;
  auto on = make_session(on_cfg);
  auto off = make_session(off_cfg);
  const auto chans = channels(3, 6.0);
  const auto on_run = run_static(on, chans, *contexts_, 8);
  const auto off_run = run_static(off, chans, *contexts_, 8);
  EXPECT_GE(on_run.ssim_summary().mean, off_run.ssim_summary().mean);
}

TEST_F(SessionTest, OutageRendersBlankFrame) {
  auto session = make_session();
  const auto chans = channels(1, 500.0);  // unreachable
  const FrameOutcome out =
      session.step(chans, chans, contexts_->front());
  EXPECT_NEAR(out.ssim[0], contexts_->front().content.blank_ssim, 1e-9);
  EXPECT_DOUBLE_EQ(out.decoded_fraction[0], 0.0);
}

TEST_F(SessionTest, NoUpdateFreezesDecision) {
  SessionConfig cfg = SessionConfig::scaled(kW, kH);
  cfg.adapt = false;
  auto session = make_session(cfg);
  const auto good = channels(1, 3.0);
  const auto bad = channels(1, 18.0);
  // Decide on the good channel, then the true channel degrades: the
  // frozen decision keeps the old MCS, which the degraded channel cannot
  // sustain -> severe loss.
  const FrameOutcome first =
      session.step(good, good, contexts_->front());
  const FrameOutcome degraded =
      session.step(good, bad, contexts_->front());
  EXPECT_LT(degraded.ssim[0], first.ssim[0] - 0.05);

  // An adapting session re-decides on the (now bad) CSI and does better.
  SessionConfig adapt_cfg = SessionConfig::scaled(kW, kH);
  auto adaptive = make_session(adapt_cfg);
  adaptive.step(good, good, contexts_->front());
  const FrameOutcome adapted =
      adaptive.step(bad, bad, contexts_->front());
  EXPECT_GT(adapted.ssim[0], degraded.ssim[0]);
}

TEST_F(SessionTest, ResetRestoresDeterminism) {
  auto session = make_session();
  const auto chans = channels(2);
  const auto r1 = run_static(session, chans, *contexts_, 4);
  session.reset();
  const auto r2 = run_static(session, chans, *contexts_, 4);
  const auto s1 = r1.all_ssim();
  const auto s2 = r2.all_ssim();
  ASSERT_EQ(s1.size(), s2.size());
  for (std::size_t i = 0; i < s1.size(); ++i)
    EXPECT_DOUBLE_EQ(s1[i], s2[i]);
}

TEST_F(SessionTest, UserCountChangePreservesSurvivingQuarantineState) {
  // Drive user 1 into quarantine (decision CSI looks healthy, the true
  // channel is unreachable, so every attempted frame decodes nothing),
  // then grow the session by one user. The surviving indices' recovery
  // state must carry over — a join must not amnesty a blocked user.
  SessionConfig cfg = SessionConfig::scaled(kW, kH);
  cfg.quarantine_after = 3;
  cfg.quarantine_reprobe_period = 100;  // no re-probe inside this test
  auto session = make_session(cfg);

  const auto decision3 = channels(3);
  auto true3 = decision3;
  {
    channel::PropagationConfig prop;
    true3[1] = channel::make_channel(
        prop, channel::Position::from_polar(500.0, 0.0));  // unreachable
  }
  FrameOutcome out;
  for (int f = 0; f < 5; ++f)
    out = session.step(decision3, true3, contexts_->front());
  ASSERT_EQ(out.user_quarantined.size(), 3u);
  EXPECT_TRUE(out.user_quarantined[1]);

  // A 4th user joins; users 0-2 keep their channels (and their state).
  auto decision4 = decision3;
  auto true4 = true3;
  {
    channel::PropagationConfig prop;
    const auto extra = channel::make_channel(
        prop, channel::Position::from_polar(3.0, 0.9));
    decision4.push_back(extra);
    true4.push_back(extra);
  }
  out = session.step(decision4, true4, contexts_->front());
  ASSERT_EQ(out.user_quarantined.size(), 4u);
  EXPECT_TRUE(out.user_quarantined[1]) << "join reset quarantine state";
  EXPECT_FALSE(out.user_quarantined[3]);

  // Shrinking back keeps the surviving prefix too.
  out = session.step(decision3, true3, contexts_->front());
  ASSERT_EQ(out.user_quarantined.size(), 3u);
  EXPECT_TRUE(out.user_quarantined[1]) << "leave reset quarantine state";
}

TEST_F(SessionTest, MismatchedChannelVectorsThrow) {
  auto session = make_session();
  EXPECT_THROW(session.step(channels(2), channels(3), contexts_->front()),
               std::invalid_argument);
}

TEST_F(SessionTest, BadRateScaleThrows) {
  SessionConfig cfg = SessionConfig::scaled(kW, kH);
  cfg.rate_scale = 0.0;
  EXPECT_THROW(make_session(cfg), std::invalid_argument);
}

TEST_F(SessionTest, RunTraceProducesPerFrameOutcomes) {
  channel::MovingReceiverConfig mcfg;
  mcfg.n_users = 1;
  mcfg.duration = 1.0;  // 10 snapshots
  const auto trace = channel::moving_receiver_trace(mcfg);
  auto session = make_session();
  const auto run = run_trace(session, trace, *contexts_, 3);
  EXPECT_EQ(run.frames(), 30u);  // 10 snapshots x 3 frames
  EXPECT_EQ(run.all_ssim().size(), 30u);
}

TEST_F(SessionTest, PlacementHelpersRespectGeometry) {
  Rng rng(1);
  const auto fixed = place_users_fixed(4, 5.0, 0.8, rng);
  ASSERT_EQ(fixed.size(), 4u);
  double min_az = 1e9, max_az = -1e9;
  for (const auto& p : fixed) {
    EXPECT_NEAR(p.distance(), 5.0, 1e-9);
    min_az = std::min(min_az, p.azimuth());
    max_az = std::max(max_az, p.azimuth());
  }
  EXPECT_NEAR(max_az - min_az, 0.8, 1e-9);  // exact MAS

  const auto random = place_users_random(6, 8.0, 16.0, 2.1, rng);
  for (const auto& p : random) {
    EXPECT_GE(p.distance(), 8.0 - 1e-9);
    EXPECT_LE(p.distance(), 16.0 + 1e-9);
  }
}

TEST_F(SessionTest, SingleUserPlacementWorks) {
  Rng rng(2);
  EXPECT_EQ(place_users_fixed(1, 3.0, 0.5, rng).size(), 1u);
  EXPECT_THROW(place_users_fixed(0, 3.0, 0.5, rng), std::invalid_argument);
}

}  // namespace
}  // namespace w4k::core

#include "sched/unitmap.h"

#include <gtest/gtest.h>

namespace w4k::sched {
namespace {

GroupSpec make_group(std::vector<std::size_t> members, double mbps = 40.0) {
  GroupSpec g;
  g.members = std::move(members);
  g.beam.rate = Mbps{mbps};
  return g;
}

TEST(FrameUnits, CountsAndSizesAt512x288) {
  // symbol 100 B, 20 symbols/unit -> unit = 2000 B.
  const auto units = frame_units(512, 288, 100, 20);
  // L0: 3456 B -> 2 units; L1: 4 x 3456 -> 8; L2: 4 x 13824 -> 28;
  // L3: 4 x 55296 -> 112. Total 150.
  EXPECT_EQ(units.size(), 150u);
  std::size_t total_bytes = 0;
  for (const auto& u : units) {
    EXPECT_GT(u.k_symbols, 0u);
    EXPECT_LE(u.k_symbols, 20u);
    EXPECT_EQ(u.k_symbols, (u.source_bytes + 99) / 100);
    total_bytes += u.source_bytes;
  }
  std::size_t expect = 0;
  for (int l = 0; l < video::kNumLayers; ++l)
    expect += video::layer_bytes(l, 512, 288);
  EXPECT_EQ(total_bytes, expect);
}

TEST(FrameUnits, LayerOrderAndIndexing) {
  const auto units = frame_units(512, 288, 100, 20);
  int prev_layer = 0;
  std::uint16_t expected_index = 0;
  for (const auto& u : units) {
    if (u.id.layer != prev_layer) {
      EXPECT_EQ(u.id.layer, prev_layer + 1);
      prev_layer = u.id.layer;
      expected_index = 0;
    }
    EXPECT_EQ(u.id.sublayer, expected_index++);
  }
  EXPECT_EQ(prev_layer, 3);
}

TEST(FrameUnits, OffsetsPartitionSublayers) {
  const auto units = frame_units(512, 288, 100, 20);
  // Within each (layer, sublayer_k) the offsets must tile the buffer.
  std::size_t cursor = 0;
  int cur_layer = 0, cur_k = 0;
  for (const auto& u : units) {
    if (u.id.layer != cur_layer || u.sublayer_k != cur_k) {
      cur_layer = u.id.layer;
      cur_k = u.sublayer_k;
      cursor = 0;
    }
    EXPECT_EQ(u.offset, cursor);
    cursor += u.source_bytes;
  }
}

TEST(FrameUnits, PaperGeometryAt4K) {
  const auto units = frame_units(4096, 2160, 6000, 20);
  // 4K layer sizes: 207360 / 829440 / 3317760 / 13271040 bytes.
  // Unit = 120 kB.
  std::size_t count_l0 = 0;
  for (const auto& u : units) count_l0 += u.id.layer == 0 ? 1 : 0;
  EXPECT_EQ(count_l0, 2u);  // 207360 / 120000 -> 2 units
  EXPECT_GT(units.size(), 140u);
}

TEST(FrameUnits, BadGeometryThrows) {
  EXPECT_THROW(frame_units(512, 288, 0, 20), std::invalid_argument);
  EXPECT_THROW(frame_units(512, 288, 100, 0), std::invalid_argument);
}

TEST(MapToUnits, SingleGroupFullBudgetDecodesEverything) {
  const auto units = frame_units(512, 288, 100, 20);
  std::vector<GroupSpec> groups{make_group({0, 1})};
  std::vector<LayerArray> bytes(1);
  for (int l = 0; l < video::kNumLayers; ++l) {
    double need = 0.0;
    for (const auto& u : units)
      if (u.id.layer == l) need += static_cast<double>(u.k_symbols) * 100.0;
    bytes[0][static_cast<std::size_t>(l)] = need;
  }
  const auto res = map_to_units(groups, bytes, units, 2, 100);
  for (std::size_t u = 0; u < 2; ++u)
    for (std::size_t i = 0; i < units.size(); ++i)
      EXPECT_TRUE(res.user_decodes[u][i]) << "user " << u << " unit " << i;
  EXPECT_EQ(res.leftover_symbols, 0u);
}

TEST(MapToUnits, InsufficientBudgetDecodesPrefix) {
  const auto units = frame_units(512, 288, 100, 20);
  std::vector<GroupSpec> groups{make_group({0})};
  std::vector<LayerArray> bytes(1);
  bytes[0][0] = 2000.0;  // one unit's worth of layer 0 (which has 2 units)
  const auto res = map_to_units(groups, bytes, units, 1, 100);
  EXPECT_TRUE(res.user_decodes[0][0]);
  EXPECT_FALSE(res.user_decodes[0][1]);
}

TEST(MapToUnits, OverlappingGroupsShareSymbols) {
  // User 1 belongs to both groups; the greedy should not double-send
  // what user 1 already gets from the first group.
  const auto units = frame_units(512, 288, 100, 20);
  std::vector<GroupSpec> groups{make_group({0, 1}), make_group({1, 2})};
  std::vector<LayerArray> bytes(2);
  bytes[0][0] = 2000.0;  // exactly unit 0 of layer 0
  bytes[1][0] = 2000.0;
  const auto res = map_to_units(groups, bytes, units, 3, 100);
  // Unit 0: group 0 sends k symbols reaching users 0 and 1. Group 1 then
  // only needs to top up user 2 -> k more. Unit 1 gets nothing (budget
  // spent), but no symbols were wasted re-serving user 1.
  EXPECT_TRUE(res.user_decodes[0][0]);
  EXPECT_TRUE(res.user_decodes[1][0]);
  EXPECT_TRUE(res.user_decodes[2][0]);
  std::size_t sent = 0;
  for (const auto& a : res.assignments) sent += a.symbols;
  EXPECT_EQ(sent, 2u * units[0].k_symbols);
}

TEST(MapToUnits, AssignmentsInPriorityOrder) {
  const auto units = frame_units(512, 288, 100, 20);
  std::vector<GroupSpec> groups{make_group({0}), make_group({0, 1})};
  std::vector<LayerArray> bytes(2);
  for (int l = 0; l < video::kNumLayers; ++l) {
    bytes[0][static_cast<std::size_t>(l)] = 4000.0;
    bytes[1][static_cast<std::size_t>(l)] = 4000.0;
  }
  const auto res = map_to_units(groups, bytes, units, 2, 100);
  // Unit indices must be non-decreasing; within a unit, group ids ascend.
  std::size_t prev_unit = 0;
  std::size_t prev_group = 0;
  for (const auto& a : res.assignments) {
    EXPECT_GE(a.unit_index, prev_unit);
    if (a.unit_index == prev_unit && &a != &res.assignments.front())
      EXPECT_GT(a.group, prev_group);
    prev_unit = a.unit_index;
    prev_group = a.group;
  }
}

TEST(MapToUnits, LeftoverReportedWhenBudgetExceedsNeed) {
  const auto units = frame_units(512, 288, 100, 20);
  std::vector<GroupSpec> groups{make_group({0})};
  std::vector<LayerArray> bytes(1);
  // Layer 0 needs 3500 B (35 symbols padded); give it 10000.
  bytes[0][0] = 10000.0;
  const auto res = map_to_units(groups, bytes, units, 1, 100);
  EXPECT_TRUE(res.user_decodes[0][0]);
  EXPECT_TRUE(res.user_decodes[0][1]);
  EXPECT_EQ(res.leftover_symbols, 100u - 35u);
}

TEST(MapToUnits, SizeMismatchThrows) {
  const auto units = frame_units(512, 288, 100, 20);
  std::vector<GroupSpec> groups{make_group({0})};
  std::vector<LayerArray> bytes(2);  // wrong: 2 byte rows, 1 group
  EXPECT_THROW(map_to_units(groups, bytes, units, 1, 100),
               std::invalid_argument);
}

TEST(MapToUnits, UserSymbolsMatchAssignments) {
  const auto units = frame_units(512, 288, 100, 20);
  std::vector<GroupSpec> groups{make_group({0, 1}), make_group({0})};
  std::vector<LayerArray> bytes(2);
  bytes[0][2] = 6000.0;
  bytes[1][2] = 3000.0;
  const auto res = map_to_units(groups, bytes, units, 2, 100);
  std::vector<std::size_t> expect0(units.size(), 0), expect1(units.size(), 0);
  for (const auto& a : res.assignments) {
    if (groups[a.group].contains(0)) expect0[a.unit_index] += a.symbols;
    if (groups[a.group].contains(1)) expect1[a.unit_index] += a.symbols;
  }
  EXPECT_EQ(res.user_symbols[0], expect0);
  EXPECT_EQ(res.user_symbols[1], expect1);
}

}  // namespace
}  // namespace w4k::sched

// Multi-AP attachment, handoff, and peer-relay behavior against the full
// session loop: the single-AP compatibility contract (step_multi_into
// with one AP stack is exactly step_into), the attachment state machine
// walking degraded -> probing -> handing-off -> attached under a total AP
// outage, partition-pure grouping, config/stack shape validation, and the
// headline robustness claim — a quarantined-but-relayable user's
// base-layer delivery is strictly better with peer relay on than off,
// averaged over many seeded blockage patterns.
#include "channel/multi_ap.h"
#include "core/pretrained.h"
#include "core/runner.h"
#include "fault/injector.h"
#include "fault/plan.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

namespace w4k {
namespace {

constexpr int kW = 256;
constexpr int kH = 144;
constexpr std::size_t kUsers = 4;
constexpr int kFrames = 16;

class MultiApTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    quality_ = new model::QualityModel(42);
    core::PretrainedOptions opts;
    opts.cache_path = "session_test_model.cache";
    core::ensure_trained(*quality_, opts);
    video::VideoSpec spec;
    spec.width = kW;
    spec.height = kH;
    spec.frames = 3;
    spec.seed = 11;
    contexts_ = new std::vector<core::FrameContext>(core::make_contexts(
        video::SyntheticVideo(spec), 2, core::scaled_symbol_size(kW, kH)));
  }
  static void TearDownTestSuite() {
    delete quality_;
    delete contexts_;
    quality_ = nullptr;
    contexts_ = nullptr;
  }

  static model::QualityModel* quality_;
  static std::vector<core::FrameContext>* contexts_;
};

model::QualityModel* MultiApTest::quality_ = nullptr;
std::vector<core::FrameContext>* MultiApTest::contexts_ = nullptr;

std::string report_json(const core::SessionReport& report) {
  std::ostringstream os;
  report.write_json(os);
  return os.str();
}

struct Room {
  channel::MultiApGeometry geo;
  std::vector<std::vector<linalg::CVector>> stacks;
  std::vector<std::vector<double>> azimuths;
};

Room two_ap_room(std::size_t n_users) {
  Room room;
  channel::PropagationConfig prop;
  room.geo.prop = prop;
  room.geo.aps = channel::default_ap_layout(2, prop.room);
  Rng rng(5);
  const auto users = core::place_users_fixed(n_users, 3.0, 1.047, rng);
  room.stacks = channel::ap_channel_stacks(room.geo, users);
  room.azimuths = channel::ap_user_azimuths(room.geo, users);
  return room;
}

// --- Single-AP compatibility contract ---------------------------------

TEST_F(MultiApTest, SingleApStackBitIdenticalToStepInto) {
  Rng rng(5);
  channel::PropagationConfig prop;
  const auto channels = core::channels_for(
      prop, core::place_users_fixed(kUsers, 3.0, 1.047, rng));

  core::SessionConfig cfg = core::SessionConfig::scaled(kW, kH);
  cfg.seed = 7;

  core::MulticastSession legacy(cfg, *quality_, beamforming::Codebook{});
  const std::string want = report_json(
      core::run_static(legacy, channels, *contexts_, kFrames));

  core::MulticastSession multi(cfg, *quality_, beamforming::Codebook{});
  const fault::FaultInjector no_faults(fault::FaultPlan{}, kUsers, 1);
  const std::string got = report_json(core::run_static_multi_ap(
      multi, {channels}, *contexts_, kFrames, no_faults));

  EXPECT_EQ(want, got)
      << "1-AP step_multi_into diverged from the legacy step_into path";
}

// --- Shape / config validation ----------------------------------------

TEST_F(MultiApTest, MismatchedStackCountThrows) {
  Room room = two_ap_room(kUsers);
  core::SessionConfig cfg = core::SessionConfig::scaled(kW, kH);
  cfg.handoff.n_aps = 2;  // but pass 1 stack below
  cfg.handoff.enabled = true;
  core::MulticastSession session(cfg, *quality_, beamforming::Codebook{});
  const fault::FaultInjector injector(fault::FaultPlan{}, kUsers, 1);
  EXPECT_THROW(core::run_static_multi_ap(session, {room.stacks[0]},
                                         *contexts_, 2, injector),
               std::invalid_argument);
}

TEST_F(MultiApTest, RelayWithoutTargetsRejectedAtValidate) {
  core::SessionConfig cfg = core::SessionConfig::scaled(kW, kH);
  cfg.relay.enabled = true;
  cfg.quarantine_after = 0;  // single AP + no quarantine: no target exists
  EXPECT_THROW(
      core::MulticastSession(cfg, *quality_, beamforming::Codebook{}),
      std::invalid_argument);
}

// --- Handoff state machine --------------------------------------------

TEST_F(MultiApTest, TotalOutageDrivesHandoffAndSticks) {
  Room room = two_ap_room(kUsers);
  core::SessionConfig cfg = core::SessionConfig::scaled(kW, kH);
  cfg.seed = 7;
  cfg.handoff.n_aps = 2;
  cfg.handoff.enabled = true;
  cfg.handoff.min_dwell_frames = 4;
  core::MulticastSession session(cfg, *quality_, beamforming::Codebook{});

  fault::FaultPlan plan;
  fault::ApOutage outage;
  outage.start_frame = 3;
  outage.n_frames = 10;
  outage.ap = 0;
  outage.total = true;
  plan.ap_outage.push_back(outage);
  const fault::FaultInjector injector(plan, kUsers, 2);
  const core::SessionReport report = core::run_static_multi_ap(
      session, room.stacks, *contexts_, kFrames, injector, room.azimuths);

  // Everyone starts on the stronger AP 0 and the outage pushes them all
  // to AP 1 exactly once; the dwell window keeps them there even after
  // AP 0 recovers (it recovers at frame 13's decision beacon).
  std::size_t total_handoffs = 0;
  for (std::size_t f = 0; f < report.frames(); ++f) {
    ASSERT_EQ(report.frame(f).user_ap.size(), kUsers) << "frame " << f;
    total_handoffs += report.frame(f).handoffs;
  }
  EXPECT_EQ(report.frame(0).user_ap, std::vector<std::uint8_t>(kUsers, 0));
  EXPECT_EQ(total_handoffs, kUsers);
  EXPECT_EQ(report.frame(kFrames - 1).user_ap,
            std::vector<std::uint8_t>(kUsers, 1));
}

TEST_F(MultiApTest, HandoffDisabledNeverMoves) {
  Room room = two_ap_room(kUsers);
  core::SessionConfig cfg = core::SessionConfig::scaled(kW, kH);
  cfg.seed = 7;
  cfg.handoff.n_aps = 2;
  cfg.handoff.enabled = false;
  core::MulticastSession session(cfg, *quality_, beamforming::Codebook{});

  fault::FaultPlan plan;
  fault::ApOutage outage;
  outage.start_frame = 3;
  outage.n_frames = 10;
  outage.ap = 0;
  outage.total = true;
  plan.ap_outage.push_back(outage);
  const fault::FaultInjector injector(plan, kUsers, 2);
  const core::SessionReport report = core::run_static_multi_ap(
      session, room.stacks, *contexts_, kFrames, injector, room.azimuths);

  for (std::size_t f = 0; f < report.frames(); ++f) {
    EXPECT_EQ(report.frame(f).handoffs, 0u) << "frame " << f;
    EXPECT_EQ(report.frame(f).user_ap,
              std::vector<std::uint8_t>(kUsers, 0))
        << "frame " << f;
  }
}

TEST_F(MultiApTest, SectorOutageOnlySilencesCoveredUsers) {
  // A sector outage aimed away from every user must not trigger any
  // handoff; aimed at the whole room it behaves like a total outage.
  Room room = two_ap_room(kUsers);
  core::SessionConfig cfg = core::SessionConfig::scaled(kW, kH);
  cfg.seed = 7;
  cfg.handoff.n_aps = 2;
  cfg.handoff.enabled = true;
  cfg.handoff.min_dwell_frames = 4;

  fault::ApOutage sector;
  sector.start_frame = 3;
  sector.n_frames = 10;
  sector.ap = 0;
  sector.total = false;
  sector.sector_width_deg = 10.0;
  sector.sector_center_deg = 180.0;  // pointing away from the user arc

  fault::FaultPlan miss_plan;
  miss_plan.ap_outage.push_back(sector);
  core::MulticastSession missed(cfg, *quality_, beamforming::Codebook{});
  const fault::FaultInjector miss_inj(miss_plan, kUsers, 2);
  const core::SessionReport miss_report = core::run_static_multi_ap(
      missed, room.stacks, *contexts_, kFrames, miss_inj, room.azimuths);
  std::size_t miss_handoffs = 0;
  for (std::size_t f = 0; f < miss_report.frames(); ++f)
    miss_handoffs += miss_report.frame(f).handoffs;
  EXPECT_EQ(miss_handoffs, 0u);

  sector.sector_center_deg = 0.0;  // boresight: covers the user arc
  sector.sector_width_deg = 360.0;
  fault::FaultPlan hit_plan;
  hit_plan.ap_outage.push_back(sector);
  core::MulticastSession hit(cfg, *quality_, beamforming::Codebook{});
  const fault::FaultInjector hit_inj(hit_plan, kUsers, 2);
  const core::SessionReport hit_report = core::run_static_multi_ap(
      hit, room.stacks, *contexts_, kFrames, hit_inj, room.azimuths);
  std::size_t hit_handoffs = 0;
  for (std::size_t f = 0; f < hit_report.frames(); ++f)
    hit_handoffs += hit_report.frame(f).handoffs;
  EXPECT_EQ(hit_handoffs, kUsers);
}

// --- Relay acceptance: quarantined delivery on vs off ------------------

// One seeded single-AP scenario: a persistent blockage the beacon never
// sees drives one user into quarantine; return the mean decoded fraction
// of that user over its quarantined frames (relay delivers base-layer
// symbols, so any decoded unit there came over the side link or a
// re-probe).
double quarantined_delivery(model::QualityModel& quality,
                            const std::vector<core::FrameContext>& contexts,
                            std::uint64_t seed, bool relay_on,
                            bool* saw_quarantine) {
  Rng rng(seed * 2 + 1);
  channel::PropagationConfig prop;
  const auto channels = core::channels_for(
      prop,
      core::place_users_fixed(kUsers, rng.uniform(2.5, 4.0), 1.047, rng));

  fault::FaultPlan plan;
  fault::BlockageBurst burst;
  burst.start_frame = 1 + static_cast<std::uint32_t>(rng.below(2));
  burst.n_frames = static_cast<std::uint32_t>(kFrames);
  burst.user = rng.below(kUsers);
  burst.extra_loss_db = rng.uniform(32.0, 45.0);
  plan.blockage.push_back(burst);
  for (std::uint32_t f = burst.start_frame;
       f < static_cast<std::uint32_t>(kFrames); ++f)
    plan.csi.push_back({f, /*corrupt=*/false});

  core::SessionConfig cfg = core::SessionConfig::scaled(kW, kH);
  cfg.seed = seed + 1;
  cfg.relay.enabled = relay_on;
  cfg.quarantine_after = 2;
  cfg.quarantine_reprobe_period = 4;
  core::MulticastSession session(cfg, quality, beamforming::Codebook{});
  const fault::FaultInjector injector(plan, kUsers);
  const core::SessionReport report =
      core::run_static(session, channels, contexts, kFrames, injector);

  double sum = 0.0;
  std::size_t n = 0;
  for (std::size_t f = 0; f < report.frames(); ++f) {
    const auto& q = report.frame(f).user_quarantined;
    if (q.size() <= burst.user || !q[burst.user]) continue;
    sum += report.frame(f).decoded_fraction[burst.user];
    ++n;
  }
  if (n > 0) *saw_quarantine = true;
  return n > 0 ? sum / static_cast<double>(n) : 0.0;
}

TEST_F(MultiApTest, RelayImprovesQuarantinedDelivery) {
  // The acceptance sweep: 50 seeded blockage patterns, each run with peer
  // relay on and off under otherwise identical configs. Relay must help
  // strictly in aggregate (and never require a new decode path — the
  // decoded fractions come from the same fountain decoder either way).
  constexpr std::uint64_t kSeeds = 50;
  double mean_on = 0.0;
  double mean_off = 0.0;
  std::size_t quarantined_runs = 0;
  for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
    bool saw = false;
    mean_on +=
        quarantined_delivery(*quality_, *contexts_, seed, true, &saw);
    mean_off +=
        quarantined_delivery(*quality_, *contexts_, seed, false, &saw);
    if (saw) ++quarantined_runs;
  }
  // The construction guarantees quarantine engages in (nearly) every
  // seed; demand it in at least 90% so the comparison is meaningful.
  EXPECT_GE(quarantined_runs, kSeeds * 9 / 10);
  EXPECT_GT(mean_on / kSeeds, mean_off / kSeeds)
      << "peer relay did not improve quarantined users' base-layer "
         "delivery (on="
      << mean_on / kSeeds << ", off=" << mean_off / kSeeds << ")";
}

}  // namespace
}  // namespace w4k

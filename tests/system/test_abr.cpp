#include "abr/mpc.h"

#include <gtest/gtest.h>

namespace w4k::abr {
namespace {

constexpr int kW = 256;
constexpr int kH = 144;

std::vector<core::FrameContext> make_ctxs() {
  video::VideoSpec spec;
  spec.width = kW;
  spec.height = kH;
  spec.frames = 3;
  spec.richness = video::Richness::kHigh;
  spec.seed = 21;
  return core::make_contexts(video::SyntheticVideo(spec), 2,
                             core::scaled_symbol_size(kW, kH));
}

AbrConfig scaled_config() {
  AbrConfig cfg;
  cfg.rate_scale = core::rate_scale_for(kW, kH);
  return cfg;
}

channel::CsiTrace stable_trace(double distance, Seconds duration = 5.0) {
  channel::MovingEnvironmentConfig cfg;
  cfg.users = {channel::Position::from_polar(distance, 0.1)};
  cfg.n_blockers = 0;
  cfg.duration = duration;
  return channel::moving_environment_trace(cfg);
}

TEST(DashQuality, MonotoneInBitrate) {
  const auto ctxs = make_ctxs();
  const auto cfg = scaled_config();
  double prev = -1.0;
  for (double r : {50.0, 100.0, 300.0, 800.0, 2000.0, 8000.0}) {
    const double q = dash_quality(cfg, ctxs[0], r);
    EXPECT_GE(q, prev) << r;
    EXPECT_LE(q, 1.0);
    prev = q;
  }
}

TEST(DashQuality, ZeroRateIsBlank) {
  const auto ctxs = make_ctxs();
  EXPECT_NEAR(dash_quality(scaled_config(), ctxs[0], 0.0),
              ctxs[0].content.blank_ssim, 1e-9);
}

TEST(DashQuality, HugeRateSaturatesAtEncoderCeiling) {
  // A real encoder never reaches the uncompressed-layered 1.0 anchor.
  const auto ctxs = make_ctxs();
  const auto cfg = scaled_config();
  EXPECT_NEAR(dash_quality(cfg, ctxs[0], 1e6), cfg.encoder_ceiling, 1e-9);
}

TEST(DashQuality, CodecEfficiencyHelps) {
  const auto ctxs = make_ctxs();
  AbrConfig lean = scaled_config();
  lean.codec_efficiency = 1.0;
  AbrConfig strong = scaled_config();
  strong.codec_efficiency = 3.0;
  EXPECT_GT(dash_quality(strong, ctxs[0], 300.0),
            dash_quality(lean, ctxs[0], 300.0));
}

TEST(RunAbr, StableLinkPicksSustainableRateAndKeepsQuality) {
  const auto ctxs = make_ctxs();
  const auto trace = stable_trace(3.0);
  const auto res =
      run_abr_trace(scaled_config(), Predictor::kRobustMpc, trace, ctxs, 1);
  EXPECT_GT(res.ssim.size(), 100u);
  // Allow the first chunk to bootstrap, then quality must stay high.
  double late_sum = 0.0;
  std::size_t n = 0;
  for (std::size_t i = 30; i < res.ssim.size(); ++i) {
    late_sum += res.ssim[i];
    ++n;
  }
  EXPECT_GT(late_sum / static_cast<double>(n), 0.9);
  EXPECT_LT(res.deadline_miss_fraction, 0.35);
}

TEST(RunAbr, ChosenRatesComeFromLadder) {
  const auto ctxs = make_ctxs();
  const auto cfg = scaled_config();
  const auto res = run_abr_trace(cfg, Predictor::kFastMpc,
                                 stable_trace(4.0), ctxs, 1);
  for (double r : res.chosen_mbps) {
    bool in_ladder = false;
    for (double l : cfg.ladder_mbps) in_ladder |= (l == r);
    EXPECT_TRUE(in_ladder) << r;
  }
}

TEST(RunAbr, WeakLinkPicksLowerRates) {
  const auto ctxs = make_ctxs();
  const auto cfg = scaled_config();
  const auto strong = run_abr_trace(cfg, Predictor::kRobustMpc,
                                    stable_trace(3.0), ctxs, 1);
  const auto weak = run_abr_trace(cfg, Predictor::kRobustMpc,
                                  stable_trace(19.5), ctxs, 1);
  double s = 0.0, w = 0.0;
  for (double r : strong.chosen_mbps) s += r;
  for (double r : weak.chosen_mbps) w += r;
  EXPECT_GT(s / static_cast<double>(strong.chosen_mbps.size()),
            w / static_cast<double>(weak.chosen_mbps.size()));
}

TEST(RunAbr, TimeSharingHurtsMultipleUsers) {
  // Unicast ABR splits airtime: 3 users each see ~1/3 of the link.
  channel::MovingEnvironmentConfig mcfg;
  mcfg.users = {channel::Position::from_polar(8.0, 0.0),
                channel::Position::from_polar(8.0, 0.3),
                channel::Position::from_polar(8.0, -0.3)};
  mcfg.n_blockers = 0;
  mcfg.duration = 5.0;
  const auto trace = channel::moving_environment_trace(mcfg);
  const auto ctxs = make_ctxs();
  const auto cfg = scaled_config();
  const auto one = run_abr_trace(cfg, Predictor::kRobustMpc,
                                 stable_trace(8.0), ctxs, 1);
  const auto three =
      run_abr_trace(cfg, Predictor::kRobustMpc, trace, ctxs, 3);
  const auto mean = [](const std::vector<double>& v) {
    double s = 0.0;
    for (double x : v) s += x;
    return s / static_cast<double>(v.size());
  };
  EXPECT_GT(mean(one.ssim), mean(three.ssim));
}

TEST(RunAbr, BlockageCausesGopLosses) {
  channel::MovingEnvironmentConfig mcfg;
  mcfg.users = {channel::Position::from_polar(10.0, 0.0)};
  mcfg.n_blockers = 3;
  mcfg.duration = 30.0;
  mcfg.seed = 77;
  const auto trace = channel::moving_environment_trace(mcfg);
  const auto ctxs = make_ctxs();
  const auto res = run_abr_trace(scaled_config(), Predictor::kFastMpc,
                                 trace, ctxs, 1);
  EXPECT_GT(res.deadline_miss_fraction, 0.0);
  // Some frames must show the frozen-GoP quality collapse.
  double min_ssim = 1.0;
  for (double s : res.ssim) min_ssim = std::min(min_ssim, s);
  EXPECT_LT(min_ssim, 0.85);
}

TEST(RunAbr, RobustMoreConservativeThanFastUnderVolatility) {
  channel::MovingReceiverConfig mcfg;
  mcfg.n_users = 1;
  mcfg.duration = 30.0;
  mcfg.min_distance = 4.0;
  mcfg.max_distance = 14.0;
  mcfg.seed = 31;
  const auto trace = channel::moving_receiver_trace(mcfg);
  const auto ctxs = make_ctxs();
  const auto cfg = scaled_config();
  const auto robust =
      run_abr_trace(cfg, Predictor::kRobustMpc, trace, ctxs, 1);
  const auto fast = run_abr_trace(cfg, Predictor::kFastMpc, trace, ctxs, 1);
  double rsum = 0.0, fsum = 0.0;
  for (double r : robust.chosen_mbps) rsum += r;
  for (double r : fast.chosen_mbps) fsum += r;
  // RobustMPC discounts by prediction error -> picks lower rates.
  EXPECT_LE(rsum, fsum + 1e-9);
  EXPECT_LE(robust.deadline_miss_fraction, fast.deadline_miss_fraction + 1e-9);
}

TEST(RunAbr, BadArgumentsThrow) {
  const auto ctxs = make_ctxs();
  const auto cfg = scaled_config();
  EXPECT_THROW(
      run_abr_trace(cfg, Predictor::kFastMpc, channel::CsiTrace{}, ctxs, 1),
      std::invalid_argument);
  EXPECT_THROW(run_abr_trace(cfg, Predictor::kFastMpc, stable_trace(3.0),
                             {}, 1),
               std::invalid_argument);
  AbrConfig empty = cfg;
  empty.ladder_mbps.clear();
  EXPECT_THROW(run_abr_trace(empty, Predictor::kFastMpc, stable_trace(3.0),
                             ctxs, 1),
               std::invalid_argument);
}

TEST(Predictor, Names) {
  EXPECT_EQ(to_string(Predictor::kRobustMpc), "RobustMPC");
  EXPECT_EQ(to_string(Predictor::kFastMpc), "FastMPC");
}

}  // namespace
}  // namespace w4k::abr

#include "common/stats.h"
#include "core/pretrained.h"
#include "core/runner.h"

#include <gtest/gtest.h>

namespace w4k::core {
namespace {

constexpr int kW = 256;
constexpr int kH = 144;

class EstimatedCsiTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    quality_ = new model::QualityModel(42);
    PretrainedOptions opts;
    opts.cache_path = "session_test_model.cache";  // share the session cache
    ensure_trained(*quality_, opts);

    video::VideoSpec spec;
    spec.width = kW;
    spec.height = kH;
    spec.frames = 3;
    spec.richness = video::Richness::kHigh;
    spec.seed = 11;
    contexts_ = new std::vector<FrameContext>(make_contexts(
        video::SyntheticVideo(spec), 2, scaled_symbol_size(kW, kH)));

    // Codebook rich enough for phase retrieval (>= 2x antenna count).
    codebook_ = new beamforming::Codebook(beamforming::make_sector_codebook(
        beamforming::CodebookConfig{32, 96, 2, 1.2}));
  }
  static void TearDownTestSuite() {
    delete quality_;
    delete contexts_;
    delete codebook_;
    quality_ = nullptr;
    contexts_ = nullptr;
    codebook_ = nullptr;
  }

  static model::QualityModel* quality_;
  static std::vector<FrameContext>* contexts_;
  static beamforming::Codebook* codebook_;
};

model::QualityModel* EstimatedCsiTest::quality_ = nullptr;
std::vector<FrameContext>* EstimatedCsiTest::contexts_ = nullptr;
beamforming::Codebook* EstimatedCsiTest::codebook_ = nullptr;

TEST_F(EstimatedCsiTest, NearPerfectCsiQuality) {
  // The whole point of ACO: estimated CSI should cost almost nothing
  // against a perfect-CSI oracle.
  Rng rng(3);
  channel::PropagationConfig prop;
  const auto users = place_users_fixed(2, 3.0, 1.047, rng);
  const auto channels = channels_for(prop, users);

  SessionConfig perfect_cfg = SessionConfig::scaled(kW, kH);
  MulticastSession perfect(perfect_cfg, *quality_, *codebook_);
  const auto perfect_run = run_static(perfect, channels, *contexts_, 5);

  SessionConfig est_cfg = SessionConfig::scaled(kW, kH);
  est_cfg.use_estimated_csi = true;
  MulticastSession estimated(est_cfg, *quality_, *codebook_);
  const auto est_run = run_static(estimated, channels, *contexts_, 5);

  EXPECT_GT(est_run.ssim_summary().mean, perfect_run.ssim_summary().mean - 0.02);
}

TEST_F(EstimatedCsiTest, TooSmallCodebookThrows) {
  Rng rng(4);
  channel::PropagationConfig prop;
  const auto channels =
      channels_for(prop, place_users_fixed(1, 3.0, 0.5, rng));
  SessionConfig cfg = SessionConfig::scaled(kW, kH);
  cfg.use_estimated_csi = true;
  beamforming::CodebookConfig small;
  small.n_beams = 8;  // < 32 antennas
  // validate() rejects the undersized codebook at construction time.
  EXPECT_THROW(MulticastSession(cfg, *quality_,
                                beamforming::make_sector_codebook(small)),
               std::invalid_argument);
  (void)channels;
}

TEST_F(EstimatedCsiTest, NoisySweepsDegradeGracefully) {
  Rng rng(5);
  channel::PropagationConfig prop;
  const auto channels =
      channels_for(prop, place_users_fixed(2, 6.0, 0.8, rng));

  SessionConfig clean_cfg = SessionConfig::scaled(kW, kH);
  clean_cfg.use_estimated_csi = true;
  clean_cfg.sls_noise_db = 0.1;
  MulticastSession clean(clean_cfg, *quality_, *codebook_);
  const auto clean_run = run_static(clean, channels, *contexts_, 4);

  SessionConfig noisy_cfg = clean_cfg;
  noisy_cfg.sls_noise_db = 3.0;
  MulticastSession noisy(noisy_cfg, *quality_, *codebook_);
  const auto noisy_run = run_static(noisy, channels, *contexts_, 4);

  // Noise hurts (or at least never helps beyond jitter), but the system
  // keeps working — no outage collapse.
  EXPECT_GT(noisy_run.ssim_summary().mean, 0.75);
  EXPECT_LE(noisy_run.ssim_summary().mean,
            clean_run.ssim_summary().mean + 0.02);
}

}  // namespace
}  // namespace w4k::core

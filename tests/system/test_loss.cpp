#include "emu/loss.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>

namespace w4k::emu {
namespace {

channel::McsEntry mcs8() { return *channel::mcs_by_index(8); }

TEST(LossModel, DecreasesWithMargin) {
  LossModel m;
  double prev = 1.0;
  for (double margin : {-2.0, -1.0, 0.0, 1.0, 3.0, 6.0}) {
    const double p =
        monitor_loss(m, Dbm{mcs8().sensitivity.value + margin}, mcs8());
    EXPECT_LT(p, prev) << margin;
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
    prev = p;
  }
}

TEST(LossModel, FloorAtLargeMargin) {
  LossModel m;
  const double p = monitor_loss(m, Dbm{-30.0}, mcs8());
  EXPECT_NEAR(p, m.floor, m.floor * 0.2);
}

TEST(LossModel, AtZeroMarginMatchesConfig) {
  LossModel m;
  const double p = monitor_loss(m, mcs8().sensitivity, mcs8());
  EXPECT_NEAR(p, m.floor + m.at_zero_margin, 1e-12);
}

TEST(LossModel, NegativeMarginGrowsTowardOne) {
  LossModel m;
  const double p =
      monitor_loss(m, Dbm{mcs8().sensitivity.value - 10.0}, mcs8());
  EXPECT_GT(p, 0.5);
  const double p2 =
      monitor_loss(m, Dbm{mcs8().sensitivity.value - 30.0}, mcs8());
  EXPECT_DOUBLE_EQ(p2, 1.0);  // clamped
}

TEST(LossModel, AssociatedStaBenefitsFromMacRetries) {
  LossModel m;
  const Dbm rss{mcs8().sensitivity.value + 0.5};
  const double mon = monitor_loss(m, rss, mcs8());
  const double assoc = associated_loss(m, rss, mcs8());
  EXPECT_LT(assoc, mon);
  EXPECT_NEAR(assoc, std::pow(mon, m.mac_retries), 1e-12);
}

TEST(LossModel, HigherMcsMoreFragileAtSameRss) {
  LossModel m;
  const Dbm rss{-58.0};
  const double p8 = monitor_loss(m, rss, *channel::mcs_by_index(8));
  const double p12 = monitor_loss(m, rss, *channel::mcs_by_index(12));
  EXPECT_LT(p8, p12);  // MCS 12 needs -53, so -58 is 5 dB short
}

TEST(LossModel, OutputsAlwaysClampedToUnitInterval) {
  // A pathological (but finite) parameterization must still yield a
  // probability: the Bernoulli draw downstream cannot handle p > 1.
  LossModel m;
  m.at_zero_margin = 50.0;
  m.floor = 0.9;
  for (double margin : {-40.0, -5.0, 0.0, 5.0, 40.0}) {
    const double p =
        monitor_loss(m, Dbm{mcs8().sensitivity.value + margin}, mcs8());
    EXPECT_GE(p, 0.0) << margin;
    EXPECT_LE(p, 1.0) << margin;
    const double a =
        associated_loss(m, Dbm{mcs8().sensitivity.value + margin}, mcs8());
    EXPECT_GE(a, 0.0) << margin;
    EXPECT_LE(a, 1.0) << margin;
  }
}

TEST(LossModel, NonFiniteRssMeansDeadLinkNotNaN) {
  LossModel m;
  const double nan = std::nan("");
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_DOUBLE_EQ(monitor_loss(m, Dbm{nan}, mcs8()), 1.0);
  EXPECT_DOUBLE_EQ(monitor_loss(m, Dbm{-inf}, mcs8()), 1.0);
  EXPECT_DOUBLE_EQ(associated_loss(m, Dbm{nan}, mcs8()), 1.0);
  // Even +inf is not trusted: any non-finite margin means the CSI is
  // garbage, and garbage links are treated as dead.
  EXPECT_DOUBLE_EQ(monitor_loss(m, Dbm{inf}, mcs8()), 1.0);
}

TEST(LossModelValidate, AcceptsDefaultsRejectsGarbage) {
  EXPECT_NO_THROW(LossModel{}.validate());

  const auto expect_named = [](LossModel m, const char* field) {
    try {
      m.validate();
      FAIL() << "expected throw naming " << field;
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find(std::string("LossModel.") + field),
                std::string::npos)
          << e.what();
    }
  };
  LossModel bad;
  bad.floor = -0.1;
  expect_named(bad, "floor");
  bad = LossModel{};
  bad.at_zero_margin = std::nan("");
  expect_named(bad, "at_zero_margin");
  bad = LossModel{};
  bad.decay_per_db = -1.0;
  expect_named(bad, "decay_per_db");
  bad = LossModel{};
  bad.growth_per_db = std::numeric_limits<double>::infinity();
  expect_named(bad, "growth_per_db");
  bad = LossModel{};
  bad.mac_retries = -2.0;
  expect_named(bad, "mac_retries");
}

}  // namespace
}  // namespace w4k::emu

// End-to-end integration: the full data plane with REAL bytes.
//
// The emulator tracks symbol counts; this test runs the actual pipeline —
// layered encode -> per-unit fountain encode (GF(256) symbols) -> lossy
// delivery -> incremental Gaussian-elimination decode -> sublayer segment
// reassembly -> pixel reconstruction — and verifies the received video is
// bit-faithful wherever units decoded, proving the accounting model and
// the real byte path agree.
#include "core/frame_context.h"
#include "fec/coding_unit.h"
#include "quality/metrics.h"

#include <gtest/gtest.h>

#include <map>

namespace w4k {
namespace {

constexpr int kW = 256;
constexpr int kH = 144;

video::Frame test_frame() {
  video::VideoSpec spec;
  spec.width = kW;
  spec.height = kH;
  spec.frames = 1;
  spec.richness = video::Richness::kHigh;
  spec.seed = 99;
  return video::SyntheticVideo(spec).frame(0);
}

/// Extracts a unit's source payload from the encoded frame.
std::vector<std::uint8_t> unit_payload(const video::EncodedFrame& enc,
                                       const sched::UnitSpec& u) {
  const auto& sub =
      enc.layers[u.id.layer][static_cast<std::size_t>(u.sublayer_k)];
  return {sub.begin() + static_cast<std::ptrdiff_t>(u.offset),
          sub.begin() + static_cast<std::ptrdiff_t>(u.offset + u.source_bytes)};
}

TEST(EndToEnd, LosslessDataPlaneOverCleanChannel) {
  const video::Frame original = test_frame();
  const std::size_t symbol = core::scaled_symbol_size(kW, kH);
  const core::FrameContext ctx =
      core::make_frame_context(original, nullptr, symbol);
  const std::uint64_t frame_seed = 424242;

  // Sender: one fountain encoder per coding unit, emitting exactly k
  // symbols (clean channel).
  // Receiver: matching decoders fed every symbol.
  std::vector<bool> decoded(ctx.units.size(), false);
  video::PartialFrame partial = video::PartialFrame::empty(kW, kH);
  for (std::size_t i = 0; i < ctx.units.size(); ++i) {
    const auto& u = ctx.units[i];
    fec::UnitEncoder enc(u.id, unit_payload(ctx.encoded, u), symbol,
                         frame_seed);
    fec::UnitDecoder dec(u.id, enc.k(), symbol, u.source_bytes, frame_seed);
    while (!dec.complete()) dec.add_symbol(enc.emit());
    decoded[i] = true;
    video::Segment seg;
    seg.offset = u.offset;
    seg.bytes = *dec.decode();
    // Decoded payload must match the sender's exactly.
    ASSERT_EQ(seg.bytes, unit_payload(ctx.encoded, u)) << "unit " << i;
    partial.layers[u.id.layer][static_cast<std::size_t>(u.sublayer_k)]
        .segments.push_back(std::move(seg));
  }

  const video::Frame received = video::reconstruct(partial);
  const video::Frame reference = core::reconstruct_from_units(ctx, decoded);
  EXPECT_EQ(received.y.pix, reference.y.pix);
  EXPECT_GT(quality::ssim(original, received), 0.999);
}

TEST(EndToEnd, LossyChannelWithRatelessRepairRecoversFrame) {
  const video::Frame original = test_frame();
  const std::size_t symbol = core::scaled_symbol_size(kW, kH);
  const core::FrameContext ctx =
      core::make_frame_context(original, nullptr, symbol);
  const std::uint64_t frame_seed = 777;
  Rng rng(31337);

  video::PartialFrame partial = video::PartialFrame::empty(kW, kH);
  std::size_t total_sent = 0, total_source_symbols = 0;
  for (const auto& u : ctx.units) {
    fec::UnitEncoder enc(u.id, unit_payload(ctx.encoded, u), symbol,
                         frame_seed);
    fec::UnitDecoder dec(u.id, enc.k(), symbol, u.source_bytes, frame_seed);
    total_source_symbols += enc.k();
    // 20% loss; the sender keeps emitting fresh symbols until decode.
    while (!dec.complete()) {
      const fec::Symbol s = enc.emit();
      ++total_sent;
      if (rng.chance(0.2)) continue;
      dec.add_symbol(s);
    }
    video::Segment seg;
    seg.offset = u.offset;
    seg.bytes = *dec.decode();
    partial.layers[u.id.layer][static_cast<std::size_t>(u.sublayer_k)]
        .segments.push_back(std::move(seg));
  }

  const video::Frame received = video::reconstruct(partial);
  EXPECT_GT(quality::ssim(original, received), 0.999);
  // Rateless efficiency: overhead should be close to the channel loss
  // (1/(1-p) = 1.25x), far from ARQ-free repetition coding.
  const double overhead = static_cast<double>(total_sent) /
                          static_cast<double>(total_source_symbols);
  EXPECT_LT(overhead, 1.45);
  EXPECT_GT(overhead, 1.15);
}

TEST(EndToEnd, PartialDeliveryDegradesGracefully) {
  // Only layers 0-1 make it through: quality should land between the
  // blank frame and full reception, near the up-to-layer-1 anchor.
  const video::Frame original = test_frame();
  const std::size_t symbol = core::scaled_symbol_size(kW, kH);
  const core::FrameContext ctx =
      core::make_frame_context(original, nullptr, symbol);
  const std::uint64_t frame_seed = 555;

  video::PartialFrame partial = video::PartialFrame::empty(kW, kH);
  for (const auto& u : ctx.units) {
    if (u.id.layer > 1) continue;
    fec::UnitEncoder enc(u.id, unit_payload(ctx.encoded, u), symbol,
                         frame_seed);
    fec::UnitDecoder dec(u.id, enc.k(), symbol, u.source_bytes, frame_seed);
    while (!dec.complete()) dec.add_symbol(enc.emit());
    video::Segment seg;
    seg.offset = u.offset;
    seg.bytes = *dec.decode();
    partial.layers[u.id.layer][static_cast<std::size_t>(u.sublayer_k)]
        .segments.push_back(std::move(seg));
  }
  const video::Frame received = video::reconstruct(partial);
  const double s = quality::ssim(original, received);
  EXPECT_NEAR(s, ctx.content.up_to_layer_ssim[1], 0.01);
  EXPECT_GT(s, ctx.content.blank_ssim);
  EXPECT_LT(s, ctx.content.up_to_layer_ssim[3]);
}

TEST(EndToEnd, SenderReceiverDisagreeOnSeedBreaksRepair) {
  // Guards the implicit-coordination contract: coefficients derive from
  // (frame seed, unit id), so a seed mismatch corrupts repair decoding.
  const video::Frame original = test_frame();
  const std::size_t symbol = core::scaled_symbol_size(kW, kH);
  const core::FrameContext ctx =
      core::make_frame_context(original, nullptr, symbol);
  const auto& u = ctx.units.front();
  fec::UnitEncoder enc(u.id, unit_payload(ctx.encoded, u), symbol, 1111);
  fec::UnitDecoder dec(u.id, enc.k(), symbol, u.source_bytes, 2222);
  // Feed only repair symbols.
  for (std::size_t i = 0; i < enc.k(); ++i) {
    fec::Symbol s = enc.emit();
    s.esi += static_cast<fec::Esi>(enc.k());
    dec.add_symbol(s);
  }
  if (dec.complete())
    EXPECT_NE(*dec.decode(), unit_payload(ctx.encoded, u));
}

}  // namespace
}  // namespace w4k

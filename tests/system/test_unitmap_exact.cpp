// Validates the Eq. 4 greedy against the exhaustive reference solver on
// randomized tiny instances: the greedy should be optimal or very close
// (it is a heuristic; the paper uses it because the ILP is impractical).
#include "sched/unitmap.h"

#include <gtest/gtest.h>

namespace w4k::sched {
namespace {

GroupSpec make_group(std::vector<std::size_t> members) {
  GroupSpec g;
  g.members = std::move(members);
  g.beam.rate = Mbps{40.0};
  return g;
}

/// Tiny unit list: `n` units in layer 0 with the given k values.
std::vector<UnitSpec> tiny_units(const std::vector<std::size_t>& ks) {
  std::vector<UnitSpec> units;
  for (std::size_t i = 0; i < ks.size(); ++i) {
    UnitSpec u;
    u.id.layer = 0;
    u.id.sublayer = static_cast<std::uint16_t>(i);
    u.k_symbols = ks[i];
    u.source_bytes = ks[i] * 100;
    units.push_back(u);
  }
  return units;
}

TEST(UnitMapExact, GreedyOptimalOnDisjointGroups) {
  // Two disjoint groups, each with exactly enough budget for both units.
  const auto units = tiny_units({2, 2});
  std::vector<GroupSpec> groups{make_group({0}), make_group({1})};
  std::vector<LayerArray> bytes(2);
  bytes[0][0] = 400.0;
  bytes[1][0] = 400.0;
  const auto greedy = map_to_units(groups, bytes, units, 2, 100);
  EXPECT_EQ(decoded_bytes_objective(greedy, units),
            exact_unit_objective(groups, bytes, units, 2, 100));
}

TEST(UnitMapExact, GreedySuboptimalityOnOverlapIsBoundedAndKnown) {
  // A documented limitation of the paper's ascending-order heuristic:
  // with overlapping groups it serves early units through both groups
  // instead of spreading to later units. Here greedy reaches 1200 of the
  // optimal 1400 decoded bytes (86%) — the exact solver quantifies the
  // gap instead of hiding it.
  const auto units = tiny_units({2, 2, 2});
  std::vector<GroupSpec> groups{make_group({0, 1}), make_group({1, 2})};
  std::vector<LayerArray> bytes(2);
  bytes[0][0] = 400.0;  // 4 symbols
  bytes[1][0] = 400.0;
  const auto greedy = map_to_units(groups, bytes, units, 3, 100);
  const std::size_t exact = exact_unit_objective(groups, bytes, units, 3, 100);
  EXPECT_EQ(decoded_bytes_objective(greedy, units), 1200u);
  EXPECT_EQ(exact, 1400u);
}

TEST(UnitMapExact, GreedyWithinHalfOfOptimalOnAdversarialInstances) {
  // Random tiny instances with heavily overlapping groups and mixed unit
  // sizes — the regime that maximally stresses the ascending-order
  // heuristic. In the real pipeline units have uniform k = 20 and budgets
  // arrive in whole-unit granularity from the optimizer, so these gaps
  // shrink; the invariant here is "never below half of optimal, never
  // above it, usually equal".
  Rng rng(99);
  int equal = 0;
  const int trials = 30;
  for (int t = 0; t < trials; ++t) {
    const std::size_t n_units = 2 + rng.below(2);   // 2-3 units
    const std::size_t n_groups = 2 + rng.below(2);  // 2-3 groups
    std::vector<std::size_t> ks;
    for (std::size_t i = 0; i < n_units; ++i)
      ks.push_back(1 + rng.below(3));  // k in 1..3
    const auto units = tiny_units(ks);

    std::vector<GroupSpec> groups;
    for (std::size_t g = 0; g < n_groups; ++g) {
      std::vector<std::size_t> members;
      for (std::size_t u = 0; u < 3; ++u)
        if (rng.chance(0.6)) members.push_back(u);
      if (members.empty()) members.push_back(rng.below(3));
      groups.push_back(make_group(members));
    }
    std::vector<LayerArray> bytes(groups.size());
    for (auto& b : bytes) b[0] = static_cast<double>(rng.below(5)) * 100.0;

    const auto greedy = map_to_units(groups, bytes, units, 3, 100);
    const std::size_t greedy_obj = decoded_bytes_objective(greedy, units);
    const std::size_t exact = exact_unit_objective(groups, bytes, units, 3, 100);
    ASSERT_LE(greedy_obj, exact) << "greedy cannot beat the optimum";
    EXPECT_GE(greedy_obj * 2, exact)
        << "trial " << t << ": greedy " << greedy_obj << " vs exact "
        << exact;
    equal += greedy_obj == exact ? 1 : 0;
  }
  // The greedy should still be exactly optimal on most cases.
  EXPECT_GE(equal * 2, trials);
}

TEST(UnitMapExact, ExactRefusesHugeInstances) {
  const auto units = tiny_units({20, 20, 20, 20, 20, 20});
  std::vector<GroupSpec> groups{make_group({0}), make_group({1}),
                                make_group({0, 1}), make_group({2}),
                                make_group({0, 2})};
  std::vector<LayerArray> bytes(groups.size());
  for (auto& b : bytes) b[0] = 120000.0;
  EXPECT_THROW(exact_unit_objective(groups, bytes, units, 3, 100),
               std::invalid_argument);
}

TEST(UnitMapExact, ObjectiveCountsDecodedBytes) {
  const auto units = tiny_units({2, 3});
  UnitMapResult r;
  r.user_decodes = {{true, false}, {true, true}};
  EXPECT_EQ(decoded_bytes_objective(r, units), 200u + 200u + 300u);
}

}  // namespace
}  // namespace w4k::sched

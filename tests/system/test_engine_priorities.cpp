// The engine's layer-priority behaviour: under a constrained budget the
// schedule (and the makeup rounds) must favour lower layers — losing
// layer 0 is lethal, losing layer 3 is cosmetic (Sec. 2.7).
#include "emu/engine.h"

#include <gtest/gtest.h>

namespace w4k::emu {
namespace {

/// Units across all four layers, `per_layer` units each, k symbols each.
std::vector<sched::UnitSpec> layered_units(std::size_t per_layer,
                                           std::size_t k) {
  std::vector<sched::UnitSpec> units;
  for (int l = 0; l < video::kNumLayers; ++l) {
    for (std::size_t i = 0; i < per_layer; ++i) {
      sched::UnitSpec u;
      u.id.layer = static_cast<std::uint16_t>(l);
      u.id.sublayer = static_cast<std::uint16_t>(i);
      u.source_bytes = k * 100;
      u.k_symbols = k;
      units.push_back(u);
    }
  }
  return units;
}

GroupTx group(double mbps, double loss) {
  GroupTx g;
  g.members = {0};
  g.mcs = *channel::mcs_by_index(8);
  g.drain_rate = Mbps{mbps};
  g.bucket_rate = Mbps{mbps};
  g.member_loss = {loss};
  return g;
}

EngineConfig cfg_100b() {
  EngineConfig cfg;
  cfg.symbol_size = 100;
  cfg.header_bytes = 0;
  return cfg;
}

TEST(EnginePriorities, BudgetExhaustionDropsHighestLayersFirst) {
  const auto units = layered_units(5, 10);  // 20 units, 5 per layer
  std::vector<sched::UnitAssignment> assignments;
  for (std::size_t i = 0; i < units.size(); ++i)
    assignments.push_back({0, i, units[i].k_symbols});
  TxEngine engine(cfg_100b());
  Rng rng(1);
  // Budget for roughly half the frame.
  const auto res = engine.run_frame(units, assignments,
                                    {group(2.5, 0.0)}, 1, rng);
  // Whatever was decoded must be a prefix in layer order: no decoded unit
  // may come after an undecoded one.
  bool seen_undecoded = false;
  for (std::size_t i = 0; i < units.size(); ++i) {
    if (!res.user_decoded[0][i]) seen_undecoded = true;
    else EXPECT_FALSE(seen_undecoded) << "unit " << i << " out of order";
  }
  // Layer 0 fully decoded, layer 3 not.
  for (std::size_t i = 0; i < 5; ++i) EXPECT_TRUE(res.user_decoded[0][i]);
  EXPECT_FALSE(res.user_decoded[0][19]);
}

TEST(EnginePriorities, MakeupRepairsLowLayersBeforeHighOnes) {
  // Heavy loss + tight makeup budget: the repaired units must again form
  // a low-layer-first prefix rather than scattering across layers.
  const auto units = layered_units(4, 10);
  std::vector<sched::UnitAssignment> assignments;
  for (std::size_t i = 0; i < units.size(); ++i)
    assignments.push_back({0, i, units[i].k_symbols});
  EngineConfig cfg = cfg_100b();
  cfg.feedback_rounds = 3;  // makeup budget binds before repairs finish
  TxEngine engine(cfg);
  Rng rng(2);
  const auto res = engine.run_frame(units, assignments,
                                    {group(6.0, 0.25)}, 1, rng);
  // With 25% loss and a binding budget, some units stay broken — count
  // per layer and require monotone non-increasing counts.
  std::array<int, video::kNumLayers> decoded{};
  for (std::size_t i = 0; i < units.size(); ++i)
    decoded[units[i].id.layer] += res.user_decoded[0][i] ? 1 : 0;
  for (int l = 1; l < video::kNumLayers; ++l)
    EXPECT_LE(decoded[l], decoded[l - 1]) << "layer " << l;
  EXPECT_GT(decoded[0], 0);
}

TEST(EnginePriorities, AssignmentOrderIsTransmissionOrder) {
  // Reversing the assignment order must reverse which units survive a
  // tight budget — the engine honors the scheduler's priority exactly.
  const auto units = layered_units(5, 10);
  std::vector<sched::UnitAssignment> reversed;
  for (std::size_t i = units.size(); i-- > 0;)
    reversed.push_back({0, i, units[i].k_symbols});
  TxEngine engine(cfg_100b());
  Rng rng(3);
  const auto res =
      engine.run_frame(units, reversed, {group(2.5, 0.0)}, 1, rng);
  EXPECT_TRUE(res.user_decoded[0][19]);   // last unit now goes first
  EXPECT_FALSE(res.user_decoded[0][0]);
}

}  // namespace
}  // namespace w4k::emu

#include "core/report.h"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

namespace w4k::core {
namespace {

FrameOutcome frame(std::vector<double> ssim, std::vector<double> psnr,
                   std::size_t sent = 100, std::size_t dropped = 0) {
  FrameOutcome f;
  f.ssim = std::move(ssim);
  f.psnr = std::move(psnr);
  f.decoded_fraction.assign(f.ssim.size(), 0.5);
  f.stats.packets_offered = sent + dropped;
  f.stats.packets_sent = sent;
  f.stats.packets_dropped_queue = dropped;
  f.stats.makeup_packets = 3;
  f.stats.airtime = 0.03;
  return f;
}

TEST(SessionReport, EmptyReportIsSane) {
  SessionReport r;
  EXPECT_EQ(r.frames(), 0u);
  EXPECT_EQ(r.users(), 0u);
  EXPECT_EQ(r.ssim_summary().count, 0u);
  EXPECT_DOUBLE_EQ(r.bad_frame_fraction(), 0.0);
  EXPECT_TRUE(r.per_user_mean_ssim().empty());
}

TEST(SessionReport, AggregatesAcrossFramesAndUsers) {
  SessionReport r;
  r.add(frame({0.9, 0.8}, {40.0, 35.0}));
  r.add(frame({1.0, 0.7}, {45.0, 30.0}));
  EXPECT_EQ(r.frames(), 2u);
  EXPECT_EQ(r.users(), 2u);
  EXPECT_DOUBLE_EQ(r.ssim_summary().mean, (0.9 + 0.8 + 1.0 + 0.7) / 4.0);
  const auto per_user = r.per_user_mean_ssim();
  ASSERT_EQ(per_user.size(), 2u);
  EXPECT_DOUBLE_EQ(per_user[0], 0.95);
  EXPECT_DOUBLE_EQ(per_user[1], 0.75);
}

TEST(SessionReport, BadFrameFraction) {
  SessionReport r;
  r.add(frame({0.95, 0.95}, {40, 40}));
  r.add(frame({0.95, 0.85}, {40, 33}));  // one user below 0.9 -> bad frame
  r.add(frame({0.5, 0.95}, {20, 40}));   // bad
  r.add(frame({0.99, 0.99}, {45, 45}));
  EXPECT_DOUBLE_EQ(r.bad_frame_fraction(0.9), 0.5);
  EXPECT_DOUBLE_EQ(r.bad_frame_fraction(0.4), 0.0);
}

TEST(SessionReport, TotalsSumStats) {
  SessionReport r;
  r.add(frame({0.9}, {40}, 100, 5));
  r.add(frame({0.9}, {40}, 200, 1));
  const auto t = r.totals();
  EXPECT_EQ(t.packets_sent, 300u);
  EXPECT_EQ(t.packets_dropped_queue, 6u);
  EXPECT_EQ(t.makeup_packets, 6u);
  EXPECT_NEAR(t.airtime, 0.06, 1e-12);
}

TEST(SessionReport, SummaryTextMentionsKeyFields) {
  SessionReport r;
  r.add(frame({0.9, 0.8}, {40, 35}));
  const std::string text = r.summary_text();
  EXPECT_NE(text.find("frames: 1"), std::string::npos);
  EXPECT_NE(text.find("SSIM"), std::string::npos);
  EXPECT_NE(text.find("PSNR"), std::string::npos);
  EXPECT_NE(text.find("bad-frame"), std::string::npos);
}

TEST(SessionReport, CsvShapeAndContent) {
  SessionReport r;
  r.add(frame({0.9, 0.8}, {40, 35}, 120, 2));
  std::ostringstream os;
  r.write_csv(os);
  const std::string csv = os.str();
  // Header + one data row.
  EXPECT_NE(csv.find("frame,ssim_u0,ssim_u1,psnr_u0,psnr_u1"),
            std::string::npos);
  EXPECT_NE(csv.find("0,0.9,0.8,40,35"), std::string::npos);
  EXPECT_NE(csv.find(",120,2,3,0.03"), std::string::npos);
  // Exactly 2 lines.
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 2);
}

// Regression: frames with differing user counts (a user joins mid-run)
// must not break the per-user aggregates or the CSV writer. users() is
// the maximum over frames, missing samples are treated as absent for the
// per-user means and zero-filled in the CSV.
TEST(SessionReport, DifferingUserCountsAcrossFrames) {
  SessionReport r;
  r.add(frame({0.9}, {40.0}));              // 1 user
  r.add(frame({0.8, 0.6}, {35.0, 30.0}));   // 2 users
  EXPECT_EQ(r.users(), 2u);
  EXPECT_EQ(r.all_ssim().size(), 3u);
  EXPECT_DOUBLE_EQ(r.ssim_summary().mean, (0.9 + 0.8 + 0.6) / 3.0);

  const auto per_user = r.per_user_mean_ssim();
  ASSERT_EQ(per_user.size(), 2u);
  EXPECT_DOUBLE_EQ(per_user[0], (0.9 + 0.8) / 2.0);  // present both frames
  EXPECT_DOUBLE_EQ(per_user[1], 0.6);                // present once

  std::ostringstream os;
  r.write_csv(os);
  const std::string csv = os.str();
  EXPECT_NE(csv.find("ssim_u1"), std::string::npos);
  // Frame 0 has no user 1: the column is zero-filled, not dropped.
  EXPECT_NE(csv.find("0,0.9,0"), std::string::npos);
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 3);
}

TEST(SessionReport, FrameAccessors) {
  SessionReport r;
  r.add(frame({0.9}, {40.0}));
  r.add(frame({0.8}, {35.0}));
  EXPECT_EQ(r.frame_outcomes().size(), 2u);
  EXPECT_DOUBLE_EQ(r.frame(1).ssim[0], 0.8);
  EXPECT_THROW(r.frame(2), std::out_of_range);
}

TEST(SessionReport, CsvFileErrorsThrow) {
  SessionReport r;
  r.add(frame({0.9}, {40}));
  EXPECT_THROW(r.write_csv_file("/nonexistent/dir/report.csv"),
               std::runtime_error);
}

// --- merge() and the aggregation edge cases the campaign engine leans on

TEST(SessionReportMerge, RenumbersFrameIdsMonotonically) {
  const auto numbered = [](FrameOutcome f, std::uint32_t id) {
    f.frame_id = id;
    return f;
  };
  SessionReport a;
  a.add(numbered(frame({0.9}, {40.0}), 0));
  a.add(numbered(frame({0.8}, {35.0}), 1));
  SessionReport b;  // recorded independently, so its ids also start at 0
  b.add(numbered(frame({0.7}, {30.0}), 0));
  b.add(numbered(frame({0.6}, {25.0}), 1));
  a.merge(b);
  ASSERT_EQ(a.frames(), 4u);
  for (std::size_t i = 0; i < a.frames(); ++i)
    EXPECT_EQ(a.frame(i).frame_id, static_cast<std::uint32_t>(i));
  EXPECT_DOUBLE_EQ(a.ssim_summary().mean, (0.9 + 0.8 + 0.7 + 0.6) / 4.0);
  EXPECT_EQ(a.totals().packets_sent, 400u);
}

TEST(SessionReportMerge, EmptyEitherSideBehaves) {
  SessionReport empty;
  SessionReport r;
  r.add(frame({0.9}, {40.0}));

  SessionReport into_empty;
  into_empty.merge(r);
  EXPECT_EQ(into_empty.frames(), 1u);
  EXPECT_DOUBLE_EQ(into_empty.frame(0).ssim[0], 0.9);

  r.merge(empty);  // merging a zero-frame report is a no-op
  EXPECT_EQ(r.frames(), 1u);
  EXPECT_EQ(r.ssim_summary().count, 1u);
}

TEST(SessionReportMerge, DifferingUserCountsAcrossSegments) {
  SessionReport a;
  a.add(frame({0.9, 0.8}, {40.0, 35.0}));
  SessionReport b;
  b.add(frame({0.7, 0.6, 0.5}, {30.0, 25.0, 20.0}));
  a.merge(b);
  EXPECT_EQ(a.users(), 3u);  // max over all merged frames
  EXPECT_EQ(a.all_ssim().size(), 5u);
  const auto per_user = a.per_user_mean_ssim();
  ASSERT_EQ(per_user.size(), 3u);
  // User 2 only exists in the second segment: its mean covers one sample.
  EXPECT_DOUBLE_EQ(per_user[2], 0.5);
}

TEST(SessionReportMerge, AbsentAndQuarantinedUsersSurviveMerge) {
  FrameOutcome churned = frame({0.9, 0.0}, {40.0, 0.0});
  churned.user_present = {true, false};
  FrameOutcome quarantined = frame({0.8, 0.1}, {35.0, 5.0});
  quarantined.user_quarantined = {false, true};

  SessionReport a;
  a.add(churned);
  SessionReport b;
  b.add(quarantined);
  a.merge(b);

  // The absent placeholder sample is skipped, the quarantined (but
  // present) user's sample is counted.
  EXPECT_EQ(a.all_ssim().size(), 3u);
  EXPECT_EQ(a.all_decoded_fraction().size(), 3u);
  ASSERT_EQ(a.frame(1).user_quarantined.size(), 2u);
  EXPECT_TRUE(a.frame(1).user_quarantined[1]);
  const auto per_user = a.per_user_mean_ssim();
  ASSERT_EQ(per_user.size(), 2u);
  EXPECT_DOUBLE_EQ(per_user[1], 0.1);  // only the present sample counts
}

TEST(SessionReport, AllDecodedFractionSkipsAbsentUsers) {
  FrameOutcome f = frame({0.9, 0.5}, {40.0, 20.0});
  f.decoded_fraction = {1.0, 0.25};
  f.user_present = {true, false};
  SessionReport r;
  r.add(f);
  const auto decoded = r.all_decoded_fraction();
  ASSERT_EQ(decoded.size(), 1u);
  EXPECT_DOUBLE_EQ(decoded[0], 1.0);
}

// A total-outage cell (nothing decodes all session) must still produce
// finite aggregates — the campaign merge step hard-fails on NaN, so this
// is the contract it leans on.
TEST(SessionReport, TotalOutageAggregatesAreNaNFree) {
  SessionReport r;
  for (int i = 0; i < 3; ++i) {
    FrameOutcome f = frame({0.31, 0.31}, {9.5, 9.5});  // blank-frame quality
    f.decoded_fraction = {0.0, 0.0};
    f.frame_id = static_cast<std::uint32_t>(i);
    f.stats.packets_sent = 0;
    f.stats.packets_offered = 0;
    f.stats.makeup_packets = 0;
    f.stats.airtime = 0.0;
    r.add(f);
  }
  const Summary ssim = r.ssim_summary();
  EXPECT_TRUE(std::isfinite(ssim.mean));
  EXPECT_TRUE(std::isfinite(r.psnr_summary().mean));
  EXPECT_DOUBLE_EQ(r.bad_frame_fraction(), 1.0);
  for (double d : r.all_decoded_fraction()) EXPECT_DOUBLE_EQ(d, 0.0);
  for (double s : r.per_user_mean_ssim()) EXPECT_TRUE(std::isfinite(s));
  const auto t = r.totals();
  EXPECT_EQ(t.packets_sent, 0u);
  EXPECT_TRUE(std::isfinite(t.airtime));
}

}  // namespace
}  // namespace w4k::core

// Corrupt quality-model cache handling: a truncated or bit-flipped cache
// must never poison the live model — it is detected, deleted, and the
// model is retrained and re-cached.
#include "core/pretrained.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>

namespace w4k::core {
namespace {

// Tiny training run: the test exercises the cache path, not model quality.
PretrainedOptions tiny_options(const std::string& cache) {
  PretrainedOptions opts;
  opts.width = 64;   // synthetic clips need positive multiples of 16
  opts.height = 32;
  opts.frames_per_video = 1;
  opts.fractions_per_frame = 4;
  opts.epochs = 2;
  opts.cache_path = cache;
  return opts;
}

struct TempCache {
  std::string path;
  explicit TempCache(const char* name)
      : path(std::string("w4k_cache_test_") + name) {
    std::remove(path.c_str());
  }
  ~TempCache() { std::remove(path.c_str()); }
};

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

double predict_probe(model::QualityModel& m) {
  model::Features f;
  return m.predict(f);
}

TEST(PretrainedCache, TrainsSavesAndReloads) {
  TempCache cache("roundtrip");
  model::QualityModel trained(7);
  ensure_trained(trained, tiny_options(cache.path));
  ASSERT_TRUE(std::ifstream(cache.path).good());

  model::QualityModel loaded(7);
  const double mse = ensure_trained(loaded, tiny_options(cache.path));
  EXPECT_EQ(mse, 0.0);  // came from cache, no training happened
  EXPECT_DOUBLE_EQ(predict_probe(loaded), predict_probe(trained));
}

TEST(PretrainedCache, TruncatedCacheIsDeletedAndRetrained) {
  TempCache cache("trunc");
  model::QualityModel trained(7);
  ensure_trained(trained, tiny_options(cache.path));
  const std::string full = slurp(cache.path);
  std::ofstream(cache.path, std::ios::binary)
      << full.substr(0, full.size() / 3);

  model::QualityModel recovered(7);
  const double mse = ensure_trained(recovered, tiny_options(cache.path));
  EXPECT_GT(mse, 0.0);  // retrained, not loaded
  // The corrupt file was replaced by a valid re-saved cache.
  model::QualityModel reloaded(7);
  EXPECT_EQ(ensure_trained(reloaded, tiny_options(cache.path)), 0.0);
}

TEST(PretrainedCache, BitFlippedCacheIsDetected) {
  TempCache cache("bitflip");
  model::QualityModel trained(7);
  ensure_trained(trained, tiny_options(cache.path));
  // Replace a weight with NaN — the bytes still parse as doubles, so only
  // the finiteness check can catch it.
  std::string data = slurp(cache.path);
  const auto pos = data.find("0.");
  ASSERT_NE(pos, std::string::npos);
  data.replace(pos, 2, "na");  // "0.123..." -> "na123..." parses as NaN

  std::ofstream(cache.path, std::ios::binary) << data;
  model::QualityModel recovered(7);
  const double mse = ensure_trained(recovered, tiny_options(cache.path));
  EXPECT_GT(mse, 0.0);
  EXPECT_TRUE(std::isfinite(predict_probe(recovered)));
}

TEST(PretrainedCache, HalfLoadedWeightsNeverLeak) {
  // Train a model, snapshot its prediction, then feed it a truncated cache:
  // the failed load must leave the model exactly as it was.
  TempCache cache("leak");
  model::QualityModel victim(7);
  ensure_trained(victim, tiny_options(cache.path));
  const double before = predict_probe(victim);

  const std::string full = slurp(cache.path);
  std::ofstream(cache.path, std::ios::binary)
      << full.substr(0, full.size() / 2);
  EXPECT_FALSE(victim.load_file(cache.path));
  EXPECT_DOUBLE_EQ(predict_probe(victim), before);
}

}  // namespace
}  // namespace w4k::core

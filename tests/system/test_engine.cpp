#include "emu/engine.h"

#include <gtest/gtest.h>

#include <numeric>

namespace w4k::emu {
namespace {

/// Builds a synthetic unit list: `n` units of `k` symbols each, all layer 0.
std::vector<sched::UnitSpec> make_units(std::size_t n, std::size_t k,
                                        std::size_t symbol = 100) {
  std::vector<sched::UnitSpec> units;
  for (std::size_t i = 0; i < n; ++i) {
    sched::UnitSpec u;
    u.id.layer = 0;
    u.id.sublayer = static_cast<std::uint16_t>(i);
    u.sublayer_k = 0;
    u.offset = i * k * symbol;
    u.source_bytes = k * symbol;
    u.k_symbols = k;
    units.push_back(u);
  }
  return units;
}

std::vector<sched::UnitAssignment> full_assignments(
    const std::vector<sched::UnitSpec>& units, std::size_t group = 0) {
  std::vector<sched::UnitAssignment> a;
  for (std::size_t i = 0; i < units.size(); ++i)
    a.push_back({group, i, units[i].k_symbols});
  return a;
}

GroupTx perfect_group(std::vector<std::size_t> members, double mbps = 50.0) {
  GroupTx g;
  g.members = std::move(members);
  g.mcs = *channel::mcs_by_index(12);
  g.drain_rate = Mbps{mbps};
  g.bucket_rate = Mbps{mbps};
  g.member_loss.assign(g.members.size(), 0.0);
  return g;
}

EngineConfig fast_config() {
  EngineConfig cfg;
  cfg.symbol_size = 100;
  cfg.header_bytes = 0;
  return cfg;
}

TEST(Engine, PerfectLinkDeliversEverything) {
  const auto units = make_units(10, 20);
  TxEngine engine(fast_config());
  Rng rng(1);
  const auto res = engine.run_frame(units, full_assignments(units),
                                    {perfect_group({0, 1})}, 2, rng);
  for (std::size_t u = 0; u < 2; ++u)
    for (std::size_t i = 0; i < units.size(); ++i)
      EXPECT_TRUE(res.user_decoded[u][i]) << u << "," << i;
  EXPECT_EQ(res.stats.packets_dropped_queue, 0u);
  EXPECT_EQ(res.stats.packets_sent, 200u + res.stats.makeup_packets);
}

TEST(Engine, LossRecoveredByMakeupRounds) {
  const auto units = make_units(10, 20);
  EngineConfig cfg = fast_config();
  cfg.feedback_rounds = 3;
  TxEngine engine(cfg);
  GroupTx g = perfect_group({0, 1});
  g.member_loss = {0.1, 0.15};  // heavy but recoverable
  Rng rng(2);
  const auto res =
      engine.run_frame(units, full_assignments(units), {g}, 2, rng);
  EXPECT_GT(res.stats.makeup_packets, 0u);
  std::size_t decoded = 0;
  for (std::size_t u = 0; u < 2; ++u)
    for (std::size_t i = 0; i < units.size(); ++i)
      decoded += res.user_decoded[u][i] ? 1 : 0;
  EXPECT_EQ(decoded, 20u);  // everything recovered within the budget
}

TEST(Engine, NoFeedbackMeansLossesStick) {
  const auto units = make_units(10, 20);
  EngineConfig cfg = fast_config();
  cfg.feedback_rounds = 0;
  TxEngine engine(cfg);
  GroupTx g = perfect_group({0});
  g.member_loss = {0.2};
  Rng rng(3);
  const auto res =
      engine.run_frame(units, full_assignments(units), {g}, 1, rng);
  std::size_t decoded = 0;
  for (std::size_t i = 0; i < units.size(); ++i)
    decoded += res.user_decoded[0][i] ? 1 : 0;
  EXPECT_LT(decoded, 4u);  // with exactly k sent and 20% loss, most fail
}

TEST(Engine, BudgetLimitsDelivery) {
  // 100 units x 20 symbols x 100 B = 200 kB, but at 10 Mbps only
  // ~41 kB fit in 33 ms.
  const auto units = make_units(100, 20);
  TxEngine engine(fast_config());
  Rng rng(4);
  const auto res = engine.run_frame(units, full_assignments(units),
                                    {perfect_group({0}, 10.0)}, 1, rng);
  std::size_t decoded = 0;
  for (std::size_t i = 0; i < units.size(); ++i)
    decoded += res.user_decoded[0][i] ? 1 : 0;
  EXPECT_GT(decoded, 15u);
  EXPECT_LT(decoded, 25u);  // ~ 41kB / 2kB per unit
  // Earlier units decode first (priority order).
  for (std::size_t i = 0; i + 1 < units.size(); ++i)
    EXPECT_GE(res.user_decoded[0][i], res.user_decoded[0][i + 1]);
}

TEST(Engine, SourceCodingOffDuplicatesAcrossGroups) {
  // User 0 sits in two groups that both send the same unit. With fountain
  // coding every symbol is fresh -> unit decodes from combined halves.
  // Without it, both groups send the same systematic prefix -> user 0
  // cannot decode.
  const auto units = make_units(1, 20);
  std::vector<sched::UnitAssignment> a{{0, 0, 10}, {1, 0, 10}};
  const std::vector<GroupTx> groups{perfect_group({0, 1}),
                                    perfect_group({0, 2})};
  EngineConfig with = fast_config();
  with.feedback_rounds = 0;
  EngineConfig without = with;
  without.source_coding = false;

  Rng rng1(5), rng2(5);
  const auto res_with =
      TxEngine(with).run_frame(units, a, groups, 3, rng1);
  const auto res_without =
      TxEngine(without).run_frame(units, a, groups, 3, rng2);

  EXPECT_TRUE(res_with.user_decoded[0][0]);
  EXPECT_FALSE(res_without.user_decoded[0][0]);
  // Distinct symbols seen by user 0 without coding: only 10 (duplicated).
  EXPECT_EQ(res_without.user_symbols[0][0], 10u);
  EXPECT_EQ(res_with.user_symbols[0][0], 20u);
}

TEST(Engine, SourceCodingOffStillDecodesDisjointIndices) {
  // A single group sending exactly k systematic symbols decodes fine.
  const auto units = make_units(5, 20);
  EngineConfig cfg = fast_config();
  cfg.source_coding = false;
  TxEngine engine(cfg);
  Rng rng(6);
  const auto res = engine.run_frame(units, full_assignments(units),
                                    {perfect_group({0})}, 1, rng);
  for (std::size_t i = 0; i < units.size(); ++i)
    EXPECT_TRUE(res.user_decoded[0][i]);
}

TEST(Engine, RateControlOffOverflowsQueueOnHugeBurst) {
  // Frame data far beyond queue capacity, dumped at t=0 without pacing.
  const auto units = make_units(400, 20);  // 800 kB
  EngineConfig cfg = fast_config();
  cfg.rate_control = false;
  cfg.queue_capacity_bytes = 100'000;
  TxEngine engine(cfg);
  Rng rng(7);
  const auto res = engine.run_frame(units, full_assignments(units),
                                    {perfect_group({0}, 50.0)}, 1, rng);
  EXPECT_GT(res.stats.packets_dropped_queue, 0u);
}

TEST(Engine, RateControlOnAvoidsQueueDrops) {
  const auto units = make_units(400, 20);
  EngineConfig cfg = fast_config();
  cfg.queue_capacity_bytes = 100'000;
  TxEngine engine(cfg);
  Rng rng(8);
  const auto res = engine.run_frame(units, full_assignments(units),
                                    {perfect_group({0}, 50.0)}, 1, rng);
  EXPECT_EQ(res.stats.packets_dropped_queue, 0u);
}

TEST(Engine, BacklogCarriesAcrossFramesWithoutRateControl) {
  const auto units = make_units(300, 20);  // 600 kB >> 33 ms at 50 Mbps
  EngineConfig cfg = fast_config();
  cfg.rate_control = false;
  cfg.queue_capacity_bytes = 10'000'000;
  TxEngine engine(cfg);
  Rng rng(9);
  const auto res1 = engine.run_frame(units, full_assignments(units),
                                     {perfect_group({0}, 50.0)}, 1, rng);
  EXPECT_GT(engine.backlog_bytes(), 0.0);
  EXPECT_GT(res1.stats.backlog_packets_after, 0u);
  // Second frame: stale backlog eats into the budget, so fewer fresh
  // packets make it than in frame 1.
  const auto res2 = engine.run_frame(units, full_assignments(units),
                                     {perfect_group({0}, 50.0)}, 1, rng);
  EXPECT_LT(res2.stats.packets_sent, res1.stats.packets_sent);
}

TEST(Engine, ClearBacklogResets) {
  const auto units = make_units(300, 20);
  EngineConfig cfg = fast_config();
  cfg.rate_control = false;
  TxEngine engine(cfg);
  Rng rng(10);
  engine.run_frame(units, full_assignments(units),
                   {perfect_group({0}, 50.0)}, 1, rng);
  ASSERT_GT(engine.backlog_bytes(), 0.0);
  engine.clear_backlog();
  EXPECT_DOUBLE_EQ(engine.backlog_bytes(), 0.0);
}

TEST(Engine, MeasuredRateReflectsWorstMemberLoss) {
  const auto units = make_units(5, 20);
  TxEngine engine(fast_config());
  GroupTx g = perfect_group({0, 1}, 40.0);
  g.member_loss = {0.0, 0.25};
  Rng rng(11);
  const auto res =
      engine.run_frame(units, full_assignments(units), {g}, 2, rng);
  ASSERT_EQ(res.measured_rate.size(), 1u);
  EXPECT_NEAR(res.measured_rate[0].value, 40.0 * 0.75, 40.0 * 0.07);
}

TEST(Engine, ZeroRateGroupDropsItsPackets) {
  const auto units = make_units(3, 20);
  TxEngine engine(fast_config());
  GroupTx dead;
  dead.members = {0};
  dead.member_loss = {0.0};  // drain_rate stays 0
  Rng rng(12);
  const auto res =
      engine.run_frame(units, full_assignments(units), {dead}, 1, rng);
  EXPECT_EQ(res.stats.packets_sent, 0u);
  EXPECT_EQ(res.stats.packets_dropped_queue, 60u);
  for (std::size_t i = 0; i < units.size(); ++i)
    EXPECT_FALSE(res.user_decoded[0][i]);
}

TEST(Engine, UnknownGroupIndexThrows) {
  const auto units = make_units(1, 2);
  TxEngine engine(fast_config());
  std::vector<sched::UnitAssignment> a{{5, 0, 2}};  // group 5 doesn't exist
  Rng rng(13);
  EXPECT_THROW(engine.run_frame(units, a, {perfect_group({0})}, 1, rng),
               std::invalid_argument);
}

TEST(Engine, ResidualDecodeFailureRecoveredByFeedback) {
  // Send exactly k with zero loss over many units: ~1/256 of them hit the
  // rank-deficiency, and the makeup round must fix every one.
  const auto units = make_units(300, 20);
  EngineConfig cfg = fast_config();
  TxEngine engine(cfg);
  Rng rng(14);
  const auto res = engine.run_frame(units, full_assignments(units),
                                    {perfect_group({0}, 10000.0)}, 1, rng);
  for (std::size_t i = 0; i < units.size(); ++i)
    EXPECT_TRUE(res.user_decoded[0][i]) << i;
}

TEST(Engine, StatsAreInternallyConsistent) {
  const auto units = make_units(20, 20);
  TxEngine engine(fast_config());
  GroupTx g = perfect_group({0}, 30.0);
  g.member_loss = {0.05};
  Rng rng(15);
  const auto res =
      engine.run_frame(units, full_assignments(units), {g}, 1, rng);
  EXPECT_GE(res.stats.packets_offered,
            res.stats.packets_sent + res.stats.packets_dropped_queue);
  EXPECT_GT(res.stats.airtime, 0.0);
  EXPECT_LE(res.stats.airtime, kFrameBudget + 1e-9);
}

}  // namespace
}  // namespace w4k::emu

#include "core/frame_context.h"

#include "quality/metrics.h"

#include <gtest/gtest.h>

namespace w4k::core {
namespace {

video::SyntheticVideo small_clip(int frames = 4) {
  video::VideoSpec spec;
  spec.width = 256;
  spec.height = 144;
  spec.frames = frames;
  spec.richness = video::Richness::kHigh;
  spec.seed = 3;
  return video::SyntheticVideo(spec);
}

TEST(RateScale, FourKIsUnity) {
  EXPECT_DOUBLE_EQ(rate_scale_for(4096, 2160), 1.0);
}

TEST(RateScale, ScalesWithPixels) {
  EXPECT_NEAR(rate_scale_for(2048, 1080), 0.25, 1e-12);
  EXPECT_NEAR(rate_scale_for(512, 288), 512.0 * 288 / (4096.0 * 2160), 1e-15);
}

TEST(ScaledSymbolSize, MatchesPaperAt4K) {
  EXPECT_EQ(scaled_symbol_size(4096, 2160), 6000u);
}

TEST(ScaledSymbolSize, ProportionalWithFloor) {
  EXPECT_EQ(scaled_symbol_size(512, 288), 100u);
  EXPECT_GE(scaled_symbol_size(16, 16), 40u);  // floor kicks in
}

TEST(FrameContext, LayerBytesAreSymbolPadded) {
  const auto clip = small_clip();
  const FrameContext ctx = make_frame_context(clip.frame(0), nullptr, 100);
  for (int l = 0; l < video::kNumLayers; ++l) {
    const auto ls = static_cast<std::size_t>(l);
    const double raw =
        static_cast<double>(video::layer_bytes(l, 256, 144));
    EXPECT_GE(ctx.content.layer_bytes[ls], raw);
    EXPECT_LE(ctx.content.layer_bytes[ls], raw + 100.0 * 8);
    // And they must be exactly the sum over the layer's units.
    double unit_sum = 0.0;
    for (const auto& u : ctx.units)
      if (u.id.layer == l) unit_sum += static_cast<double>(u.k_symbols) * 100;
    EXPECT_DOUBLE_EQ(ctx.content.layer_bytes[ls], unit_sum);
  }
}

TEST(FrameContext, ContentFeaturesMonotone) {
  const auto clip = small_clip();
  const FrameContext ctx = make_frame_context(clip.frame(0), nullptr, 100);
  EXPECT_LT(ctx.content.blank_ssim, ctx.content.up_to_layer_ssim[0]);
  for (int l = 1; l < video::kNumLayers; ++l)
    EXPECT_GE(ctx.content.up_to_layer_ssim[static_cast<std::size_t>(l)],
              ctx.content.up_to_layer_ssim[static_cast<std::size_t>(l - 1)]);
}

TEST(FrameContext, PrevFrameSsimComputed) {
  const auto clip = small_clip();
  const video::Frame f0 = clip.frame(0);
  const video::Frame f1 = clip.frame(1);
  const FrameContext ctx = make_frame_context(f1, &f0, 100);
  EXPECT_NEAR(ctx.prev_frame_ssim, quality::ssim(f1, f0), 1e-12);
  EXPECT_LT(ctx.prev_frame_ssim, 1.0);
  const FrameContext first = make_frame_context(f0, nullptr, 100);
  EXPECT_DOUBLE_EQ(first.prev_frame_ssim, 1.0);
}

TEST(MakeContexts, CountAndChaining) {
  const auto clip = small_clip(5);
  const auto ctxs = make_contexts(clip, 3, 100);
  ASSERT_EQ(ctxs.size(), 3u);
  EXPECT_DOUBLE_EQ(ctxs[0].prev_frame_ssim, 1.0);
  EXPECT_LT(ctxs[1].prev_frame_ssim, 1.0);
  EXPECT_LT(ctxs[2].prev_frame_ssim, 1.0);
}

TEST(ReconstructFromUnits, AllUnitsGivesNearLossless) {
  const auto clip = small_clip();
  const video::Frame original = clip.frame(0);
  const FrameContext ctx = make_frame_context(original, nullptr, 100);
  const std::vector<bool> all(ctx.units.size(), true);
  const video::Frame rec = reconstruct_from_units(ctx, all);
  EXPECT_GT(quality::ssim(original, rec), 0.999);
}

TEST(ReconstructFromUnits, NoUnitsGivesBlank) {
  const auto clip = small_clip();
  const video::Frame original = clip.frame(0);
  const FrameContext ctx = make_frame_context(original, nullptr, 100);
  const std::vector<bool> none(ctx.units.size(), false);
  const video::Frame rec = reconstruct_from_units(ctx, none);
  EXPECT_NEAR(quality::ssim(original, rec), ctx.content.blank_ssim, 1e-12);
}

TEST(ReconstructFromUnits, QualityMonotoneInPrefixLength) {
  const auto clip = small_clip();
  const video::Frame original = clip.frame(0);
  const FrameContext ctx = make_frame_context(original, nullptr, 100);
  double prev = -1.0;
  for (double frac : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    std::vector<bool> decoded(ctx.units.size(), false);
    for (std::size_t i = 0; i < ctx.units.size() * frac; ++i)
      decoded[i] = true;
    const double s = quality::ssim(original, reconstruct_from_units(ctx, decoded));
    EXPECT_GE(s, prev - 1e-9) << frac;
    prev = s;
  }
}

TEST(ReconstructFromUnits, ShortDecodedVectorTolerated) {
  const auto clip = small_clip();
  const FrameContext ctx = make_frame_context(clip.frame(0), nullptr, 100);
  const std::vector<bool> short_vec(3, true);
  EXPECT_NO_THROW(reconstruct_from_units(ctx, short_vec));
}

}  // namespace
}  // namespace w4k::core

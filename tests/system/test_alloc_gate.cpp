// The zero-allocation frame-path gate (DESIGN.md Sec. 4g).
//
// Under `cmake -DW4K_COUNT_ALLOCS=ON` the global operator new/delete are
// counted (all threads, including ThreadPool workers). These tests pin the
// tentpole contract: after a 3-frame warmup has sized every workspace and
// arena page, MulticastSession::step_into performs ZERO heap allocations
// per frame — on the pinned static 4-user placement and on a mobility
// trace whose channels churn every beacon. In a normal build the counters
// are inert, so the gate skips instead of reporting a vacuous pass.
#include "common/alloc_count.h"

#include "channel/mobility.h"
#include "core/pretrained.h"
#include "core/runner.h"

#include <gtest/gtest.h>

#include <vector>

namespace w4k::core {
namespace {

constexpr int kW = 256;
constexpr int kH = 144;
constexpr int kWarmupFrames = 3;

class AllocGateTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    quality_ = new model::QualityModel(42);
    PretrainedOptions opts;
    opts.cache_path = "session_test_model.cache";
    ensure_trained(*quality_, opts);

    video::VideoSpec spec;
    spec.width = kW;
    spec.height = kH;
    spec.frames = 4;
    spec.richness = video::Richness::kHigh;
    spec.seed = 11;
    contexts_ = new std::vector<FrameContext>(make_contexts(
        video::SyntheticVideo(spec), 3, scaled_symbol_size(kW, kH)));
  }
  static void TearDownTestSuite() {
    delete quality_;
    delete contexts_;
    quality_ = nullptr;
    contexts_ = nullptr;
  }

  static model::QualityModel* quality_;
  static std::vector<FrameContext>* contexts_;
};

model::QualityModel* AllocGateTest::quality_ = nullptr;
std::vector<FrameContext>* AllocGateTest::contexts_ = nullptr;

// Sanity check of the instrument itself: a deliberate heap allocation
// inside a Scope must trip the counter. Without this, a broken counter
// (say, an operator-new override that never got linked) would make every
// zero-allocation assertion below pass vacuously.
TEST(AllocCount, GateTripsOnDeliberateAllocation) {
  if (!alloc_count::counting_available())
    GTEST_SKIP() << "W4K_COUNT_ALLOCS is off in this build";
  const alloc_count::Scope scope;
  auto* p = new std::vector<double>(1024, 0.5);
  EXPECT_GT(scope.taken(), 0u) << "operator-new override not counting";
  const std::uint64_t before_delete = alloc_count::deallocations();
  delete p;
  EXPECT_GT(alloc_count::deallocations(), before_delete);
}

// Static 4-user scenario: pinned placement (the Fig. 4a testbed geometry),
// fresh CSI every frame. After warmup, every step must be allocation-free.
TEST_F(AllocGateTest, StaticFourUsersZeroAllocsPerFrameAfterWarmup) {
  if (!alloc_count::counting_available())
    GTEST_SKIP() << "W4K_COUNT_ALLOCS is off in this build";

  Rng rng(5);
  channel::PropagationConfig prop;
  const auto channels =
      channels_for(prop, place_users_fixed(4, 3.0, 1.047, rng));
  MulticastSession session(SessionConfig::scaled(kW, kH), *quality_,
                           beamforming::Codebook{});
  const fault::FrameFaults no_faults;
  FrameOutcome outcome;
  for (int f = 0; f < 12; ++f) {
    const FrameContext& ctx =
        (*contexts_)[static_cast<std::size_t>(f) % contexts_->size()];
    const alloc_count::Scope scope;
    session.step_into(channels, channels, ctx, no_faults, outcome);
    if (f >= kWarmupFrames) {
      EXPECT_EQ(scope.taken(), 0u)
          << "frame " << f << " of the static4 scenario hit the heap";
    }
  }
}

// Mobility scenario: two walkers, CSI changing every beacon — the decide()
// path re-enumerates groups and re-optimizes each frame, and the engine
// sees different loss patterns. Still zero heap traffic after warmup.
TEST_F(AllocGateTest, MobileTraceZeroAllocsPerFrameAfterWarmup) {
  if (!alloc_count::counting_available())
    GTEST_SKIP() << "W4K_COUNT_ALLOCS is off in this build";

  channel::MovingReceiverConfig mc;
  mc.n_users = 2;
  mc.duration = 0.5;  // 5 beacons -> 15 frames at 3 frames/beacon
  mc.seed = 9;
  const channel::CsiTrace trace = channel::moving_receiver_trace(mc);
  ASSERT_GT(trace.steps(), 1u);

  MulticastSession session(SessionConfig::scaled(kW, kH), *quality_,
                           beamforming::Codebook{});
  const fault::FrameFaults no_faults;
  FrameOutcome outcome;
  int frame = 0;
  for (std::size_t t = 0; t < trace.steps(); ++t) {
    // One-beacon CSI staleness, exactly like run_trace.
    const auto& truth = trace.snapshots[t];
    const auto& decision = trace.snapshots[t > 0 ? t - 1 : 0];
    for (int k = 0; k < 3; ++k, ++frame) {
      const FrameContext& ctx =
          (*contexts_)[static_cast<std::size_t>(frame) % contexts_->size()];
      const alloc_count::Scope scope;
      session.step_into(decision, truth, ctx, no_faults, outcome);
      if (frame >= kWarmupFrames) {
        EXPECT_EQ(scope.taken(), 0u)
            << "frame " << frame << " of the mobile scenario hit the heap";
      }
    }
  }
}

}  // namespace
}  // namespace w4k::core

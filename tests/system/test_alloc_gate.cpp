// The zero-allocation frame-path gate (DESIGN.md Sec. 4g).
//
// Under `cmake -DW4K_COUNT_ALLOCS=ON` the global operator new/delete are
// counted (all threads, including ThreadPool workers). These tests pin the
// tentpole contract: after a 3-frame warmup has sized every workspace and
// arena page, MulticastSession::step_into performs ZERO heap allocations
// per frame — on the pinned static 4-user placement and on a mobility
// trace whose channels churn every beacon. In a normal build the counters
// are inert, so the gate skips instead of reporting a vacuous pass.
#include "common/alloc_count.h"

#include "channel/mobility.h"
#include "channel/multi_ap.h"
#include "core/pretrained.h"
#include "core/runner.h"
#include "fault/injector.h"
#include "fault/plan.h"

#include <gtest/gtest.h>

#include <vector>

namespace w4k::core {
namespace {

constexpr int kW = 256;
constexpr int kH = 144;
constexpr int kWarmupFrames = 3;

class AllocGateTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    quality_ = new model::QualityModel(42);
    PretrainedOptions opts;
    opts.cache_path = "session_test_model.cache";
    ensure_trained(*quality_, opts);

    video::VideoSpec spec;
    spec.width = kW;
    spec.height = kH;
    spec.frames = 4;
    spec.richness = video::Richness::kHigh;
    spec.seed = 11;
    contexts_ = new std::vector<FrameContext>(make_contexts(
        video::SyntheticVideo(spec), 3, scaled_symbol_size(kW, kH)));
  }
  static void TearDownTestSuite() {
    delete quality_;
    delete contexts_;
    quality_ = nullptr;
    contexts_ = nullptr;
  }

  static model::QualityModel* quality_;
  static std::vector<FrameContext>* contexts_;
};

model::QualityModel* AllocGateTest::quality_ = nullptr;
std::vector<FrameContext>* AllocGateTest::contexts_ = nullptr;

// Sanity check of the instrument itself: a deliberate heap allocation
// inside a Scope must trip the counter. Without this, a broken counter
// (say, an operator-new override that never got linked) would make every
// zero-allocation assertion below pass vacuously.
TEST(AllocCount, GateTripsOnDeliberateAllocation) {
  if (!alloc_count::counting_available())
    GTEST_SKIP() << "W4K_COUNT_ALLOCS is off in this build";
  const alloc_count::Scope scope;
  auto* p = new std::vector<double>(1024, 0.5);
  EXPECT_GT(scope.taken(), 0u) << "operator-new override not counting";
  const std::uint64_t before_delete = alloc_count::deallocations();
  delete p;
  EXPECT_GT(alloc_count::deallocations(), before_delete);
}

// Static 4-user scenario: pinned placement (the Fig. 4a testbed geometry),
// fresh CSI every frame. After warmup, every step must be allocation-free.
TEST_F(AllocGateTest, StaticFourUsersZeroAllocsPerFrameAfterWarmup) {
  if (!alloc_count::counting_available())
    GTEST_SKIP() << "W4K_COUNT_ALLOCS is off in this build";

  Rng rng(5);
  channel::PropagationConfig prop;
  const auto channels =
      channels_for(prop, place_users_fixed(4, 3.0, 1.047, rng));
  MulticastSession session(SessionConfig::scaled(kW, kH), *quality_,
                           beamforming::Codebook{});
  const fault::FrameFaults no_faults;
  FrameOutcome outcome;
  for (int f = 0; f < 12; ++f) {
    const FrameContext& ctx =
        (*contexts_)[static_cast<std::size_t>(f) % contexts_->size()];
    const alloc_count::Scope scope;
    session.step_into(channels, channels, ctx, no_faults, outcome);
    if (f >= kWarmupFrames) {
      EXPECT_EQ(scope.taken(), 0u)
          << "frame " << f << " of the static4 scenario hit the heap";
    }
  }
}

// Mobility scenario: two walkers, CSI changing every beacon — the decide()
// path re-enumerates groups and re-optimizes each frame, and the engine
// sees different loss patterns. Still zero heap traffic after warmup.
TEST_F(AllocGateTest, MobileTraceZeroAllocsPerFrameAfterWarmup) {
  if (!alloc_count::counting_available())
    GTEST_SKIP() << "W4K_COUNT_ALLOCS is off in this build";

  channel::MovingReceiverConfig mc;
  mc.n_users = 2;
  mc.duration = 0.5;  // 5 beacons -> 15 frames at 3 frames/beacon
  mc.seed = 9;
  const channel::CsiTrace trace = channel::moving_receiver_trace(mc);
  ASSERT_GT(trace.steps(), 1u);

  MulticastSession session(SessionConfig::scaled(kW, kH), *quality_,
                           beamforming::Codebook{});
  const fault::FrameFaults no_faults;
  FrameOutcome outcome;
  int frame = 0;
  for (std::size_t t = 0; t < trace.steps(); ++t) {
    // One-beacon CSI staleness, exactly like run_trace.
    const auto& truth = trace.snapshots[t];
    const auto& decision = trace.snapshots[t > 0 ? t - 1 : 0];
    for (int k = 0; k < 3; ++k, ++frame) {
      const FrameContext& ctx =
          (*contexts_)[static_cast<std::size_t>(frame) % contexts_->size()];
      const alloc_count::Scope scope;
      session.step_into(decision, truth, ctx, no_faults, outcome);
      if (frame >= kWarmupFrames) {
        EXPECT_EQ(scope.taken(), 0u)
            << "frame " << frame << " of the mobile scenario hit the heap";
      }
    }
  }
}

// Multi-AP + relay scenario: 2-AP stacks through step_multi_into, with a
// fault plan that lights up every new subsystem inside the warmup window
// and the measured window — a persistent unseen blockage quarantines user
// 3 (peer relay starts forwarding base-layer symbols by frame ~4), then a
// total AP-0 outage walks every user through the attachment ladder to a
// committed handoff mid-measurement. The attachment vectors, the per-AP
// RSS table, the effective-channel views, the relay link list, and the
// engine's relay ledger are all sized during warmup; after that, frames
// with active relaying AND an in-flight handoff must still be
// allocation-free.
TEST_F(AllocGateTest, MultiApRelayZeroAllocsPerFrameAfterWarmup) {
  if (!alloc_count::counting_available())
    GTEST_SKIP() << "W4K_COUNT_ALLOCS is off in this build";

  constexpr std::size_t kUsers = 4;
  constexpr int kFrames = 20;
  // Warmup covers the first relay-active frames (quarantine engages at
  // frame ~3), which size the relay ledger; the handoff beginning at
  // frame ~10 must then stay heap-free.
  constexpr int kMultiWarmup = 6;

  Rng rng(5);
  channel::PropagationConfig prop;
  channel::MultiApGeometry geo;
  geo.prop = prop;
  geo.aps = channel::default_ap_layout(2, prop.room);
  const auto users = place_users_fixed(kUsers, 3.0, 1.047, rng);
  const auto stacks = channel::ap_channel_stacks(geo, users);
  const auto azimuths = channel::ap_user_azimuths(geo, users);

  fault::FaultPlan plan;
  fault::BlockageBurst burst;
  burst.start_frame = 1;
  burst.n_frames = kFrames;
  burst.user = 3;
  burst.extra_loss_db = 35.0;
  plan.blockage.push_back(burst);
  for (std::uint32_t f = 1; f <= 8; ++f)
    plan.csi.push_back({f, /*corrupt=*/false});
  fault::ApOutage outage;
  outage.start_frame = 9;
  outage.n_frames = 8;
  outage.ap = 0;
  outage.total = true;
  plan.ap_outage.push_back(outage);
  const fault::FaultInjector injector(plan, kUsers, 2);

  SessionConfig cfg = SessionConfig::scaled(kW, kH);
  cfg.handoff.n_aps = 2;
  cfg.handoff.enabled = true;
  cfg.handoff.min_dwell_frames = 4;
  cfg.relay.enabled = true;
  cfg.quarantine_after = 2;
  cfg.quarantine_reprobe_period = 4;
  MulticastSession session(cfg, *quality_, beamforming::Codebook{});

  FrameOutcome outcome;
  std::vector<std::vector<linalg::CVector>> decision;
  std::vector<std::vector<linalg::CVector>> truth;
  std::size_t relay_frames = 0;
  std::size_t handoffs = 0;
  for (int f = 0; f < kFrames; ++f) {
    const FrameContext& ctx =
        (*contexts_)[static_cast<std::size_t>(f) % contexts_->size()];
    // The driver's per-frame work (fault resolution, stack copies) is
    // outside the gate: the contract covers the session step itself.
    const auto frame_id = static_cast<std::uint32_t>(f);
    const fault::FrameFaults faults = injector.at(frame_id);
    decision = stacks;
    truth = stacks;
    injector.apply_aps(frame_id, decision, truth, azimuths);
    const alloc_count::Scope scope;
    session.step_multi_into(decision, truth, ctx, faults, outcome);
    if (f >= kMultiWarmup) {
      EXPECT_EQ(scope.taken(), 0u)
          << "frame " << f << " of the multi-AP relay scenario hit the heap";
    }
    if (outcome.relayed_symbols > 0) ++relay_frames;
    handoffs += outcome.handoffs;
  }
  // The gate is only meaningful if the scenario actually exercised both
  // new paths.
  EXPECT_GT(relay_frames, 0u) << "relay never engaged; gate is vacuous";
  EXPECT_GT(handoffs, 0u) << "no handoff committed; gate is vacuous";
}

}  // namespace
}  // namespace w4k::core

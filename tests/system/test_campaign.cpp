// Unit tests for the campaign engine's pieces: the Mann-Whitney U gate
// statistics (known values, ties, degenerate inputs), the shard JSONL
// round-trip (including torn final lines from crashed workers), the merged
// summary round-trip, the gate verdict logic, and metric extraction. The
// end-to-end sharded run (worker fan-out, crash isolation, byte-stable
// merge, regression self-detection) is covered by `w4k_campaign selftest`,
// which ctest runs under the `campaign` label.
#include "campaign/shard.h"
#include "campaign/stats_gate.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

namespace w4k::campaign {
namespace {

// --- Mann-Whitney U ----------------------------------------------------

TEST(MannWhitney, KnownSeparatedSamples) {
  const std::vector<double> a = {1, 2, 3, 4, 5};
  const std::vector<double> b = {6, 7, 8, 9, 10};
  const MwuResult r = mann_whitney_u(a, b);
  EXPECT_DOUBLE_EQ(r.u, 0.0);  // no a-value exceeds any b-value
  // Hand-computed normal approximation with continuity correction:
  // z = (0 - 12.5 + 0.5) / sqrt(5*5*11/12), p = erfc(|z|/sqrt(2)).
  EXPECT_NEAR(r.z, -2.5068, 1e-3);
  EXPECT_NEAR(r.p, 0.0122, 5e-4);
}

TEST(MannWhitney, SymmetricAndComplementary) {
  const std::vector<double> a = {1.0, 3.0, 5.0, 7.0};
  const std::vector<double> b = {2.0, 4.0, 6.0};
  const MwuResult ab = mann_whitney_u(a, b);
  const MwuResult ba = mann_whitney_u(b, a);
  // U_a + U_b = n1 * n2, and the two-sided p does not depend on order.
  EXPECT_DOUBLE_EQ(ab.u + ba.u, 12.0);
  EXPECT_DOUBLE_EQ(ab.p, ba.p);
  EXPECT_DOUBLE_EQ(ab.z, -ba.z);
}

TEST(MannWhitney, DegenerateInputsYieldPOne) {
  const std::vector<double> some = {1.0, 2.0};
  EXPECT_DOUBLE_EQ(mann_whitney_u({}, some).p, 1.0);
  EXPECT_DOUBLE_EQ(mann_whitney_u(some, {}).p, 1.0);
  // All pooled values identical: tie-corrected variance collapses to 0.
  const std::vector<double> flat = {0.5, 0.5, 0.5};
  EXPECT_DOUBLE_EQ(mann_whitney_u(flat, flat).p, 1.0);
}

TEST(MannWhitney, HeavyTiesStayFiniteAndCentered) {
  // Campaign metrics are exactly like this: mostly one value, a few
  // outliers. Identical distributions must not look significant.
  std::vector<double> a(50, 1.0), b(50, 1.0);
  a[0] = 0.9;
  b[0] = 0.9;
  const MwuResult r = mann_whitney_u(a, b);
  EXPECT_TRUE(std::isfinite(r.z));
  EXPECT_GT(r.p, 0.5);
}

TEST(MannWhitney, LargeShiftClearsCampaignAlpha) {
  // A consistent shift across a few hundred cells must land far below the
  // gate's alpha = 1e-4.
  std::vector<double> a, b;
  for (int i = 0; i < 200; ++i) {
    a.push_back(0.90 + 1e-4 * i);
    b.push_back(0.85 + 1e-4 * i);
  }
  EXPECT_LT(mann_whitney_u(a, b).p, 1e-6);
}

// --- Bootstrap CI ------------------------------------------------------

TEST(Bootstrap, DeterministicAndCoversKnownDelta) {
  std::vector<double> a, b;
  for (int i = 0; i < 100; ++i) {
    b.push_back(0.5 + 1e-3 * i);
    a.push_back(0.5 + 1e-3 * i + 0.25);  // median delta is exactly +0.25
  }
  const BootstrapCi ci = bootstrap_median_delta_ci(a, b);
  EXPECT_LE(ci.lo, 0.25);
  EXPECT_GE(ci.hi, 0.25);
  EXPECT_LT(ci.hi - ci.lo, 0.1);  // tight for a clean constant shift
  const BootstrapCi again = bootstrap_median_delta_ci(a, b);
  EXPECT_DOUBLE_EQ(ci.lo, again.lo);  // seeded: bitwise repeatable
  EXPECT_DOUBLE_EQ(ci.hi, again.hi);
}

// --- Shard rows --------------------------------------------------------

CellRow ok_row(std::uint64_t cell) {
  CellRow row;
  row.cell = cell;
  row.kind = CellKind::kMobile;
  row.status = CellRow::Status::kOk;
  for (std::size_t i = 0; i < kNumMetrics; ++i)
    row.metrics.v[i] = 0.1 * static_cast<double>(i + cell) + 1.0 / 3.0;
  row.wall_ms = 12.5;
  return row;
}

TEST(ShardRow, OkRowRoundTrips) {
  const CellRow row = ok_row(7);
  CellRow parsed;
  std::string err;
  ASSERT_TRUE(parse_row(to_jsonl(row), &parsed, &err)) << err;
  EXPECT_EQ(parsed.cell, 7u);
  EXPECT_EQ(parsed.kind, CellKind::kMobile);
  EXPECT_EQ(parsed.status, CellRow::Status::kOk);
  for (std::size_t i = 0; i < kNumMetrics; ++i)
    EXPECT_DOUBLE_EQ(parsed.metrics.v[i], row.metrics.v[i]) << i;
  EXPECT_DOUBLE_EQ(parsed.wall_ms, 12.5);
  EXPECT_TRUE(parsed.error.empty());
}

TEST(ShardRow, FailedRowEscapesErrorText) {
  CellRow row;
  row.cell = 3;
  row.kind = CellKind::kStatic;
  row.status = CellRow::Status::kFailed;
  row.error = "bad \"quote\"\nand \\backslash\ttab";
  CellRow parsed;
  std::string err;
  ASSERT_TRUE(parse_row(to_jsonl(row), &parsed, &err)) << err;
  EXPECT_EQ(parsed.status, CellRow::Status::kFailed);
  EXPECT_EQ(parsed.error, row.error);
}

TEST(ShardRow, TornLineRejectedWithMessage) {
  const std::string whole = to_jsonl(ok_row(1));
  CellRow parsed;
  std::string err;
  EXPECT_FALSE(parse_row(whole.substr(0, whole.size() / 2), &parsed, &err));
  EXPECT_FALSE(err.empty());
  EXPECT_FALSE(parse_row("", &parsed, &err));
}

TEST(ReadShard, SkipsTornFinalLineAndMissingFile) {
  const std::string path = testing::TempDir() + "w4k_shard_test.jsonl";
  {
    std::ofstream os(path);
    os << to_jsonl(ok_row(0)) << '\n' << to_jsonl(ok_row(1)) << '\n';
    // A worker killed mid-write leaves a torn tail; merge must skip it.
    os << to_jsonl(ok_row(2)).substr(0, 20);
  }
  const std::vector<CellRow> rows = read_shard(path);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].cell, 0u);
  EXPECT_EQ(rows[1].cell, 1u);
  std::remove(path.c_str());
  EXPECT_TRUE(read_shard(path).empty());  // missing file = empty, no throw
}

// --- Merged summary ----------------------------------------------------

TEST(Summary, SummarizeSortsAndCountsStatuses) {
  std::vector<CellRow> rows = {ok_row(2), ok_row(0), ok_row(1)};
  rows.push_back(CellRow{});  // default row: status ok, metrics all zero
  rows.back().cell = 3;
  rows.back().status = CellRow::Status::kFailed;
  rows.push_back(CellRow{});
  rows.back().cell = 4;
  rows.back().status = CellRow::Status::kCrashed;

  const CampaignSummary s = summarize_rows(99, 5, rows);
  EXPECT_EQ(s.campaign_seed, 99u);
  EXPECT_EQ(s.cells, 5u);
  EXPECT_EQ(s.ok, 3u);
  EXPECT_EQ(s.failed, 2u);
  for (std::size_t m = 0; m < kNumMetrics; ++m) {
    ASSERT_EQ(s.metrics[m].size(), 3u);  // failed cells contribute nothing
    EXPECT_TRUE(std::is_sorted(s.metrics[m].begin(), s.metrics[m].end()));
  }
}

TEST(Summary, FileRoundTripIsExact) {
  const CampaignSummary s =
      summarize_rows(7, 3, {ok_row(0), ok_row(1), ok_row(2)});
  const std::string path = testing::TempDir() + "w4k_summary_test.json";
  write_summary_file(path, s);
  const CampaignSummary loaded = load_summary(path);
  EXPECT_EQ(loaded.campaign_seed, s.campaign_seed);
  EXPECT_EQ(loaded.cells, s.cells);
  EXPECT_EQ(loaded.ok, s.ok);
  EXPECT_EQ(loaded.failed, s.failed);
  for (std::size_t m = 0; m < kNumMetrics; ++m) {
    ASSERT_EQ(loaded.metrics[m].size(), s.metrics[m].size()) << m;
    for (std::size_t i = 0; i < s.metrics[m].size(); ++i)
      EXPECT_DOUBLE_EQ(loaded.metrics[m][i], s.metrics[m][i]);
  }
  // And the canonical writer is stable: re-writing the loaded summary
  // produces byte-identical JSON.
  const std::string path2 = testing::TempDir() + "w4k_summary_test2.json";
  write_summary_file(path2, loaded);
  std::ifstream f1(path), f2(path2);
  const std::string b1((std::istreambuf_iterator<char>(f1)),
                       std::istreambuf_iterator<char>());
  const std::string b2((std::istreambuf_iterator<char>(f2)),
                       std::istreambuf_iterator<char>());
  EXPECT_EQ(b1, b2);
  std::remove(path.c_str());
  std::remove(path2.c_str());
}

TEST(Summary, LoadRejectsGarbage) {
  const std::string path = testing::TempDir() + "w4k_summary_bad.json";
  {
    std::ofstream os(path);
    os << "{\"not\": \"a summary\"}";
  }
  EXPECT_THROW(load_summary(path), std::runtime_error);
  std::remove(path.c_str());
  EXPECT_THROW(load_summary(path), std::runtime_error);  // missing file
}

// --- Gate verdicts -----------------------------------------------------

CampaignSummary synthetic_summary(double shift, std::uint64_t failed = 0) {
  CampaignSummary s;
  s.campaign_seed = 1;
  s.cells = 200 + failed;
  s.ok = 200;
  s.failed = failed;
  for (std::size_t m = 0; m < kNumMetrics; ++m)
    for (int i = 0; i < 200; ++i)
      s.metrics[m].push_back(0.5 + 1e-3 * i + (m == 4 ? shift : 0.0));
  return s;
}

TEST(Gate, IdenticalDistributionsPass) {
  const GateReport r = compare(synthetic_summary(0.0), synthetic_summary(0.0));
  EXPECT_TRUE(r.pass);
  EXPECT_TRUE(r.structural_failure.empty());
  ASSERT_EQ(r.metrics.size(), kNumMetrics);
  for (const MetricVerdict& v : r.metrics) {
    EXPECT_FALSE(v.flagged) << v.name;
    EXPECT_DOUBLE_EQ(v.p, 1.0) << v.name;
  }
}

TEST(Gate, FlagsOnlyTheShiftedMetric) {
  const GateReport r =
      compare(synthetic_summary(-0.05), synthetic_summary(0.0));
  EXPECT_FALSE(r.pass);
  for (const MetricVerdict& v : r.metrics) {
    if (v.name == "base_delivery") {
      EXPECT_TRUE(v.flagged);
      EXPECT_LT(v.p, 1e-4);
      // The reported CI brackets the true -0.05 median delta.
      EXPECT_LE(v.delta_ci.lo, -0.05 + 1e-9);
      EXPECT_GE(v.delta_ci.hi, -0.05 - 1e-2);
    } else {
      EXPECT_FALSE(v.flagged) << v.name;
    }
  }
}

TEST(Gate, SignificantButTinyShiftDoesNotFlag) {
  // A perfectly consistent ripple below min_effect must not fail a run:
  // this is what separates the statistical gate from a bytewise diff.
  // Near-flat distributions make a 5e-5 shift statistically unmissable
  // (every current value beats every baseline value) yet practically nil.
  CampaignSummary baseline, current;
  baseline.campaign_seed = current.campaign_seed = 1;
  baseline.cells = current.cells = 200;
  baseline.ok = current.ok = 200;
  for (std::size_t m = 0; m < kNumMetrics; ++m)
    for (int i = 0; i < 200; ++i) {
      baseline.metrics[m].push_back(0.5 + 1e-9 * i);
      current.metrics[m].push_back(0.5 + 1e-9 * i + 5e-5);
    }
  const GateReport r = compare(current, baseline);
  EXPECT_TRUE(r.pass);
  for (const MetricVerdict& v : r.metrics) {
    EXPECT_LT(v.p, 1e-4) << v.name;   // the shift is real and detected...
    EXPECT_FALSE(v.flagged) << v.name;  // ...but below the effect floor
  }
}

TEST(Gate, StructuralFailureOnNewCellFailures) {
  const GateReport r =
      compare(synthetic_summary(0.0, /*failed=*/2), synthetic_summary(0.0));
  EXPECT_FALSE(r.pass);
  EXPECT_FALSE(r.structural_failure.empty());
}

// --- Metric extraction -------------------------------------------------

core::FrameOutcome outcome(std::vector<double> ssim, std::vector<double> psnr,
                           std::vector<double> decoded) {
  core::FrameOutcome f;
  f.ssim = std::move(ssim);
  f.psnr = std::move(psnr);
  f.decoded_fraction = std::move(decoded);
  return f;
}

TEST(Metrics, ExtractsBaseDeliveryFromDecodedFractions) {
  core::SessionReport report;
  report.add(outcome({0.9, 0.8}, {40.0, 35.0}, {1.0, 0.0}));
  report.add(outcome({0.7, 0.6}, {30.0, 25.0}, {0.5, 0.25}));
  const CellMetrics m = metrics_from_report(report);
  EXPECT_DOUBLE_EQ(m.ssim_mean(), (0.9 + 0.8 + 0.7 + 0.6) / 4.0);
  EXPECT_DOUBLE_EQ(m.delivery_mean(), (1.0 + 0.0 + 0.5 + 0.25) / 4.0);
  EXPECT_DOUBLE_EQ(m.base_delivery(), 3.0 / 4.0);  // one sample decoded 0
  EXPECT_DOUBLE_EQ(m.bad_frame_fraction(), 1.0);   // all below 0.9 default
}

TEST(Metrics, NaNSamplesAreRejectedUpstream) {
  // metrics_from_report's non-finite guard is defense in depth: the
  // invariant checker inside SessionReport::add already refuses NaN
  // samples, which is why campaign metrics can trust report aggregates.
  core::SessionReport report;
  EXPECT_ANY_THROW(
      report.add(outcome({std::nan(""), 0.8}, {40.0, 35.0}, {1.0, 1.0})));
}

TEST(Metrics, EmptyReportYieldsFiniteZeros) {
  // A zero-frame report (a cell whose session produced nothing) must
  // still produce a finite metric vector, not NaN means.
  const CellMetrics m = metrics_from_report(core::SessionReport{});
  for (std::size_t i = 0; i < kNumMetrics; ++i) {
    EXPECT_TRUE(std::isfinite(m.v[i])) << kMetricNames[i];
    EXPECT_DOUBLE_EQ(m.v[i], 0.0) << kMetricNames[i];
  }
}

}  // namespace
}  // namespace w4k::campaign

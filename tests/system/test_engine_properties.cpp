// Property-style tests of the transmission engine: invariants that must
// hold for ANY configuration, checked over a parameterized sweep of
// loss rates, rates, feedback settings, and coding modes.
#include "emu/engine.h"

#include <gtest/gtest.h>

#include <tuple>

namespace w4k::emu {
namespace {

struct EngineCase {
  double loss;
  double mbps;
  int feedback_rounds;
  bool source_coding;
  bool rate_control;
};

std::vector<sched::UnitSpec> make_units(std::size_t n, std::size_t k) {
  std::vector<sched::UnitSpec> units;
  for (std::size_t i = 0; i < n; ++i) {
    sched::UnitSpec u;
    u.id.layer = static_cast<std::uint16_t>(i * video::kNumLayers / n);
    u.id.sublayer = static_cast<std::uint16_t>(i);
    u.source_bytes = k * 100;
    u.k_symbols = k;
    units.push_back(u);
  }
  return units;
}

class EngineProperty : public ::testing::TestWithParam<EngineCase> {};

TEST_P(EngineProperty, InvariantsHold) {
  const EngineCase c = GetParam();
  const auto units = make_units(20, 10);
  std::vector<sched::UnitAssignment> assignments;
  for (std::size_t i = 0; i < units.size(); ++i)
    assignments.push_back({0, i, units[i].k_symbols});

  EngineConfig cfg;
  cfg.symbol_size = 100;
  cfg.header_bytes = 0;
  cfg.feedback_rounds = c.feedback_rounds;
  cfg.source_coding = c.source_coding;
  cfg.rate_control = c.rate_control;
  cfg.queue_capacity_bytes = 50'000;
  TxEngine engine(cfg);

  GroupTx g;
  g.members = {0, 1, 2};
  g.mcs = *channel::mcs_by_index(8);
  g.drain_rate = Mbps{c.mbps};
  g.bucket_rate = Mbps{c.mbps};
  g.member_loss = {c.loss, c.loss / 2.0, c.loss * 1.5};

  Rng rng(1234);
  const FrameTxResult res =
      engine.run_frame(units, assignments, {g}, 3, rng);

  // Conservation: every offered packet is sent, queued into backlog, or
  // dropped; never duplicated or lost silently.
  EXPECT_GE(res.stats.packets_offered,
            res.stats.packets_sent + res.stats.packets_dropped_queue);
  // Airtime can never exceed the frame budget.
  EXPECT_LE(res.stats.airtime, cfg.frame_budget + 1e-9);
  // Makeup packets only exist when feedback rounds exist.
  if (c.feedback_rounds == 0) EXPECT_EQ(res.stats.makeup_packets, 0u);

  for (std::size_t u = 0; u < 3; ++u) {
    ASSERT_EQ(res.user_symbols[u].size(), units.size());
    for (std::size_t i = 0; i < units.size(); ++i) {
      // Decoding requires at least k symbols...
      if (res.user_decoded[u][i])
        EXPECT_GE(res.user_symbols[u][i], units[i].k_symbols);
      // ...and without source coding, exactly-k distinct always decodes.
      if (!c.source_coding &&
          res.user_symbols[u][i] >= units[i].k_symbols)
        EXPECT_TRUE(res.user_decoded[u][i]);
      // A user can never hold more symbols than were transmitted.
      EXPECT_LE(res.user_symbols[u][i],
                res.stats.packets_sent);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EngineProperty,
    ::testing::Values(EngineCase{0.0, 40.0, 2, true, true},
                      EngineCase{0.05, 40.0, 2, true, true},
                      EngineCase{0.3, 40.0, 3, true, true},
                      EngineCase{0.05, 40.0, 0, true, true},
                      EngineCase{0.05, 40.0, 2, false, true},
                      EngineCase{0.05, 40.0, 2, true, false},
                      EngineCase{0.2, 5.0, 2, true, true},
                      EngineCase{0.0, 5.0, 2, false, false},
                      EngineCase{0.9, 40.0, 3, true, true}));

TEST(EngineProperty, LowerLossNeverWorseOnAverage) {
  // Statistical monotonicity: decoded units should not decrease when the
  // channel improves (averaged over seeds).
  const auto units = make_units(20, 10);
  std::vector<sched::UnitAssignment> assignments;
  for (std::size_t i = 0; i < units.size(); ++i)
    assignments.push_back({0, i, units[i].k_symbols});

  const auto decoded_avg = [&](double loss) {
    double total = 0.0;
    for (std::uint64_t seed = 0; seed < 8; ++seed) {
      EngineConfig cfg;
      cfg.symbol_size = 100;
      cfg.header_bytes = 0;
      TxEngine engine(cfg);
      GroupTx g;
      g.members = {0};
      g.mcs = *channel::mcs_by_index(8);
      g.drain_rate = Mbps{10.0};
      g.bucket_rate = Mbps{10.0};
      g.member_loss = {loss};
      Rng rng(seed);
      const auto res = engine.run_frame(units, assignments, {g}, 1, rng);
      for (bool b : res.user_decoded[0]) total += b ? 1.0 : 0.0;
    }
    return total;
  };

  double prev = 1e18;
  for (double loss : {0.0, 0.1, 0.3, 0.6}) {
    const double d = decoded_avg(loss);
    EXPECT_LE(d, prev + 2.0) << "loss " << loss;  // small-sample slack
    prev = d;
  }
  EXPECT_GT(decoded_avg(0.0), decoded_avg(0.6));
}

TEST(EngineProperty, MoreFeedbackRoundsNeverHurt) {
  const auto units = make_units(20, 10);
  std::vector<sched::UnitAssignment> assignments;
  for (std::size_t i = 0; i < units.size(); ++i)
    assignments.push_back({0, i, units[i].k_symbols});

  const auto decoded_with_rounds = [&](int rounds) {
    double total = 0.0;
    for (std::uint64_t seed = 0; seed < 6; ++seed) {
      EngineConfig cfg;
      cfg.symbol_size = 100;
      cfg.header_bytes = 0;
      cfg.feedback_rounds = rounds;
      TxEngine engine(cfg);
      GroupTx g;
      g.members = {0, 1};
      g.mcs = *channel::mcs_by_index(8);
      g.drain_rate = Mbps{40.0};
      g.bucket_rate = Mbps{40.0};
      g.member_loss = {0.15, 0.25};
      Rng rng(seed);
      const auto res = engine.run_frame(units, assignments, {g}, 2, rng);
      for (std::size_t u = 0; u < 2; ++u)
        for (bool b : res.user_decoded[u]) total += b ? 1.0 : 0.0;
    }
    return total;
  };

  const double r0 = decoded_with_rounds(0);
  const double r2 = decoded_with_rounds(2);
  EXPECT_GT(r2, r0);  // makeup rounds must pay for themselves here
}

}  // namespace
}  // namespace w4k::emu

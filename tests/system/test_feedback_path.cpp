// The feedback path under hostile delivery: serialization round-trips,
// malformed wire bytes, and a sender-side collector facing dropped,
// duplicated, and reordered reports — plus the engine-level makeup
// accounting when a report never arrives at all.
#include "emu/engine.h"
#include "transport/feedback.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace w4k::transport {
namespace {

ReceptionReport sample_report(std::uint32_t frame, std::size_t user) {
  ReceptionReport r;
  r.frame_id = frame;
  r.user = user;
  r.symbols_received = {4, 0, 7};
  r.unit_decoded = {1, 0, 1};
  r.measured_bandwidth = Mbps{812.5};
  return r;
}

TEST(FeedbackWire, RoundTripPreservesEverything) {
  const ReceptionReport r = sample_report(9, 2);
  const auto bytes = serialize_report(r);
  const auto back = parse_report(bytes.data(), bytes.size());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->frame_id, 9u);
  EXPECT_EQ(back->user, 2u);
  EXPECT_EQ(back->symbols_received, r.symbols_received);
  EXPECT_EQ(back->unit_decoded, r.unit_decoded);
  ASSERT_TRUE(back->measured_bandwidth.has_value());
  EXPECT_DOUBLE_EQ(back->measured_bandwidth->value, 812.5);
}

TEST(FeedbackWire, RoundTripWithoutBandwidthOrDecodedMask) {
  ReceptionReport r = sample_report(1, 0);
  r.unit_decoded.clear();
  r.measured_bandwidth.reset();
  const auto bytes = serialize_report(r);
  const auto back = parse_report(bytes.data(), bytes.size());
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(back->unit_decoded.empty());
  EXPECT_FALSE(back->measured_bandwidth.has_value());
}

TEST(FeedbackWire, TruncationAtEveryLengthRejected) {
  const auto bytes = serialize_report(sample_report(3, 1));
  for (std::size_t cut = 0; cut < bytes.size(); ++cut)
    EXPECT_FALSE(parse_report(bytes.data(), cut).has_value())
        << "cut at " << cut;
}

TEST(FeedbackWire, BadTagAndTrailingGarbageRejected) {
  auto bytes = serialize_report(sample_report(3, 1));
  auto bad_tag = bytes;
  bad_tag[0] ^= 0xFF;
  EXPECT_FALSE(parse_report(bad_tag.data(), bad_tag.size()).has_value());
  auto trailing = bytes;
  trailing.push_back(0x00);
  EXPECT_FALSE(parse_report(trailing.data(), trailing.size()).has_value());
}

TEST(FeedbackWire, ImplausibleUnitCountRejected) {
  // A corrupt length prefix must not trigger a giant allocation.
  auto bytes = serialize_report(sample_report(3, 1));
  // n_units is the u32 right after tag + frame_id(u32) + user(u32).
  const std::size_t off = 1 + 4 + 4;
  bytes[off + 3] = 0xFF;
  EXPECT_FALSE(parse_report(bytes.data(), bytes.size()).has_value());
}

TEST(ReportCollectorTest, OutOfOrderAndDuplicateDelivery) {
  ReportCollector c(/*frame_id=*/5, /*n_users=*/3, /*n_units=*/3);
  EXPECT_FALSE(c.complete());

  // Reports arrive reordered: user 2, then 0, then a duplicate of 2.
  EXPECT_TRUE(c.accept(sample_report(5, 2)));
  EXPECT_TRUE(c.accept(sample_report(5, 0)));
  ReceptionReport dup = sample_report(5, 2);
  dup.symbols_received = {0, 0, 0};  // the duplicate must NOT overwrite
  EXPECT_FALSE(c.accept(dup));
  EXPECT_EQ(c.reported(), 2u);
  ASSERT_NE(c.report(2), nullptr);
  EXPECT_EQ(c.report(2)->symbols_received[0], 4u);

  const auto missing = c.missing_users();
  ASSERT_EQ(missing.size(), 1u);
  EXPECT_EQ(missing[0], 1u);

  EXPECT_TRUE(c.accept(sample_report(5, 1)));
  EXPECT_TRUE(c.complete());
  EXPECT_TRUE(c.missing_users().empty());
}

TEST(ReportCollectorTest, RejectsWrongFrameUserAndShape) {
  ReportCollector c(5, 2, 3);
  EXPECT_FALSE(c.accept(sample_report(4, 0)));   // stale frame
  EXPECT_FALSE(c.accept(sample_report(6, 0)));   // future frame
  EXPECT_FALSE(c.accept(sample_report(5, 2)));   // user out of range
  ReceptionReport short_units = sample_report(5, 0);
  short_units.symbols_received.pop_back();
  short_units.unit_decoded.pop_back();
  EXPECT_FALSE(c.accept(short_units));           // wrong unit count
  EXPECT_EQ(c.reported(), 0u);
}

TEST(ReportCollectorTest, DeficitAccounting) {
  ReportCollector c(0, 2, 3);
  ReceptionReport r = sample_report(0, 0);
  r.symbols_received = {4, 2, 7};  // k = 7: unit 2 holds exactly k
  r.unit_decoded = {1, 0, 0};      // ...but its decode was rank-deficient
  ASSERT_TRUE(c.accept(r));

  EXPECT_EQ(c.deficit(0, 0, 7), std::optional<std::size_t>(0));  // decoded
  EXPECT_EQ(c.deficit(0, 1, 7), std::optional<std::size_t>(5));  // shortfall
  EXPECT_EQ(c.deficit(0, 2, 7), std::optional<std::size_t>(1));  // rank-def
  // User 1 never reported: the caller must choose a blind budget.
  EXPECT_FALSE(c.deficit(1, 0, 7).has_value());
}

}  // namespace
}  // namespace w4k::transport

namespace w4k::emu {
namespace {

// Engine-level makeup accounting when a report never arrives: the silent
// user gets a blind worst-case budget, and the backoff fraction shrinks it.
class EngineFeedbackFaultTest : public ::testing::Test {
 protected:
  static std::vector<sched::UnitSpec> units() {
    sched::UnitSpec u;
    u.id.layer = 0;
    u.id.sublayer = 0;
    u.sublayer_k = 0;
    u.offset = 0;
    u.source_bytes = 8 * 1024;
    u.k_symbols = 8;
    return {u};
  }

  static FrameTxResult run(const FrameFaultState& faults, double loss,
                           std::uint64_t seed = 21) {
    EngineConfig cfg;
    cfg.symbol_size = 1024;
    cfg.header_bytes = 0;
    TxEngine engine(cfg);
    GroupTx g;
    g.members = {0, 1};
    g.mcs = channel::mcs_table().front();
    g.drain_rate = Mbps{500.0};
    g.bucket_rate = g.drain_rate;
    g.member_loss = {0.0, loss};
    sched::UnitAssignment a;
    a.group = 0;
    a.unit_index = 0;
    a.symbols = 8;
    Rng rng(seed);
    return engine.run_frame(units(), {a}, {g}, 2, rng, faults);
  }
};

TEST_F(EngineFeedbackFaultTest, SilentUserGetsBlindMakeup) {
  // User 1 loses half its packets and its report vanishes: without
  // feedback the sender cannot know the deficit, so it must spend the
  // blind budget anyway.
  FrameFaultState faults;
  faults.feedback_lost = {0, 1};
  const FrameTxResult res = run(faults, /*loss=*/0.5);
  EXPECT_GT(res.blind_makeup_packets, 0u);
  EXPECT_GT(res.stats.makeup_packets, 0u);
}

TEST_F(EngineFeedbackFaultTest, BackoffFractionShrinksBlindBudget) {
  FrameFaultState full;
  full.feedback_lost = {0, 1};
  full.blind_fraction = {0.5, 0.5};
  FrameFaultState backed_off = full;
  backed_off.blind_fraction = {0.5, 0.5 / 16.0};
  // Lossless link: every blind symbol is pure overhead, so the counts
  // compare the budgets directly.
  const FrameTxResult a = run(full, /*loss=*/0.0);
  const FrameTxResult b = run(backed_off, /*loss=*/0.0);
  EXPECT_GT(a.blind_makeup_packets, 0u);
  EXPECT_GT(b.blind_makeup_packets, 0u);
  EXPECT_LT(b.blind_makeup_packets, a.blind_makeup_packets);
}

TEST_F(EngineFeedbackFaultTest, NoFaultsMeansNoBlindPackets) {
  const FrameTxResult res = run(FrameFaultState{}, /*loss=*/0.5);
  EXPECT_EQ(res.blind_makeup_packets, 0u);
}

TEST_F(EngineFeedbackFaultTest, AllReportsLostStillBounded) {
  FrameFaultState faults;
  faults.feedback_lost = {1, 1};
  const FrameTxResult res = run(faults, /*loss=*/0.3);
  // Blind makeup is capped by the worst-case fraction, not unbounded.
  EXPECT_GT(res.blind_makeup_packets, 0u);
  EXPECT_LE(res.stats.packets_sent, res.stats.packets_offered);
}

}  // namespace
}  // namespace w4k::emu

#include "sched/allocate.h"

#include "channel/propagation.h"
#include "core/frame_context.h"
#include "core/pretrained.h"
#include "verify/invariants.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <numeric>

namespace w4k::sched {
namespace {

/// Shared trained model + a frame's content features for all tests here.
class AllocateTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    quality_ = new model::QualityModel(42);
    core::PretrainedOptions opts;
    opts.cache_path = "allocate_test_model.cache";
    core::ensure_trained(*quality_, opts);

    video::VideoSpec spec;
    spec.width = 512;
    spec.height = 288;
    spec.frames = 1;
    spec.richness = video::Richness::kHigh;
    spec.seed = 7;
    const video::SyntheticVideo clip(spec);
    ctx_ = new core::FrameContext(core::make_frame_context(
        clip.frame(0), nullptr, core::scaled_symbol_size(512, 288)));
  }
  static void TearDownTestSuite() {
    delete quality_;
    delete ctx_;
    quality_ = nullptr;
    ctx_ = nullptr;
  }

  /// AllocProblem::groups is a non-owning span, so the test problem
  /// carries its own group storage. Safe to return/move by value: moving
  /// the vector keeps its heap buffer, so the span stays valid.
  struct TestProblem : AllocProblem {
    std::vector<GroupSpec> storage;
  };

  /// Builds a problem with groups at the given (members, Mbps) specs.
  static TestProblem problem(
      std::vector<std::pair<std::vector<std::size_t>, double>> groups,
      std::size_t n_users) {
    TestProblem p;
    for (auto& [members, rate] : groups) {
      GroupSpec g;
      g.members = members;
      g.beam.rate = Mbps{rate};
      g.beam.min_rss = Dbm{-50.0};
      p.storage.push_back(std::move(g));
    }
    p.groups = p.storage;
    p.n_users = n_users;
    p.content = ctx_->content;
    return p;
  }

  static double total_time(const Allocation& a) {
    double t = 0.0;
    for (const auto& row : a.time_rows())
      for (double x : row) t += x;
    return t;
  }

  static model::QualityModel* quality_;
  static core::FrameContext* ctx_;
};

model::QualityModel* AllocateTest::quality_ = nullptr;
core::FrameContext* AllocateTest::ctx_ = nullptr;

TEST_F(AllocateTest, RespectsTimeBudget) {
  auto p = problem({{{0}, 40.0}, {{1}, 40.0}, {{0, 1}, 40.0}}, 2);
  const Allocation a = optimize_allocation(p, *quality_);
  EXPECT_LE(total_time(a), p.time_budget + 1e-9);
  for (const auto& row : a.time_rows())
    for (double x : row) EXPECT_GE(x, 0.0);
}

TEST_F(AllocateTest, PrefersSharedGroupWhenRatesEqual) {
  // With equal rates, sending to {0,1} serves both users at once; the
  // optimizer should put (almost) everything there.
  auto p = problem({{{0}, 40.0}, {{1}, 40.0}, {{0, 1}, 40.0}}, 2);
  const Allocation a = optimize_allocation(p, *quality_);
  double shared = 0.0;
  for (double x : a.time(2)) shared += x;
  EXPECT_GT(shared, 0.9 * total_time(a));
}

TEST_F(AllocateTest, FillsLowerLayersFirst) {
  auto p = problem({{{0}, 40.0}}, 1);
  const Allocation a = optimize_allocation(p, *quality_);
  // Lower layers should be complete before upper layers get anything
  // substantial (capacity 40 Mbps can fill L0..L2 and part of L3).
  for (int l = 0; l < 3; ++l)
    EXPECT_GE(a.user_bytes(0)[static_cast<std::size_t>(l)],
              0.95 * p.content.layer_bytes[static_cast<std::size_t>(l)])
        << "layer " << l;
  EXPECT_LT(a.user_bytes(0)[3], p.content.layer_bytes[3]);
}

TEST_F(AllocateTest, AvoidsGrossOverAllocation) {
  auto p = problem({{{0}, 40.0}}, 1);
  const Allocation a = optimize_allocation(p, *quality_);
  // No layer should receive more than ~a symbol or two beyond its cap.
  for (int l = 0; l < video::kNumLayers; ++l) {
    const auto ls = static_cast<std::size_t>(l);
    EXPECT_LT(a.user_bytes(0)[ls], p.content.layer_bytes[ls] * 1.1 + 2000.0)
        << "layer " << l;
  }
}

TEST_F(AllocateTest, HigherRateHigherQuality) {
  auto slow = problem({{{0}, 10.0}}, 1);
  auto fast = problem({{{0}, 40.0}}, 1);
  const Allocation a_slow = optimize_allocation(slow, *quality_);
  const Allocation a_fast = optimize_allocation(fast, *quality_);
  EXPECT_GT(a_fast.predicted_ssim[0], a_slow.predicted_ssim[0] + 0.01);
}

TEST_F(AllocateTest, AsymmetricRatesFavorBottleneckViaSingletons) {
  // One strong user, one weak user: the optimizer should still deliver
  // the base layer to the weak user via some group containing it.
  auto p = problem({{{0}, 40.0}, {{1}, 8.0}, {{0, 1}, 8.0}}, 2);
  const Allocation a = optimize_allocation(p, *quality_);
  EXPECT_GT(a.user_bytes(1)[0], 0.9 * p.content.layer_bytes[0]);
  // And the strong user should end with more total bytes.
  const double s0 = std::accumulate(a.user_bytes(0).begin(),
                                    a.user_bytes(0).end(), 0.0);
  const double s1 = std::accumulate(a.user_bytes(1).begin(),
                                    a.user_bytes(1).end(), 0.0);
  EXPECT_GT(s0, s1);
}

TEST_F(AllocateTest, EmptyProblemsThrow) {
  AllocProblem p;
  p.n_users = 1;
  EXPECT_THROW(optimize_allocation(p, *quality_), std::invalid_argument);
  auto p2 = problem({{{0}, 40.0}}, 1);
  p2.n_users = 0;
  EXPECT_THROW(optimize_allocation(p2, *quality_), std::invalid_argument);
}

TEST_F(AllocateTest, BytesConsistentWithTimeAndRate) {
  auto p = problem({{{0}, 37.0}}, 1);
  const Allocation a = optimize_allocation(p, *quality_);
  for (int l = 0; l < video::kNumLayers; ++l) {
    const auto ls = static_cast<std::size_t>(l);
    EXPECT_NEAR(a.bytes(0)[ls], a.time(0)[ls] * 37.0 * 1e6 / 8.0, 1e-6);
  }
}

TEST_F(AllocateTest, RoundRobinUsesFullBudgetCyclically) {
  auto p = problem({{{0}, 40.0}, {{1}, 40.0}, {{0, 1}, 40.0}}, 2);
  const Allocation a = round_robin_allocation(p, *quality_);
  EXPECT_NEAR(total_time(a), p.time_budget, 1e-9);
  // Round robin splits time equally across the three groups.
  for (std::size_t g = 0; g < 3; ++g) {
    double t = 0.0;
    for (double x : a.time(g)) t += x;
    EXPECT_NEAR(t, p.time_budget / 3.0, 1e-3);
  }
}

TEST_F(AllocateTest, OptimizedBeatsRoundRobinWithThreeUsers) {
  // Fig. 8's claim. Three users, heterogeneous rates.
  auto p = problem({{{0}, 40.0},
                    {{1}, 30.0},
                    {{2}, 15.0},
                    {{0, 1}, 30.0},
                    {{0, 2}, 15.0},
                    {{1, 2}, 15.0},
                    {{0, 1, 2}, 15.0}},
                   3);
  const Allocation opt = optimize_allocation(p, *quality_);
  const Allocation rr = round_robin_allocation(p, *quality_);
  double opt_sum = 0.0, rr_sum = 0.0;
  for (double s : opt.predicted_ssim) opt_sum += s;
  for (double s : rr.predicted_ssim) rr_sum += s;
  EXPECT_GT(opt_sum, rr_sum);
}

TEST_F(AllocateTest, TwoUserSharedGroupMatchesRoundRobinClosely) {
  // Paper: "our scheduling performs the same as the round-robin for 2
  // users because there is only one multicast group" — when the only
  // group is {0,1}, both allocators serve it the whole budget.
  auto p = problem({{{0, 1}, 40.0}}, 2);
  const Allocation opt = optimize_allocation(p, *quality_);
  const Allocation rr = round_robin_allocation(p, *quality_);
  EXPECT_NEAR(opt.predicted_ssim[0], rr.predicted_ssim[0], 0.02);
}

TEST(ProjectToSimplex, Basics) {
  std::vector<double> t{0.5, 0.7, -0.1};
  project_to_simplex(t, 1.0);
  double sum = 0.0;
  for (double x : t) {
    EXPECT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_LE(sum, 1.0 + 1e-12);
}

TEST(ProjectToSimplex, UnderBudgetUntouchedExceptClipping) {
  std::vector<double> t{0.1, 0.2, -0.3};
  project_to_simplex(t, 10.0);
  EXPECT_DOUBLE_EQ(t[0], 0.1);
  EXPECT_DOUBLE_EQ(t[1], 0.2);
  EXPECT_DOUBLE_EQ(t[2], 0.0);
}

TEST(ProjectToSimplex, ExactProjectionKnownCase) {
  // Projection of (1, 1) onto {x >= 0, sum <= 1} is (0.5, 0.5).
  std::vector<double> t{1.0, 1.0};
  project_to_simplex(t, 1.0);
  EXPECT_NEAR(t[0], 0.5, 1e-12);
  EXPECT_NEAR(t[1], 0.5, 1e-12);
}

TEST(ProjectToSimplex, NonPositiveBudgetYieldsZeroVector) {
  // The only feasible point of {t >= 0, sum t <= b} with b <= 0 is 0.
  for (double budget : {0.0, -1.0, -1e-300}) {
    std::vector<double> t{0.5, 0.7, -0.1};
    project_to_simplex(t, budget);
    for (double x : t) EXPECT_EQ(x, 0.0) << "budget " << budget;
  }
}

TEST(ProjectToSimplex, NonFiniteEntriesThrowUnderDefaultPolicy) {
  verify::set_mode(verify::Mode::kThrow);
  std::vector<double> t{std::numeric_limits<double>::quiet_NaN(), 0.5};
  EXPECT_THROW(project_to_simplex(t, 1.0), verify::InvariantViolation);
}

TEST(ProjectToSimplex, NonFiniteEntriesSanitizedInReportMode) {
  verify::set_mode(verify::Mode::kReport);
  verify::reset_violations();
  std::vector<double> t{std::numeric_limits<double>::quiet_NaN(), 1.0,
                        std::numeric_limits<double>::infinity(),
                        -std::numeric_limits<double>::infinity()};
  project_to_simplex(t, 1.0);
  verify::set_mode(verify::Mode::kThrow);
  EXPECT_EQ(verify::violation_count(), 3u);  // NaN, +inf, -inf
  double sum = 0.0;
  for (double x : t) {
    EXPECT_TRUE(std::isfinite(x));
    EXPECT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_LE(sum, 1.0 + 1e-12);
  // NaN and -inf collapse to 0; +inf claimed the budget (1.0, same as
  // t[1]) before projection, so the two split the budget evenly.
  EXPECT_EQ(t[0], 0.0);
  EXPECT_EQ(t[3], 0.0);
  EXPECT_NEAR(t[1], 0.5, 1e-12);
  EXPECT_NEAR(t[2], 0.5, 1e-12);
}

TEST(ProjectToSimplex, NonFiniteBudgetZeroesInReportMode) {
  verify::set_mode(verify::Mode::kReport);
  verify::reset_violations();
  std::vector<double> t{0.25, 0.5};
  project_to_simplex(t, std::numeric_limits<double>::quiet_NaN());
  verify::set_mode(verify::Mode::kThrow);
  EXPECT_GE(verify::violation_count(), 1u);
  for (double x : t) EXPECT_EQ(x, 0.0);
}

TEST_F(AllocateTest, RoundRobinLandsExactlyOnAwkwardBudgets) {
  // Regression: the final partial slot must be sized to the remaining
  // budget, so the summed plan never exceeds it and drops at most 1e-12 s.
  auto p = problem({{{0}, 40.0}, {{1}, 30.0}, {{0, 1}, 25.0}}, 2);
  for (double budget : {1.0 / 30.0, 0.0307, 1.0 / 3.0, 0.0100005, 2.5e-4}) {
    p.time_budget = budget;
    const Allocation a = round_robin_allocation(p, *quality_);
    const double total = total_time(a);
    EXPECT_LE(total, budget * (1.0 + 1e-12)) << "budget " << budget;
    EXPECT_GE(total, budget - 1e-11) << "budget " << budget;
  }
}

TEST_F(AllocateTest, RoundRobinRejectsDegenerateSlots) {
  auto p = problem({{{0}, 40.0}}, 1);
  EXPECT_THROW(round_robin_allocation(p, *quality_, 0.0),
               std::invalid_argument);
  EXPECT_THROW(round_robin_allocation(p, *quality_, -1e-3),
               std::invalid_argument);
  EXPECT_THROW(round_robin_allocation(
                   p, *quality_, std::numeric_limits<double>::quiet_NaN()),
               std::invalid_argument);
  EXPECT_THROW(round_robin_allocation(
                   p, *quality_, std::numeric_limits<double>::infinity()),
               std::invalid_argument);
}

TEST_F(AllocateTest, WarmStartMatchingPreviousOptimumIsAccepted) {
  auto p = problem({{{0}, 40.0}, {{1}, 30.0}, {{0, 1}, 25.0}}, 2);
  const Allocation cold = optimize_allocation(p, *quality_);
  std::vector<double> warm;
  for (const auto& row : cold.time_rows())
    warm.insert(warm.end(), row.begin(), row.end());
  const Allocation warmed = optimize_allocation(p, *quality_, {}, &warm);
  // Restarting from the optimum must not lose objective, and converges in
  // far fewer iterations than the cold multi-start.
  EXPECT_GE(warmed.objective, cold.objective - 1e-9);
  EXPECT_LT(warmed.iterations, cold.iterations);
}

TEST_F(AllocateTest, WarmStartLeavingAUserUnservedFallsBackToMultiStart) {
  // A warm start with zero airtime on every group containing user 1 (the
  // post-quarantine re-entry shape) must not be trusted: the optimizer has
  // to fall back to the multi-start, which serves user 1's base layer.
  auto p = problem({{{0}, 40.0}, {{1}, 30.0}, {{0, 1}, 25.0}}, 2);
  std::vector<double> warm(p.groups.size() * video::kNumLayers, 0.0);
  warm[0] = p.time_budget;  // everything on user 0's singleton
  const Allocation a = optimize_allocation(p, *quality_, {}, &warm);
  EXPECT_GT(a.user_bytes(1)[0], 0.9 * p.content.layer_bytes[0]);
}

TEST_F(AllocateTest, UnusableWarmStartsReproduceColdBitIdentically) {
  // Wrong size, non-finite, or all-clipped warm vectors must be ignored
  // entirely — the cold multi-start runs and produces the exact cold plan.
  auto p = problem({{{0}, 40.0}, {{1}, 30.0}, {{0, 1}, 25.0}}, 2);
  const Allocation cold = optimize_allocation(p, *quality_);
  const std::vector<std::vector<double>> warms = {
      {},                             // wrong size: ignored
      std::vector<double>(12, -1.0),  // projects to the zero vector
      std::vector<double>(12, std::numeric_limits<double>::quiet_NaN()),
  };
  for (const auto& w : warms) {
    const Allocation a = optimize_allocation(p, *quality_, {}, &w);
    EXPECT_EQ(a.objective, cold.objective);
    ASSERT_EQ(a.group_count(), cold.group_count());
    for (std::size_t g = 0; g < a.group_count(); ++g)
      EXPECT_EQ(a.time(g), cold.time(g)) << "group " << g;
    EXPECT_EQ(a.iterations, cold.iterations);
  }
  // An absurd-but-finite warm start is projected onto the budget and is
  // only ever accepted if it beats the evaluated round-robin seed, so the
  // result can never fall below the round-robin baseline.
  const std::vector<double> absurd(12, 1e9);
  const Allocation a = optimize_allocation(p, *quality_, {}, &absurd);
  const Allocation rr = round_robin_allocation(p, *quality_);
  EXPECT_GE(a.objective, rr.objective - 1e-9);
}

}  // namespace
}  // namespace w4k::sched

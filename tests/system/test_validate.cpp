// SessionConfig::validate() rejection matrix: every malformed field must
// throw std::invalid_argument naming the offending field, and the checks
// must fire at session construction (not first frame) wherever the
// information exists that early.
#include "core/session.h"

#include "channel/array.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <string>

namespace w4k::core {
namespace {

constexpr int kW = 256;
constexpr int kH = 144;

SessionConfig good_config() { return SessionConfig::scaled(kW, kH); }

// Runs validate() and returns the exception message ("" = accepted).
std::string rejection(const SessionConfig& cfg,
                      std::size_t codebook_beams = SessionConfig::kUnknown,
                      std::size_t n_users = SessionConfig::kUnknown) {
  try {
    cfg.validate(codebook_beams, n_users);
    return "";
  } catch (const std::invalid_argument& e) {
    return e.what();
  }
}

TEST(SessionConfigValidate, AcceptsDefaults) {
  EXPECT_EQ(rejection(good_config()), "");
  EXPECT_EQ(rejection(SessionConfig{}), "");
}

TEST(SessionConfigValidate, RejectsNonPositiveRateScale) {
  auto cfg = good_config();
  cfg.rate_scale = 0.0;
  EXPECT_NE(rejection(cfg).find("SessionConfig.rate_scale"),
            std::string::npos);
  cfg.rate_scale = -1.0;
  EXPECT_NE(rejection(cfg).find("rate_scale"), std::string::npos);
  cfg.rate_scale = std::nan("");
  EXPECT_NE(rejection(cfg).find("rate_scale"), std::string::npos);
}

TEST(SessionConfigValidate, RejectsNonPositiveFrameBudget) {
  auto cfg = good_config();
  cfg.engine.frame_budget = 0.0;
  EXPECT_NE(rejection(cfg).find("SessionConfig.engine.frame_budget"),
            std::string::npos);
  cfg.engine.frame_budget = -0.033;
  EXPECT_NE(rejection(cfg).find("frame_budget"), std::string::npos);
}

TEST(SessionConfigValidate, RejectsMakeupMarginOutsideUnitInterval) {
  auto cfg = good_config();
  cfg.makeup_margin = 1.0;  // reserve must leave some airtime
  EXPECT_NE(rejection(cfg).find("SessionConfig.makeup_margin"),
            std::string::npos);
  cfg.makeup_margin = -0.01;
  EXPECT_NE(rejection(cfg).find("makeup_margin"), std::string::npos);
  cfg.makeup_margin = 0.999;  // inside [0, 1): fine
  EXPECT_EQ(rejection(cfg), "");
}

TEST(SessionConfigValidate, RejectsZeroSymbolSizeAndQueue) {
  auto cfg = good_config();
  cfg.engine.symbol_size = 0;
  EXPECT_NE(rejection(cfg).find("engine.symbol_size"), std::string::npos);
  cfg = good_config();
  cfg.engine.queue_capacity_bytes = 0;
  EXPECT_NE(rejection(cfg).find("engine.queue_capacity_bytes"),
            std::string::npos);
}

TEST(SessionConfigValidate, RejectsNegativeNoiseAndLambda) {
  auto cfg = good_config();
  cfg.sls_noise_db = -0.5;
  EXPECT_NE(rejection(cfg).find("sls_noise_db"), std::string::npos);
  cfg = good_config();
  cfg.lambda = -1.0;
  EXPECT_NE(rejection(cfg).find("lambda"), std::string::npos);
}

TEST(SessionConfigValidate, RejectsUndersizedCodebookOnlyWithEstimation) {
  auto cfg = good_config();
  cfg.use_estimated_csi = true;
  const std::size_t small = channel::kDefaultApAntennas - 1;
  EXPECT_NE(rejection(cfg, small).find("use_estimated_csi"),
            std::string::npos);
  // Unknown codebook size: defer (the step-time check still guards).
  EXPECT_EQ(rejection(cfg), "");
  // Perfect CSI never needs the codebook.
  cfg.use_estimated_csi = false;
  EXPECT_EQ(rejection(cfg, small), "");
}

TEST(SessionConfigValidate, RejectsAssociatedUserOutOfRange) {
  auto cfg = good_config();
  cfg.associated_user = 3;
  EXPECT_NE(rejection(cfg, SessionConfig::kUnknown, 3).find(
                "associated_user"),
            std::string::npos);
  EXPECT_EQ(rejection(cfg, SessionConfig::kUnknown, 4), "");
  // Without a user count the check defers to step().
  EXPECT_EQ(rejection(cfg), "");
}

TEST(SessionConfigValidate, RejectsBadDegradationKnobs) {
  auto cfg = good_config();
  cfg.stale_csi_backoff_db = -1.0;
  EXPECT_NE(rejection(cfg).find("stale_csi_backoff_db"), std::string::npos);
  cfg = good_config();
  cfg.stale_csi_backoff_db = std::nan("");
  EXPECT_NE(rejection(cfg).find("stale_csi_backoff_db"), std::string::npos);

  cfg = good_config();
  cfg.blind_makeup_fraction = 1.5;
  EXPECT_NE(rejection(cfg).find("blind_makeup_fraction"), std::string::npos);
  cfg = good_config();
  cfg.blind_makeup_fraction = -0.1;
  EXPECT_NE(rejection(cfg).find("blind_makeup_fraction"), std::string::npos);
  cfg = good_config();
  cfg.blind_makeup_fraction = 0.0;  // blind makeup disabled: fine
  EXPECT_EQ(rejection(cfg), "");

  cfg = good_config();
  cfg.blind_backoff_cap = 31;  // 1 << 31 would overflow the halving shift
  EXPECT_NE(rejection(cfg).find("blind_backoff_cap"), std::string::npos);
  cfg = good_config();
  cfg.blind_backoff_cap = 0;
  EXPECT_EQ(rejection(cfg), "");

  cfg = good_config();
  cfg.quarantine_reprobe_period = 0;  // would never re-probe
  EXPECT_NE(rejection(cfg).find("quarantine_reprobe_period"),
            std::string::npos);
  cfg = good_config();
  cfg.quarantine_after = 0;  // 0 = quarantine disabled: fine
  EXPECT_EQ(rejection(cfg), "");
}

TEST(SessionConfigValidate, RejectsBadLossModel) {
  auto cfg = good_config();
  cfg.loss.floor = -0.5;
  EXPECT_NE(rejection(cfg).find("LossModel.floor"), std::string::npos);
  cfg = good_config();
  cfg.loss.mac_retries = std::nan("");
  EXPECT_NE(rejection(cfg).find("mac_retries"), std::string::npos);
}

TEST(SessionConfigValidate, FirstFailingFieldIsNamed) {
  auto cfg = good_config();
  cfg.rate_scale = 0.0;
  cfg.makeup_margin = 2.0;
  const std::string msg = rejection(cfg);
  EXPECT_NE(msg.find("rate_scale"), std::string::npos);
  EXPECT_EQ(msg.find("makeup_margin"), std::string::npos);
}

}  // namespace
}  // namespace w4k::core

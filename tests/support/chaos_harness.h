// Shared core of the chaos drivers (tests/system/test_chaos.cpp,
// tests/tools/chaos_scale.cpp, tests/tools/chaos_multiap.cpp): seed-count
// scaling via W4K_CHAOS_SEEDS, the report invariants every chaos run must
// satisfy, the multi-AP outcome-shape checks, and the bitwise report
// identity used by the determinism assertions.
//
// All checks collect human-readable violation strings instead of asserting
// directly, so the same code serves both the gtest suite (EXPECT the list
// is empty) and the standalone tier-1 binaries (print the list, exit
// nonzero). Header-only; include from test code only.
#pragma once

#include "core/frame_context.h"
#include "core/pretrained.h"
#include "core/report.h"
#include "video/synthetic.h"

#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

namespace w4k::chaos {

/// Number of random seeds a chaos sweep iterates: `def` unless the
/// W4K_CHAOS_SEEDS environment variable names a positive count (the
/// acceptance sweeps raise it to 50+).
inline std::uint64_t seed_count(std::uint64_t def) {
  if (const char* env = std::getenv("W4K_CHAOS_SEEDS")) {
    const long v = std::atol(env);
    if (v > 0) return static_cast<std::uint64_t>(v);
  }
  return def;
}

using Violations = std::vector<std::string>;

inline void addf(Violations& out, const char* fmt, ...) {
  char buf[512];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  out.emplace_back(buf);
}

/// The invariants every chaos run must satisfy, whatever the fault plan
/// did: expected frame count, monotonically numbered frames, well-formed
/// per-user vectors (sizes, ranges, finiteness) including across churn,
/// sane transport stats, and aggregates that digest mixed-presence frames
/// without producing non-finite values.
inline Violations check_report_invariants(const core::SessionReport& report,
                                          std::size_t expected_frames,
                                          std::size_t expected_users) {
  Violations v;
  if (report.frames() != expected_frames) {
    addf(v, "frame count %zu, expected %zu", report.frames(),
         expected_frames);
    return v;  // everything below indexes by expected frame count
  }
  for (std::size_t i = 0; i < report.frames(); ++i) {
    const core::FrameOutcome& f = report.frame(i);
    if (f.frame_id != static_cast<std::uint32_t>(i))
      addf(v, "frame %zu: id %u not monotonic", i, f.frame_id);
    if (f.ssim.size() != expected_users || f.psnr.size() != expected_users ||
        f.decoded_fraction.size() != expected_users) {
      addf(v, "frame %zu: per-user sizes ssim=%zu psnr=%zu decoded=%zu, "
              "expected %zu",
           i, f.ssim.size(), f.psnr.size(), f.decoded_fraction.size(),
           expected_users);
      continue;  // avoid cascading out-of-bounds reads below
    }
    if (!f.user_present.empty() && f.user_present.size() != expected_users)
      addf(v, "frame %zu: user_present size %zu", i, f.user_present.size());
    if (!f.user_quarantined.empty() &&
        f.user_quarantined.size() != expected_users)
      addf(v, "frame %zu: user_quarantined size %zu", i,
           f.user_quarantined.size());
    for (std::size_t u = 0; u < expected_users; ++u) {
      if (!(std::isfinite(f.ssim[u]) && f.ssim[u] >= 0.0 && f.ssim[u] <= 1.0))
        addf(v, "frame %zu user %zu: ssim %f", i, u, f.ssim[u]);
      if (!std::isfinite(f.psnr[u]))
        addf(v, "frame %zu user %zu: non-finite psnr", i, u);
      if (!(f.decoded_fraction[u] >= 0.0 && f.decoded_fraction[u] <= 1.0))
        addf(v, "frame %zu user %zu: decoded fraction %f", i, u,
             f.decoded_fraction[u]);
    }
    if (f.stats.packets_sent < f.stats.makeup_packets)
      addf(v, "frame %zu: makeup %zu exceeds sent %zu", i,
           f.stats.makeup_packets, f.stats.packets_sent);
    if (!(std::isfinite(f.stats.airtime) && f.stats.airtime >= 0.0))
      addf(v, "frame %zu: airtime %f", i, f.stats.airtime);
  }
  const std::vector<double> per_user = report.per_user_mean_ssim();
  if (per_user.size() != expected_users)
    addf(v, "per-user aggregate size %zu, expected %zu", per_user.size(),
         expected_users);
  for (std::size_t u = 0; u < per_user.size(); ++u)
    if (!std::isfinite(per_user[u]))
      addf(v, "user %zu: non-finite mean ssim", u);
  (void)report.summary_text();  // must not throw on any chaos outcome
  return v;
}

/// Multi-AP outcome shape on top of the base invariants: every frame
/// carries a valid serving-AP index per user, relay accounting never
/// delivers more symbols than relay packets sent, and relay airtime stays
/// a share of the charged total.
inline Violations check_multi_ap_shape(const core::SessionReport& report,
                                       std::size_t expected_users,
                                       std::size_t n_aps) {
  Violations v;
  for (std::size_t i = 0; i < report.frames(); ++i) {
    const core::FrameOutcome& f = report.frame(i);
    if (f.user_ap.size() != expected_users) {
      addf(v, "frame %zu: user_ap size %zu, expected %zu", i,
           f.user_ap.size(), expected_users);
      continue;
    }
    for (std::size_t u = 0; u < f.user_ap.size(); ++u)
      if (f.user_ap[u] >= n_aps)
        addf(v, "frame %zu user %zu: serving AP %u of %zu", i, u,
             f.user_ap[u], n_aps);
    if (f.relayed_symbols > f.stats.relay_packets)
      addf(v, "frame %zu: %zu relayed symbols from %zu relay packets", i,
           f.relayed_symbols, f.stats.relay_packets);
    if (!(f.stats.relay_airtime >= 0.0 &&
          f.stats.relay_airtime <= f.stats.airtime + 1e-12))
      addf(v, "frame %zu: relay airtime %f of %f", i, f.stats.relay_airtime,
           f.stats.airtime);
  }
  return v;
}

/// Bitwise report identity — determinism is the contract, so every field
/// compares with ==, never with a tolerance. Returns one violation per
/// differing field.
inline Violations diff_reports(const core::SessionReport& a,
                               const core::SessionReport& b) {
  Violations v;
  if (a.frames() != b.frames()) {
    addf(v, "frame counts %zu vs %zu", a.frames(), b.frames());
    return v;
  }
  for (std::size_t i = 0; i < a.frames(); ++i) {
    const core::FrameOutcome& fa = a.frame(i);
    const core::FrameOutcome& fb = b.frame(i);
    if (fa.frame_id != fb.frame_id)
      addf(v, "frame %zu: ids %u vs %u", i, fa.frame_id, fb.frame_id);
    if (fa.ssim.size() != fb.ssim.size()) {
      addf(v, "frame %zu: user counts %zu vs %zu", i, fa.ssim.size(),
           fb.ssim.size());
      continue;
    }
    for (std::size_t u = 0; u < fa.ssim.size(); ++u) {
      if (fa.ssim[u] != fb.ssim[u])
        addf(v, "frame %zu user %zu: ssim %.17g vs %.17g", i, u, fa.ssim[u],
             fb.ssim[u]);
      if (u < fa.psnr.size() && u < fb.psnr.size() &&
          fa.psnr[u] != fb.psnr[u])
        addf(v, "frame %zu user %zu: psnr differs", i, u);
      if (u < fa.decoded_fraction.size() &&
          u < fb.decoded_fraction.size() &&
          fa.decoded_fraction[u] != fb.decoded_fraction[u])
        addf(v, "frame %zu user %zu: decoded fraction differs", i, u);
    }
    if (fa.user_present != fb.user_present)
      addf(v, "frame %zu: user_present differs", i);
    if (fa.user_quarantined != fb.user_quarantined)
      addf(v, "frame %zu: user_quarantined differs", i);
    if (fa.user_ap != fb.user_ap)
      addf(v, "frame %zu: user_ap differs", i);
    if (fa.shed_symbols != fb.shed_symbols)
      addf(v, "frame %zu: shed_symbols %zu vs %zu", i, fa.shed_symbols,
           fb.shed_symbols);
    if (fa.csi_held != fb.csi_held) addf(v, "frame %zu: csi_held differs", i);
    if (fa.handoffs != fb.handoffs)
      addf(v, "frame %zu: handoffs differ", i);
    if (fa.relayed_symbols != fb.relayed_symbols)
      addf(v, "frame %zu: relayed_symbols differ", i);
    if (fa.optimizer_objective != fb.optimizer_objective)
      addf(v, "frame %zu: optimizer objective %.17g vs %.17g", i,
           fa.optimizer_objective, fb.optimizer_objective);
    if (fa.stats.packets_offered != fb.stats.packets_offered ||
        fa.stats.packets_sent != fb.stats.packets_sent ||
        fa.stats.packets_dropped_queue != fb.stats.packets_dropped_queue ||
        fa.stats.makeup_packets != fb.stats.makeup_packets ||
        fa.stats.relay_packets != fb.stats.relay_packets)
      addf(v, "frame %zu: packet stats differ", i);
    if (fa.stats.airtime != fb.stats.airtime ||
        fa.stats.relay_airtime != fb.stats.relay_airtime)
      addf(v, "frame %zu: airtime differs", i);
  }
  return v;
}

/// The model + contexts every chaos driver streams with: the shared
/// "session_test_model.cache" quality model and a 256x144 high-richness
/// clip (seed 11) split into 2-packet coding units.
inline void ensure_chaos_model(model::QualityModel& quality) {
  core::PretrainedOptions opts;
  opts.cache_path = "session_test_model.cache";
  core::ensure_trained(quality, opts);
}

inline std::vector<core::FrameContext> chaos_contexts(int width = 256,
                                                      int height = 144) {
  video::VideoSpec spec;
  spec.width = width;
  spec.height = height;
  spec.frames = 3;
  spec.seed = 11;
  return core::make_contexts(video::SyntheticVideo(spec), 2,
                             core::scaled_symbol_size(width, height));
}

}  // namespace w4k::chaos

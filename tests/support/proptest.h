// Minimal property-based testing core for the w4k test suites.
//
// A property is a callable `void prop(w4k::Rng& rng)` that draws random
// inputs from the provided generator and throws (or reports through the
// PropContext) when the property fails. The runner executes it for a
// configurable number of iterations, each with a seed derived from a base
// seed, and on failure prints the exact per-iteration seed so the failing
// case reproduces deterministically:
//
//   W4K_PROP_ITERS=500 ./tests_props          # more iterations
//   W4K_PROP_SEED=1234 ./tests_props          # different base seed
//   W4K_PROP_ITER_SEED=0xdeadbeef ./tests_props   # replay ONE iteration
//
// The core is header-only and gtest-agnostic: check_property() returns a
// Result (so the core itself is unit-testable), and the W4K_PROP macro
// wraps it into a gtest failure. Shrinking is supported for properties
// expressed over an integer "size" via shrink_size(): the runner greedily
// retries the failing seed with smaller sizes and reports the smallest
// size that still fails.
#pragma once

#include "common/rng.h"

#include <cstdint>
#include <cstdlib>
#include <functional>
#include <sstream>
#include <stdexcept>
#include <string>

namespace w4k::proptest {

struct Options {
  std::uint64_t base_seed = 0x77346b5471ULL;  // arbitrary fixed default
  int iterations = 100;
  /// If set (via W4K_PROP_ITER_SEED), run exactly one iteration with this
  /// seed — the replay knob printed in failure messages.
  bool has_replay_seed = false;
  std::uint64_t replay_seed = 0;
};

inline std::uint64_t parse_env_u64(const char* name, std::uint64_t fallback,
                                   bool* found = nullptr) {
  const char* v = std::getenv(name);
  if (found) *found = v != nullptr && *v != '\0';
  if (!v || !*v) return fallback;
  return std::strtoull(v, nullptr, 0);  // base 0: accepts decimal and 0x
}

/// Options from the environment: W4K_PROP_ITERS, W4K_PROP_SEED,
/// W4K_PROP_ITER_SEED. Called once per property so env changes between
/// gtest shards behave predictably.
inline Options options_from_env() {
  Options o;
  o.iterations = static_cast<int>(
      parse_env_u64("W4K_PROP_ITERS", static_cast<std::uint64_t>(o.iterations)));
  if (o.iterations < 1) o.iterations = 1;
  o.base_seed = parse_env_u64("W4K_PROP_SEED", o.base_seed);
  o.replay_seed = parse_env_u64("W4K_PROP_ITER_SEED", 0, &o.has_replay_seed);
  return o;
}

/// Per-iteration seed derivation: splitmix64-style mix of (base, index) so
/// neighbouring iterations are statistically independent and any failure
/// is replayable from the single printed value.
inline std::uint64_t iteration_seed(std::uint64_t base, int iteration) {
  std::uint64_t z = base + 0x9e3779b97f4a7c15ULL *
                               (static_cast<std::uint64_t>(iteration) + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

struct Result {
  bool passed = true;
  int iterations_run = 0;
  std::uint64_t failing_seed = 0;  ///< valid when !passed
  std::string message;             ///< failure description + repro line
};

/// Exception a property throws to signal "this input violates me".
class PropertyFailure : public std::runtime_error {
 public:
  explicit PropertyFailure(const std::string& what)
      : std::runtime_error(what) {}
};

/// Assertion helper for use inside properties.
inline void prop_assert(bool cond, const std::string& detail) {
  if (!cond) throw PropertyFailure(detail);
}

template <typename T>
inline void prop_assert_eq(const T& a, const T& b, const std::string& what) {
  if (!(a == b)) {
    std::ostringstream os;
    os << what << ": " << a << " != " << b;
    throw PropertyFailure(os.str());
  }
}

inline void prop_assert_near(double a, double b, double tol,
                             const std::string& what) {
  const double d = a > b ? a - b : b - a;
  if (!(d <= tol)) {
    std::ostringstream os;
    os.precision(17);
    os << what << ": |" << a << " - " << b << "| = " << d << " > " << tol;
    throw PropertyFailure(os.str());
  }
}

/// Runs `property(rng)` for opts.iterations iterations (or exactly one
/// replay iteration). Returns a Result instead of asserting so the core
/// is itself testable; use W4K_PROP for the gtest wrapper.
inline Result check_property(const std::string& name,
                             const std::function<void(Rng&)>& property,
                             const Options& opts = options_from_env()) {
  Result res;
  const int iters = opts.has_replay_seed ? 1 : opts.iterations;
  for (int i = 0; i < iters; ++i) {
    const std::uint64_t seed = opts.has_replay_seed
                                   ? opts.replay_seed
                                   : iteration_seed(opts.base_seed, i);
    Rng rng(seed);
    ++res.iterations_run;
    try {
      property(rng);
    } catch (const std::exception& e) {
      res.passed = false;
      res.failing_seed = seed;
      std::ostringstream os;
      os << "property '" << name << "' failed at iteration " << i << "/"
         << iters << ": " << e.what() << "\n  reproduce with: W4K_PROP_ITER_SEED="
         << "0x" << std::hex << seed << std::dec << " (base seed "
         << opts.base_seed << ")";
      res.message = os.str();
      return res;
    }
  }
  return res;
}

/// Size-aware variant with greedy shrinking: `property(rng, size)` is
/// first run at sizes drawn in [1, max_size]; on failure the runner
/// retries the SAME seed at smaller sizes (halving, then linear) and
/// reports the smallest size that still fails — usually a far more
/// readable counterexample.
inline Result check_sized_property(
    const std::string& name,
    const std::function<void(Rng&, std::size_t)>& property,
    std::size_t max_size, const Options& opts = options_from_env()) {
  Result res;
  const int iters = opts.has_replay_seed ? 1 : opts.iterations;
  for (int i = 0; i < iters; ++i) {
    const std::uint64_t seed = opts.has_replay_seed
                                   ? opts.replay_seed
                                   : iteration_seed(opts.base_seed, i);
    Rng size_rng(seed);
    std::size_t size =
        1 + static_cast<std::size_t>(size_rng.below(max_size));
    ++res.iterations_run;
    const auto fails_at = [&](std::size_t s, std::string* why) {
      Rng rng(seed);
      try {
        property(rng, s);
        return false;
      } catch (const std::exception& e) {
        if (why) *why = e.what();
        return true;
      }
    };
    std::string why;
    if (!fails_at(size, &why)) continue;

    // Greedy shrink: halve while still failing, then step down linearly.
    std::size_t smallest = size;
    std::string smallest_why = why;
    for (std::size_t s = size / 2; s >= 1; s /= 2) {
      if (fails_at(s, &why)) {
        smallest = s;
        smallest_why = why;
      } else {
        break;
      }
      if (s == 1) break;
    }
    while (smallest > 1 && fails_at(smallest - 1, &why)) {
      --smallest;
      smallest_why = why;
    }

    res.passed = false;
    res.failing_seed = seed;
    std::ostringstream os;
    os << "property '" << name << "' failed at iteration " << i << "/"
       << iters << " (size " << size << ", shrunk to " << smallest
       << "): " << smallest_why
       << "\n  reproduce with: W4K_PROP_ITER_SEED=0x" << std::hex << seed
       << std::dec << " (base seed " << opts.base_seed << ")";
    res.message = os.str();
    return res;
  }
  return res;
}

}  // namespace w4k::proptest

/// gtest glue: run a property lambda and report the repro line on failure.
/// Usage: W4K_PROP("name", [](w4k::Rng& rng) { ... });
/// Variadic so lambdas containing top-level commas pass through intact.
#define W4K_PROP(name, ...)                                             \
  do {                                                                  \
    const auto w4k_prop_res_ = ::w4k::proptest::check_property(         \
        (name), (__VA_ARGS__));                                         \
    if (!w4k_prop_res_.passed) ADD_FAILURE() << w4k_prop_res_.message;  \
  } while (0)

/// Sized variant: W4K_SIZED_PROP("name", max_size, [](Rng&, size_t) {...})
#define W4K_SIZED_PROP(name, max_size, ...)                             \
  do {                                                                  \
    const auto w4k_prop_res_ = ::w4k::proptest::check_sized_property(   \
        (name), (__VA_ARGS__), (max_size));                             \
    if (!w4k_prop_res_.passed) ADD_FAILURE() << w4k_prop_res_.message;  \
  } while (0)

// Random-input generators for the property suites (tests/support/proptest.h).
//
// Each generator draws from the test's deterministic Rng, so a property
// failure reproduces exactly from the printed iteration seed. Generators
// intentionally cover the awkward corners of each domain: 1-user
// geometries, minimum-size frames, empty fault plans, single-symbol units.
#pragma once

#include "channel/propagation.h"
#include "common/rng.h"
#include "core/runner.h"
#include "core/session.h"
#include "fault/plan.h"
#include "video/frame.h"

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

namespace w4k::testgen {

/// Random byte string of length in [0, max_len] — fuzz-ish parser input.
inline std::vector<std::uint8_t> bytes(Rng& rng, std::size_t max_len) {
  std::vector<std::uint8_t> out(rng.below(max_len + 1));
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.below(256));
  return out;
}

/// Random printable ASCII string (newlines included) — text-parser input.
inline std::string text(Rng& rng, std::size_t max_len) {
  static constexpr char kAlphabet[] =
      " \t\n#abcdefghijklmnopqrstuvwxyz0123456789.-_";
  std::string out(rng.below(max_len + 1), ' ');
  for (auto& c : out)
    c = kAlphabet[rng.below(sizeof(kAlphabet) - 1)];
  return out;
}

/// Frame dimensions: positive multiples of 16, small enough for tests.
inline int dimension(Rng& rng, int max_multiples = 8) {
  return 16 * static_cast<int>(1 + rng.below(
                  static_cast<std::uint64_t>(max_multiples)));
}

/// Random YUV frame with gradient + noise content (flat frames make SSIM
/// degenerate, so mix structure and noise).
inline video::Frame frame(Rng& rng, int max_multiples = 8) {
  const int w = dimension(rng, max_multiples);
  const int h = dimension(rng, max_multiples);
  video::Frame f(w, h);
  const auto fill = [&](video::Plane& p) {
    for (int y = 0; y < p.height; ++y)
      for (int x = 0; x < p.width; ++x)
        p.at(x, y) = static_cast<std::uint8_t>(
            (x * 255 / std::max(1, p.width - 1) + rng.below(64)) & 0xff);
  };
  fill(f.y);
  fill(f.u);
  fill(f.v);
  return f;
}

/// Perturbs a frame by +/-amplitude on a random subset of luma pixels —
/// for "similar but not identical" SSIM/PSNR properties.
inline video::Frame perturbed(const video::Frame& src, Rng& rng,
                              int amplitude = 8) {
  video::Frame f = src;
  for (auto& pix : f.y.pix)
    if (rng.chance(0.25)) {
      const int delta = static_cast<int>(rng.range(-amplitude, amplitude));
      pix = static_cast<std::uint8_t>(
          std::clamp(static_cast<int>(pix) + delta, 0, 255));
    }
  return f;
}

/// Random static channel geometry: n users placed in a random annulus
/// inside the array's field of view.
inline std::vector<linalg::CVector> channels(
    Rng& rng, std::size_t n_users,
    const channel::PropagationConfig& prop = {}) {
  const double min_d = rng.uniform(1.5, 6.0);
  const double max_d = min_d + rng.uniform(0.5, 12.0);
  const double mas = rng.uniform(0.2, 1.6);
  const auto users =
      core::place_users_random(n_users, min_d, max_d, mas, rng);
  return core::channels_for(prop, users);
}

/// Random session config exercising both scheduler paths and a spread of
/// engine knobs, constrained to values SessionConfig::validate accepts.
inline core::SessionConfig session_config(Rng& rng) {
  core::SessionConfig cfg;
  cfg.optimized_schedule = rng.chance(0.7);
  cfg.adapt = rng.chance(0.8);
  cfg.mcs_margin_db = rng.uniform(0.0, 2.0);
  cfg.lambda = rng.uniform(1e-9, 1e-7);
  cfg.makeup_margin = rng.uniform(0.02, 0.2);
  cfg.seed = rng.next();
  return cfg;
}

/// Random fault plan via the library's own seeded generator, with event
/// counts drawn by the test — occasionally empty (the fault-free path).
inline fault::FaultPlan fault_plan(Rng& rng, std::uint32_t n_frames,
                                   std::size_t n_users) {
  fault::RandomPlanConfig cfg;
  cfg.feedback_events = static_cast<int>(rng.below(8));
  cfg.csi_events = static_cast<int>(rng.below(5));
  cfg.blockage_bursts = static_cast<int>(rng.below(4));
  cfg.budget_collapses = static_cast<int>(rng.below(3));
  cfg.churn_events = n_users > 1 ? static_cast<int>(rng.below(3)) : 0;
  cfg.max_burst_frames = 1 + static_cast<std::uint32_t>(rng.below(8));
  return fault::FaultPlan::random(rng.next(), n_frames, n_users, cfg);
}

/// Random payload for fountain-coding round-trips: k symbols of the given
/// size with non-trivial content.
inline std::vector<std::uint8_t> payload(Rng& rng, std::size_t bytes_len) {
  std::vector<std::uint8_t> data(bytes_len);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.below(256));
  return data;
}

}  // namespace w4k::testgen

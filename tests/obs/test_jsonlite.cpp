// jsonlite strictness regressions found by the /status fuzz pass: the
// parser backs validation of every telemetry product (snapshot, trace,
// manifests, campaign shards, the w4kd /status response), so a value it
// admits must be representable — no infinities, no unpaired surrogates,
// no malformed UTF-8 smuggled through as raw bytes.
#include "obs/jsonlite.h"

#include <gtest/gtest.h>

#include <string>

namespace w4k::obs::json {
namespace {

std::optional<Value> ok(const std::string& text) {
  std::string err;
  auto v = parse(text, &err);
  EXPECT_TRUE(v.has_value()) << "rejected: " << err << " for: " << text;
  return v;
}

void rejected(const std::string& text) {
  std::string err;
  const auto v = parse(text, &err);
  EXPECT_FALSE(v.has_value()) << "accepted: " << text;
  if (!v) EXPECT_FALSE(err.empty()) << "rejection without a message";
}

TEST(Jsonlite, OverflowingNumbersAreRejected) {
  // Grammar-valid but outside the double range: the exporters never emit
  // infinities, so the validator must not materialize one.
  rejected("[1e999999]");
  rejected("[-1e999999]");
  rejected("{\"g\":1.8e308999}");
}

TEST(Jsonlite, BoundaryNumbersStillParse) {
  auto v = ok("[1.7976931348623157e308, -1.7976931348623157e308, 5e-324]");
  ASSERT_TRUE(v && v->is_array());
  EXPECT_DOUBLE_EQ(v->arr[0].number, 1.7976931348623157e308);
  EXPECT_DOUBLE_EQ(v->arr[1].number, -1.7976931348623157e308);
  // Denormal underflow is representable and stays accepted.
  EXPECT_GT(v->arr[2].number, 0.0);
}

TEST(Jsonlite, UnderflowToZeroIsAccepted) {
  auto v = ok("[1e-999999, -1e-999999]");
  ASSERT_TRUE(v && v->is_array());
  EXPECT_DOUBLE_EQ(v->arr[0].number, 0.0);
}

TEST(Jsonlite, SurrogatePairsDecodeToAstralCodePoints) {
  auto v = ok("\"\\ud83d\\ude00\"");  // U+1F600
  ASSERT_TRUE(v && v->is_string());
  EXPECT_EQ(v->str, "\xf0\x9f\x98\x80");
}

TEST(Jsonlite, UnpairedSurrogatesAreRejected) {
  rejected("\"\\ud800\"");          // lone high
  rejected("\"\\udc00\"");          // lone low
  rejected("\"\\ud800x\"");         // high followed by non-escape
  rejected("\"\\ud800\\n\"");       // high followed by other escape
  rejected("\"\\udc00\\ud800\"");   // swapped pair
  rejected("\"\\ud800\\ud800\"");   // high-high
}

TEST(Jsonlite, ValidUtf8PassesThrough) {
  auto v = ok("\"caf\xc3\xa9 \xe2\x82\xac \xf0\x9f\x9a\x80\"");
  ASSERT_TRUE(v && v->is_string());
  EXPECT_EQ(v->str, "caf\xc3\xa9 \xe2\x82\xac \xf0\x9f\x9a\x80");
}

TEST(Jsonlite, MalformedUtf8IsRejected) {
  rejected("\"caf\xc3\"");              // truncated 2-byte sequence
  rejected("\"\xe2\x82\"");             // truncated 3-byte sequence
  rejected("\"\xf0\x9f\x9a\"");         // truncated 4-byte sequence
  rejected("\"\x80\"");                 // bare continuation byte
  rejected("\"\xc0\xaf\"");             // overlong '/'
  rejected("\"\xe0\x80\x80\"");         // overlong NUL
  rejected("\"\xed\xa0\x80\"");         // raw surrogate U+D800
  rejected("\"\xf4\x90\x80\x80\"");     // > U+10FFFF
  rejected("\"\xff\"");                 // not UTF-8 at all
}

TEST(Jsonlite, DepthCapStillEnforced) {
  std::string deep(120, '[');
  deep += std::string(120, ']');
  ok(deep);
  std::string too_deep(200, '[');
  too_deep += "1";
  too_deep += std::string(200, ']');
  rejected(too_deep);
}

TEST(Jsonlite, StatusResponseShapeParses) {
  auto v = ok(
      "{\"daemon\":\"w4kd\",\"workers\":2,"
      "\"metrics\":{\"counters\":{\"serve.w0.packets_sent\":51234},"
      "\"gauges\":{\"serve.w0.subscribers\":16.0}}}");
  ASSERT_TRUE(v);
  const Value* m = v->find("metrics");
  ASSERT_NE(m, nullptr);
  const Value* c = m->find("counters");
  ASSERT_NE(c, nullptr);
  EXPECT_DOUBLE_EQ(c->obj[0].second.number, 51234.0);
}

}  // namespace
}  // namespace w4k::obs::json

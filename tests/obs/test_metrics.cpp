// MetricsRegistry semantics: identity-stable instruments, deterministic
// counts under heavy ThreadPool contention, histogram bucketing, and the
// null-sink behavior of disabled spans.
#include "obs/metrics.h"

#include "channel/propagation.h"
#include "common/thread_pool.h"
#include "obs/export.h"
#include "obs/span.h"
#include "sched/groups.h"
#include "sched/workspace.h"

#include <gtest/gtest.h>

#include <sstream>
#include <thread>
#include <vector>

namespace w4k::obs {
namespace {

class ObsMetricsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_enabled(true);
    MetricsRegistry::global().reset_values();
  }
  void TearDown() override {
    set_trace_enabled(false);
    set_enabled(false);
    MetricsRegistry::global().reset_values();
    clear_trace();
  }
};

TEST_F(ObsMetricsTest, InstrumentsAreIdentityStable) {
  auto& reg = MetricsRegistry::global();
  Counter& a = reg.counter("test.identity");
  Counter& b = reg.counter("test.identity");
  EXPECT_EQ(&a, &b);
  Stage& s1 = reg.stage("test.identity_stage");
  Stage& s2 = stage("test.identity_stage");
  EXPECT_EQ(&s1, &s2);
}

TEST_F(ObsMetricsTest, CounterDeterministicUnderPoolContention) {
  // Force a real pool even on 1-core CI so increments actually race.
  ThreadPool::reset_shared(4);
  auto& reg = MetricsRegistry::global();
  Counter& c = reg.counter("test.contended");
  constexpr std::size_t kItems = 10000;
  ThreadPool::shared().parallel_for(
      0, kItems, /*grain=*/7, [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) c.add(1);
      });
  EXPECT_EQ(c.value(), kItems);
  ThreadPool::reset_shared(0);  // restore the default size
}

TEST_F(ObsMetricsTest, StageAggregatesUnderPoolContention) {
  ThreadPool::reset_shared(4);
  Stage& st = stage("test.contended_stage");
  constexpr std::size_t kItems = 2000;
  ThreadPool::shared().parallel_for(
      0, kItems, /*grain=*/3, [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) StageSpan span(st);
      });
  EXPECT_EQ(st.count(), kItems);
  EXPECT_GE(st.total_ns(), st.max_ns());
  ThreadPool::reset_shared(0);
}

TEST_F(ObsMetricsTest, HistogramBucketsAndOverflow) {
  auto& reg = MetricsRegistry::global();
  Histogram& h = reg.histogram("test.hist", {1.0, 10.0, 100.0});
  h.observe(0.5);    // bucket 0
  h.observe(1.0);    // bucket 0 (le semantics)
  h.observe(5.0);    // bucket 1
  h.observe(1e6);    // overflow
  const auto counts = h.counts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[2], 0u);
  EXPECT_EQ(counts[3], 1u);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 5.0 + 1e6);

  // Re-registration keeps the original bounds.
  Histogram& again = reg.histogram("test.hist", {42.0});
  EXPECT_EQ(&again, &h);
  EXPECT_EQ(again.bounds().size(), 3u);
}

TEST_F(ObsMetricsTest, GaugeHoldsLastValue) {
  Gauge& g = MetricsRegistry::global().gauge("test.gauge");
  g.set(3.5);
  g.set(-1.25);
  EXPECT_DOUBLE_EQ(g.value(), -1.25);
}

TEST_F(ObsMetricsTest, ResetValuesKeepsRegistrations) {
  auto& reg = MetricsRegistry::global();
  Counter& c = reg.counter("test.reset_me");
  c.add(7);
  reg.reset_values();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(&reg.counter("test.reset_me"), &c);
}

TEST_F(ObsMetricsTest, DisabledSpansRecordNothing) {
  set_enabled(false);
  Stage& st = stage("test.disabled_stage");
  { StageSpan span(st); }
  { StageSpan span(st); }
  EXPECT_EQ(st.count(), 0u);
  EXPECT_EQ(st.total_ns(), 0u);
}

TEST_F(ObsMetricsTest, AnytimeSchedulerCountersReachSnapshots) {
  // The anytime scheduler's telemetry (candidate generation, bound
  // pruning, deadline behavior) must land in the flat JSON snapshot —
  // that's what --metrics-out and the Chrome-trace export consume. Drive
  // one real enumeration pass with telemetry on and look for the names.
  channel::PropagationConfig prop;
  std::vector<linalg::CVector> users;
  for (int i = 0; i < 3; ++i)
    users.push_back(channel::make_channel(
        prop, channel::Position::from_polar(4.0, -0.3 + 0.3 * i)));
  sched::SchedWorkspace ws;
  const auto groups = sched::enumerate_groups(
      beamforming::Scheme::kOptimizedMulticast, users,
      beamforming::Codebook{}, std::uint64_t{3}, {}, nullptr, ws);
  ASSERT_FALSE(groups.empty());

  std::ostringstream os;
  write_json_snapshot(os, MetricsRegistry::global());
  const std::string json = os.str();
  std::ostringstream ts;
  write_chrome_trace(ts);
  const std::string chrome = ts.str();
  for (const char* name :
       {"sched.anytime.candidates_generated", "sched.anytime.beamformed",
        "sched.anytime.pruned_by_bound", "sched.anytime.deferred",
        "sched.anytime.deadline_hits"}) {
    EXPECT_NE(json.find(name), std::string::npos)
        << name << " missing from the metrics snapshot";
    EXPECT_NE(chrome.find(name), std::string::npos)
        << name << " missing from the Chrome trace export";
  }
}

TEST_F(ObsMetricsTest, SnapshotsAreSortedByName) {
  auto& reg = MetricsRegistry::global();
  reg.counter("test.zz").add(1);
  reg.counter("test.aa").add(1);
  const auto values = reg.counter_values();
  ASSERT_GE(values.size(), 2u);
  for (std::size_t i = 1; i < values.size(); ++i)
    EXPECT_LT(values[i - 1].first, values[i].first);
}

}  // namespace
}  // namespace w4k::obs

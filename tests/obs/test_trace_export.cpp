// Exporter coverage: the Chrome trace_event JSON must be valid JSON with
// the expected event shape, the per-frame span set must cover the
// pipeline stages, events must nest properly per thread, and the flat
// snapshot must parse. A real (small) multicast session drives the spans
// so this doubles as an end-to-end telemetry test.
#include "obs/export.h"

#include "core/pretrained.h"
#include "core/runner.h"
#include "obs/jsonlite.h"
#include "obs/metrics.h"
#include "obs/span.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <sstream>
#include <string>
#include <vector>

namespace w4k::obs {
namespace {

constexpr int kW = 256;
constexpr int kH = 144;

class TraceExportTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    quality_ = new model::QualityModel(42);
    core::PretrainedOptions opts;
    opts.cache_path = "session_test_model.cache";
    core::ensure_trained(*quality_, opts);
    video::VideoSpec spec;
    spec.width = kW;
    spec.height = kH;
    spec.frames = 3;
    spec.seed = 11;
    contexts_ = new std::vector<core::FrameContext>(core::make_contexts(
        video::SyntheticVideo(spec), 2, core::scaled_symbol_size(kW, kH)));
  }
  static void TearDownTestSuite() {
    delete quality_;
    delete contexts_;
    quality_ = nullptr;
    contexts_ = nullptr;
  }

  void SetUp() override {
    set_enabled(true);
    set_trace_enabled(true);
    clear_trace();
    reset_trace_epoch();
    MetricsRegistry::global().reset_values();
  }
  void TearDown() override {
    set_trace_enabled(false);
    set_enabled(false);
    clear_trace();
    MetricsRegistry::global().reset_values();
  }

  static model::QualityModel* quality_;
  static std::vector<core::FrameContext>* contexts_;
};

model::QualityModel* TraceExportTest::quality_ = nullptr;
std::vector<core::FrameContext>* TraceExportTest::contexts_ = nullptr;

struct Event {
  std::string name;
  double ts = 0.0;
  double dur = 0.0;
  double tid = 0.0;
};

std::vector<Event> parse_events(const std::string& text) {
  std::string err;
  const auto doc = json::parse(text, &err);
  EXPECT_TRUE(doc.has_value()) << err;
  if (!doc) return {};
  EXPECT_TRUE(doc->is_object());
  const json::Value* events = doc->find("traceEvents");
  EXPECT_NE(events, nullptr);
  if (events == nullptr) return {};
  EXPECT_TRUE(events->is_array());
  std::vector<Event> out;
  for (const json::Value& e : events->arr) {
    EXPECT_TRUE(e.is_object());
    const json::Value* ph = e.find("ph");
    EXPECT_TRUE(ph != nullptr && ph->is_string());
    if (ph == nullptr || !ph->is_string()) continue;
    // Spans are "X"; final counter values ride along as "C" events and
    // are not part of the span-shape checks below.
    EXPECT_TRUE(ph->str == "X" || ph->str == "C") << ph->str;
    if (ph->str != "X") continue;
    const json::Value* name = e.find("name");
    EXPECT_TRUE(name != nullptr && name->is_string());
    if (name == nullptr) continue;
    Event ev;
    ev.name = name->str;
    bool fields_ok = true;
    for (auto [key, dst] : {std::pair<const char*, double*>{"ts", &ev.ts},
                            {"dur", &ev.dur},
                            {"tid", &ev.tid}}) {
      const json::Value* v = e.find(key);
      EXPECT_TRUE(v != nullptr && v->is_number()) << key;
      if (v == nullptr || !v->is_number()) fields_ok = false;
      else *dst = v->number;
    }
    if (fields_ok) out.push_back(std::move(ev));
  }
  return out;
}

TEST_F(TraceExportTest, SessionTraceHasAllPipelineStagesPerFrame) {
  Rng rng(3);
  channel::PropagationConfig prop;
  const auto chans = core::channels_for(
      prop, core::place_users_fixed(2, 3.0, 1.047, rng));
  channel::CsiTrace trace;
  trace.snapshots = {chans, chans};
  trace.positions = {{channel::Position{3, 0}, channel::Position{3, 1}},
                     {channel::Position{3, 0}, channel::Position{3, 1}}};

  core::SessionConfig cfg = core::SessionConfig::scaled(kW, kH);
  core::MulticastSession session(cfg, *quality_, beamforming::Codebook{});
  const core::SessionReport report =
      core::run_trace(session, trace, *contexts_, /*frames_per_snapshot=*/2);
  ASSERT_EQ(report.frames(), 4u);

  std::ostringstream os;
  write_chrome_trace(os);
  const auto events = parse_events(os.str());

  std::map<std::string, std::size_t> by_name;
  for (const auto& e : events) ++by_name[e.name];

  // Every frame contributes one span per pipeline stage: >= 6 named
  // stages per frame is the observability contract.
  const std::vector<std::string> stages = {
      "session.frame",    "session.beamform", "session.allocate",
      "session.unitmap",  "session.mcs",      "session.transmit",
      "session.quality"};
  for (const auto& s : stages)
    EXPECT_GE(by_name[s], report.frames()) << s;
  EXPECT_GE(stages.size(), 6u);
}

TEST_F(TraceExportTest, EventsAreWellNestedPerThread) {
  Rng rng(4);
  channel::PropagationConfig prop;
  const auto chans = core::channels_for(
      prop, core::place_users_fixed(1, 3.0, 0.5, rng));
  core::SessionConfig cfg = core::SessionConfig::scaled(kW, kH);
  core::MulticastSession session(cfg, *quality_, beamforming::Codebook{});
  (void)core::run_static(session, chans, *contexts_, 2);

  std::ostringstream os;
  write_chrome_trace(os);
  auto events = parse_events(os.str());
  ASSERT_FALSE(events.empty());

  // Within one tid, any two spans either nest or are disjoint — a child
  // must close before its parent (Chrome's renderer assumes this).
  std::map<double, std::vector<Event>> by_tid;
  for (auto& e : events) by_tid[e.tid].push_back(e);
  for (auto& [tid, evs] : by_tid) {
    std::sort(evs.begin(), evs.end(), [](const Event& a, const Event& b) {
      return a.ts < b.ts || (a.ts == b.ts && a.dur > b.dur);
    });
    std::vector<const Event*> stack;
    for (const auto& e : evs) {
      while (!stack.empty() &&
             e.ts >= stack.back()->ts + stack.back()->dur)
        stack.pop_back();
      if (!stack.empty()) {
        EXPECT_LE(e.ts + e.dur, stack.back()->ts + stack.back()->dur + 1e-6)
            << e.name << " overlaps " << stack.back()->name;
      }
      stack.push_back(&e);
    }
  }
}

TEST_F(TraceExportTest, ChromeTraceGoldenForSyntheticSpans) {
  // Deterministic shape check on a hand-built span set (no session): one
  // stage recorded twice must produce exactly two complete events with
  // non-negative ts/dur and the registered name.
  clear_trace();
  Stage& st = stage("golden.stage");
  { StageSpan span(st); }
  { StageSpan span(st); }
  EXPECT_EQ(trace_event_count(), 2u);

  std::ostringstream os;
  write_chrome_trace(os);
  const auto events = parse_events(os.str());
  ASSERT_EQ(events.size(), 2u);
  for (const auto& e : events) {
    EXPECT_EQ(e.name, "golden.stage");
    EXPECT_GE(e.ts, 0.0);
    EXPECT_GE(e.dur, 0.0);
  }
  // Events from one thread share a tid and are emitted in start order.
  EXPECT_EQ(events[0].tid, events[1].tid);
  EXPECT_LE(events[0].ts, events[1].ts);
}

TEST_F(TraceExportTest, SnapshotJsonParsesAndCoversInstruments) {
  auto& reg = MetricsRegistry::global();
  reg.counter("snap.counter").add(3);
  reg.gauge("snap.gauge").set(2.5);
  reg.histogram("snap.hist", {1.0, 2.0}).observe(1.5);
  { StageSpan span(stage("snap.stage")); }

  std::ostringstream os;
  write_json_snapshot(os, reg);
  std::string err;
  const auto parsed = json::parse(os.str(), &err);
  ASSERT_TRUE(parsed.has_value()) << err;
  const json::Value& doc = *parsed;
  ASSERT_TRUE(doc.is_object());

  const json::Value* counters = doc.find("counters");
  ASSERT_TRUE(counters != nullptr && counters->is_object());
  const json::Value* c = counters->find("snap.counter");
  ASSERT_TRUE(c != nullptr && c->is_number());
  EXPECT_DOUBLE_EQ(c->number, 3.0);

  const json::Value* gauges = doc.find("gauges");
  ASSERT_TRUE(gauges != nullptr && gauges->is_object());
  ASSERT_NE(gauges->find("snap.gauge"), nullptr);

  const json::Value* hists = doc.find("histograms");
  ASSERT_TRUE(hists != nullptr && hists->is_object());
  ASSERT_NE(hists->find("snap.hist"), nullptr);

  const json::Value* stages = doc.find("stages");
  ASSERT_TRUE(stages != nullptr && stages->is_object());
  const json::Value* st = stages->find("snap.stage");
  ASSERT_TRUE(st != nullptr && st->is_object());
  const json::Value* count = st->find("count");
  ASSERT_TRUE(count != nullptr && count->is_number());
  EXPECT_DOUBLE_EQ(count->number, 1.0);
}

TEST_F(TraceExportTest, TraceDisabledBuffersNothing) {
  set_trace_enabled(false);
  clear_trace();
  { StageSpan span(stage("quiet.stage")); }
  EXPECT_EQ(trace_event_count(), 0u);
  // Aggregation still works with capture off.
  EXPECT_EQ(stage("quiet.stage").count(), 1u);
}

}  // namespace
}  // namespace w4k::obs

// chaos_multiap — the multi-AP / relay chaos slice.
//
// Seeded random fault plans (20 by default, W4K_CHAOS_SEEDS to raise — the
// acceptance sweep uses 50) mixing AP outages (total + sector),
// handoff-beacon losses, and relay churn with the legacy fault families
// (feedback loss, CSI misses, blockage, budget collapse, user churn)
// against 2-AP, 8-user sessions with mid-session handoff and D2D peer
// relay enabled. The InvariantChecker runs in its default kThrow mode, so
// any broken conservation law (airtime budget including relay slots,
// cross-AP grouping, scheduled-while-excluded) surfaces as a throw and
// fails the run. On top of that the shared chaos harness asserts the base
// report invariants plus the multi-AP outcome shape: valid serving-AP
// indices, relay accounting that never delivers more symbols than packets
// sent, and relay airtime that stays a share of the charged total.
// Standalone (no gtest), mirroring chaos_scale; the "chaos-multiap" ctest
// label contains "chaos" so the ASan stage of scripts/tier1.sh reruns it
// sanitized.
#include "channel/multi_ap.h"
#include "core/runner.h"
#include "fault/injector.h"
#include "fault/plan.h"
#include "support/chaos_harness.h"

#include <cstdio>

namespace {

using namespace w4k;

constexpr int kW = 256;
constexpr int kH = 144;
constexpr std::size_t kUsers = 8;
constexpr std::size_t kAps = 2;
constexpr int kFrames = 12;

int report_violations(const chaos::Violations& violations,
                      std::uint64_t seed) {
  for (const std::string& what : violations)
    std::fprintf(stderr, "chaos_multiap FAIL: seed %llu: %s\n",
                 (unsigned long long)seed, what.c_str());
  return static_cast<int>(violations.size());
}

}  // namespace

int main() {
  const std::uint64_t n_seeds = chaos::seed_count(20);
  model::QualityModel quality(42);
  chaos::ensure_chaos_model(quality);
  const auto contexts = chaos::chaos_contexts(kW, kH);

  Rng place_rng(5);
  channel::PropagationConfig prop;
  channel::MultiApGeometry geo;
  geo.prop = prop;
  geo.aps = channel::default_ap_layout(kAps, prop.room);
  const auto users = core::place_users_fixed(kUsers, 3.5, 1.0, place_rng);
  const auto stacks = channel::ap_channel_stacks(geo, users);
  const auto azimuths = channel::ap_user_azimuths(geo, users);

  int failures = 0;
  for (std::uint64_t seed = 0; seed < n_seeds; ++seed) {
    fault::RandomPlanConfig rcfg;
    rcfg.n_aps = kAps;
    rcfg.ap_outages = 2;
    rcfg.handoff_beacon_losses = 2;
    rcfg.relay_churns = 2;
    const fault::FaultPlan plan = fault::FaultPlan::random(
        seed, static_cast<std::uint32_t>(kFrames), kUsers, rcfg);
    core::SessionConfig cfg = core::SessionConfig::scaled(kW, kH);
    cfg.seed = seed + 1;
    cfg.handoff.n_aps = kAps;
    cfg.handoff.enabled = true;
    cfg.handoff.min_dwell_frames = 4;
    cfg.relay.enabled = true;
    cfg.quarantine_after = 3;
    cfg.quarantine_reprobe_period = 4;
    try {
      core::MulticastSession session(cfg, quality, beamforming::Codebook{});
      const fault::FaultInjector injector(plan, kUsers, kAps);
      const core::SessionReport report = core::run_static_multi_ap(
          session, stacks, contexts, kFrames, injector, azimuths);
      failures += report_violations(
          chaos::check_report_invariants(report, kFrames, kUsers), seed);
      failures += report_violations(
          chaos::check_multi_ap_shape(report, kUsers, kAps), seed);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "chaos_multiap FAIL: seed %llu threw: %s\n",
                   (unsigned long long)seed, e.what());
      ++failures;
    }
    if (failures > 0) break;  // first violation is enough signal
  }

  if (failures > 0) {
    std::fprintf(stderr, "chaos_multiap: FAILED (%d violations)\n", failures);
    return 1;
  }
  std::printf("chaos_multiap: %llu seeds x %d frames at N=%zu, %zu APs, "
              "handoff + relay on: all invariants held\n",
              (unsigned long long)n_seeds, kFrames, kUsers, kAps);
  return 0;
}

// chaos_multiap — the multi-AP / relay chaos slice.
//
// 20 seeded random fault plans mixing AP outages (total + sector),
// handoff-beacon losses, and relay churn with the legacy fault families
// (feedback loss, CSI misses, blockage, budget collapse, user churn)
// against 2-AP, 8-user sessions with mid-session handoff and D2D peer
// relay enabled. The InvariantChecker runs in its default kThrow mode, so
// any broken conservation law (airtime budget including relay slots,
// cross-AP grouping, scheduled-while-excluded) surfaces as a throw and
// fails the run. On top of that this binary asserts the multi-AP outcome
// shape: valid serving-AP indices, relay accounting that never delivers
// more symbols than packets sent, and relay airtime that stays a share of
// the charged total. Standalone (no gtest), mirroring chaos_scale; the
// "chaos-multiap" ctest label contains "chaos" so the ASan stage of
// scripts/tier1.sh reruns it sanitized.
#include "channel/multi_ap.h"
#include "core/pretrained.h"
#include "core/runner.h"
#include "fault/injector.h"
#include "fault/plan.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace {

using namespace w4k;

constexpr int kW = 256;
constexpr int kH = 144;
constexpr std::size_t kUsers = 8;
constexpr std::size_t kAps = 2;
constexpr int kFrames = 12;
// CI runs the default 20-seed slice; W4K_CHAOS_SEEDS raises it (the
// acceptance sweep uses 50).
constexpr std::uint64_t kSeedsDefault = 20;

int failures = 0;

#define CHECK(cond, ...)                                        \
  do {                                                          \
    if (!(cond)) {                                              \
      std::fprintf(stderr, "chaos_multiap FAIL: " __VA_ARGS__); \
      std::fprintf(stderr, " [%s]\n", #cond);                   \
      ++failures;                                               \
    }                                                           \
  } while (0)

void check_frames(const core::SessionReport& report, std::uint64_t seed) {
  CHECK(report.frames() == static_cast<std::size_t>(kFrames),
        "seed %llu: frame count %zu", (unsigned long long)seed,
        report.frames());
  for (std::size_t i = 0; i < report.frames(); ++i) {
    const core::FrameOutcome& f = report.frame(i);
    CHECK(f.frame_id == static_cast<std::uint32_t>(i),
          "seed %llu frame %zu: id %u", (unsigned long long)seed, i,
          f.frame_id);
    CHECK(f.user_ap.size() == kUsers,
          "seed %llu frame %zu: user_ap size %zu", (unsigned long long)seed,
          i, f.user_ap.size());
    for (std::size_t u = 0; u < f.user_ap.size(); ++u)
      CHECK(f.user_ap[u] < kAps, "seed %llu frame %zu user %zu: ap %u",
            (unsigned long long)seed, i, u, f.user_ap[u]);
    CHECK(f.ssim.size() == kUsers && f.decoded_fraction.size() == kUsers,
          "seed %llu frame %zu: per-user vector sizes",
          (unsigned long long)seed, i);
    for (double s : f.ssim)
      CHECK(std::isfinite(s) && s >= 0.0 && s <= 1.0,
            "seed %llu frame %zu: ssim %f", (unsigned long long)seed, i, s);
    CHECK(f.relayed_symbols <= f.stats.relay_packets,
          "seed %llu frame %zu: %zu symbols from %zu relay packets",
          (unsigned long long)seed, i, f.relayed_symbols,
          f.stats.relay_packets);
    CHECK(std::isfinite(f.stats.airtime) && f.stats.airtime >= 0.0,
          "seed %llu frame %zu: airtime", (unsigned long long)seed, i);
    CHECK(f.stats.relay_airtime >= 0.0 &&
              f.stats.relay_airtime <= f.stats.airtime + 1e-12,
          "seed %llu frame %zu: relay airtime %f of %f",
          (unsigned long long)seed, i, f.stats.relay_airtime,
          f.stats.airtime);
  }
}

}  // namespace

int main() {
  std::uint64_t n_seeds = kSeedsDefault;
  if (const char* env = std::getenv("W4K_CHAOS_SEEDS")) {
    const long v = std::atol(env);
    if (v > 0) n_seeds = static_cast<std::uint64_t>(v);
  }
  model::QualityModel quality(42);
  core::PretrainedOptions opts;
  opts.cache_path = "session_test_model.cache";
  core::ensure_trained(quality, opts);

  video::VideoSpec spec;
  spec.width = kW;
  spec.height = kH;
  spec.frames = 3;
  spec.seed = 11;
  const auto contexts = core::make_contexts(
      video::SyntheticVideo(spec), 2, core::scaled_symbol_size(kW, kH));

  Rng place_rng(5);
  channel::PropagationConfig prop;
  channel::MultiApGeometry geo;
  geo.prop = prop;
  geo.aps = channel::default_ap_layout(kAps, prop.room);
  const auto users = core::place_users_fixed(kUsers, 3.5, 1.0, place_rng);
  const auto stacks = channel::ap_channel_stacks(geo, users);
  const auto azimuths = channel::ap_user_azimuths(geo, users);

  for (std::uint64_t seed = 0; seed < n_seeds; ++seed) {
    fault::RandomPlanConfig rcfg;
    rcfg.n_aps = kAps;
    rcfg.ap_outages = 2;
    rcfg.handoff_beacon_losses = 2;
    rcfg.relay_churns = 2;
    const fault::FaultPlan plan = fault::FaultPlan::random(
        seed, static_cast<std::uint32_t>(kFrames), kUsers, rcfg);
    core::SessionConfig cfg = core::SessionConfig::scaled(kW, kH);
    cfg.seed = seed + 1;
    cfg.handoff.n_aps = kAps;
    cfg.handoff.enabled = true;
    cfg.handoff.min_dwell_frames = 4;
    cfg.relay.enabled = true;
    cfg.quarantine_after = 3;
    cfg.quarantine_reprobe_period = 4;
    try {
      core::MulticastSession session(cfg, quality, beamforming::Codebook{});
      const fault::FaultInjector injector(plan, kUsers, kAps);
      const core::SessionReport report = core::run_static_multi_ap(
          session, stacks, contexts, kFrames, injector, azimuths);
      check_frames(report, seed);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "chaos_multiap FAIL: seed %llu threw: %s\n",
                   (unsigned long long)seed, e.what());
      ++failures;
    }
    if (failures > 0) break;  // first violation is enough signal
  }

  if (failures > 0) {
    std::fprintf(stderr, "chaos_multiap: FAILED (%d violations)\n", failures);
    return 1;
  }
  std::printf("chaos_multiap: %llu seeds x %d frames at N=%zu, %zu APs, "
              "handoff + relay on: all invariants held\n",
              (unsigned long long)n_seeds, kFrames, kUsers, kAps);
  return 0;
}

// chaos_scale — the chaos suite's N=32 slice, deadline on.
//
// Seeded random fault plans (20 by default, W4K_CHAOS_SEEDS to raise)
// against a 32-user session running the full anytime scheduler
// (cluster-tree candidates, rate-bound pruning, batched beamforming,
// decide_deadline_ms cutoff). The invariants come from the shared chaos
// harness (tests/support/chaos_harness.h): no crash/throw, monotonic frame
// ids, well-formed per-user outputs, finite aggregates. Determinism is
// deliberately NOT asserted here — the deadline makes decide()
// clock-dependent by design; the purity suites cover the deadline-off
// path. Standalone binary (no gtest) so scripts/tier1.sh can run it as one
// fast stage; exits non-zero on the first violated invariant.
#include "core/runner.h"
#include "fault/plan.h"
#include "support/chaos_harness.h"

#include <cstdio>

namespace {

using namespace w4k;

constexpr int kW = 256;
constexpr int kH = 144;
constexpr std::size_t kUsers = 32;
constexpr int kFrames = 5;

int report_violations(const chaos::Violations& violations,
                      std::uint64_t seed) {
  for (const std::string& what : violations)
    std::fprintf(stderr, "chaos_scale FAIL: seed %llu: %s\n",
                 (unsigned long long)seed, what.c_str());
  return static_cast<int>(violations.size());
}

}  // namespace

int main() {
  const std::uint64_t n_seeds = chaos::seed_count(20);
  model::QualityModel quality(42);
  chaos::ensure_chaos_model(quality);
  const auto contexts = chaos::chaos_contexts(kW, kH);

  Rng place_rng(5);
  channel::PropagationConfig prop;
  const auto channels = core::channels_for(
      prop, core::place_users_fixed(kUsers, 4.0, 1.0, place_rng));

  int failures = 0;
  for (std::uint64_t seed = 0; seed < n_seeds; ++seed) {
    const fault::FaultPlan plan = fault::FaultPlan::random(
        seed, static_cast<std::uint32_t>(kFrames), kUsers);
    core::SessionConfig cfg = core::SessionConfig::scaled(kW, kH);
    cfg.seed = seed + 1;
    cfg.mcs_margin_db = 1.0;
    cfg.decide_deadline_ms = 20.0;  // the anytime cutoff under test
    try {
      core::MulticastSession session(cfg, quality, beamforming::Codebook{});
      const fault::FaultInjector injector(plan, kUsers);
      const core::SessionReport report =
          core::run_static(session, channels, contexts, kFrames, injector);
      failures += report_violations(
          chaos::check_report_invariants(report, kFrames, kUsers), seed);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "chaos_scale FAIL: seed %llu threw: %s\n",
                   (unsigned long long)seed, e.what());
      ++failures;
    }
    if (failures > 0) break;  // first violation is enough signal
  }

  if (failures > 0) {
    std::fprintf(stderr, "chaos_scale: FAILED (%d violations)\n", failures);
    return 1;
  }
  std::printf("chaos_scale: %llu seeds x %d frames at N=%zu (deadline 20 ms)"
              ": all invariants held\n",
              (unsigned long long)n_seeds, kFrames, kUsers);
  return 0;
}

// chaos_scale — the chaos suite's N=32 slice, deadline on.
//
// 20 seeded random fault plans against a 32-user session running the full
// anytime scheduler (cluster-tree candidates, rate-bound pruning, batched
// beamforming, decide_deadline_ms cutoff). Mirrors the core chaos
// invariants from tests/system/test_chaos.cpp: no crash/throw, monotonic
// frame ids, well-formed per-user outputs, finite aggregates. Determinism
// is deliberately NOT asserted here — the deadline makes decide()
// clock-dependent by design; the purity suites cover the deadline-off
// path. Standalone binary (no gtest) so scripts/tier1.sh can run it as one
// fast stage; exits non-zero on the first violated invariant.
#include "core/pretrained.h"
#include "core/runner.h"
#include "fault/plan.h"

#include <cmath>
#include <cstdio>

namespace {

using namespace w4k;

constexpr int kW = 256;
constexpr int kH = 144;
constexpr std::size_t kUsers = 32;
constexpr int kFrames = 5;
constexpr std::uint64_t kSeeds = 20;

int failures = 0;

#define CHECK(cond, ...)                                        \
  do {                                                          \
    if (!(cond)) {                                              \
      std::fprintf(stderr, "chaos_scale FAIL: " __VA_ARGS__);   \
      std::fprintf(stderr, " [%s]\n", #cond);                   \
      ++failures;                                               \
    }                                                           \
  } while (0)

void check_invariants(const core::SessionReport& report,
                      std::uint64_t seed) {
  CHECK(report.frames() == static_cast<std::size_t>(kFrames),
        "seed %llu: frame count %zu", (unsigned long long)seed,
        report.frames());
  for (std::size_t i = 0; i < report.frames(); ++i) {
    const core::FrameOutcome& f = report.frame(i);
    CHECK(f.frame_id == static_cast<std::uint32_t>(i),
          "seed %llu frame %zu: id %u", (unsigned long long)seed, i,
          f.frame_id);
    CHECK(f.ssim.size() == kUsers && f.psnr.size() == kUsers &&
              f.decoded_fraction.size() == kUsers,
          "seed %llu frame %zu: per-user vector sizes",
          (unsigned long long)seed, i);
    if (f.ssim.size() != kUsers) return;  // avoid cascading OOB below
    for (std::size_t u = 0; u < kUsers; ++u) {
      CHECK(std::isfinite(f.ssim[u]) && f.ssim[u] >= 0.0 && f.ssim[u] <= 1.0,
            "seed %llu frame %zu user %zu: ssim %f",
            (unsigned long long)seed, i, u, f.ssim[u]);
      CHECK(std::isfinite(f.psnr[u]), "seed %llu frame %zu user %zu: psnr",
            (unsigned long long)seed, i, u);
      CHECK(f.decoded_fraction[u] >= 0.0 && f.decoded_fraction[u] <= 1.0,
            "seed %llu frame %zu user %zu: decoded fraction",
            (unsigned long long)seed, i, u);
    }
    CHECK(f.stats.packets_sent >= f.stats.makeup_packets,
          "seed %llu frame %zu: makeup exceeds sent",
          (unsigned long long)seed, i);
    CHECK(std::isfinite(f.stats.airtime) && f.stats.airtime >= 0.0,
          "seed %llu frame %zu: airtime", (unsigned long long)seed, i);
  }
  const auto per_user = report.per_user_mean_ssim();
  CHECK(per_user.size() == kUsers, "seed %llu: aggregate size",
        (unsigned long long)seed);
  for (double s : per_user)
    CHECK(std::isfinite(s), "seed %llu: non-finite mean ssim",
          (unsigned long long)seed);
}

}  // namespace

int main() {
  model::QualityModel quality(42);
  core::PretrainedOptions opts;
  opts.cache_path = "session_test_model.cache";
  core::ensure_trained(quality, opts);

  video::VideoSpec spec;
  spec.width = kW;
  spec.height = kH;
  spec.frames = 3;
  spec.seed = 11;
  const auto contexts = core::make_contexts(
      video::SyntheticVideo(spec), 2, core::scaled_symbol_size(kW, kH));

  Rng place_rng(5);
  channel::PropagationConfig prop;
  const auto channels = core::channels_for(
      prop, core::place_users_fixed(kUsers, 4.0, 1.0, place_rng));

  for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
    const fault::FaultPlan plan = fault::FaultPlan::random(
        seed, static_cast<std::uint32_t>(kFrames), kUsers);
    core::SessionConfig cfg = core::SessionConfig::scaled(kW, kH);
    cfg.seed = seed + 1;
    cfg.mcs_margin_db = 1.0;
    cfg.decide_deadline_ms = 20.0;  // the anytime cutoff under test
    try {
      core::MulticastSession session(cfg, quality, beamforming::Codebook{});
      const fault::FaultInjector injector(plan, kUsers);
      const core::SessionReport report =
          core::run_static(session, channels, contexts, kFrames, injector);
      check_invariants(report, seed);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "chaos_scale FAIL: seed %llu threw: %s\n",
                   (unsigned long long)seed, e.what());
      ++failures;
    }
    if (failures > 0) break;  // first violation is enough signal
  }

  if (failures > 0) {
    std::fprintf(stderr, "chaos_scale: FAILED (%d violations)\n", failures);
    return 1;
  }
  std::printf("chaos_scale: %llu seeds x %d frames at N=%zu (deadline 20 ms)"
              ": all invariants held\n",
              (unsigned long long)kSeeds, kFrames, kUsers);
  return 0;
}

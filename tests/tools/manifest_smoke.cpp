// bench_smoke driver: runs one bench binary with W4K_MANIFEST_DIR pointed
// at the working directory, then validates that the run-manifest JSON it
// emits parses and carries the required sections (config echo,
// environment with the CPU dispatch tier and pool size, per-stage span
// summary). Exercises the same BenchMain path every bench binary uses, so
// a broken manifest writer fails tier-1 instead of silently producing
// unreadable BENCH_* artifacts.
//
// Usage: manifest_smoke <path-to-bench-binary> <manifest-name>
#include "obs/jsonlite.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

namespace {

int fail(const std::string& msg) {
  std::fprintf(stderr, "manifest_smoke: %s\n", msg.c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 3)
    return fail("usage: manifest_smoke <bench-binary> <manifest-name>");
  const std::string binary = argv[1];
  const std::string manifest = std::string(argv[2]) + ".manifest.json";

  // Write the manifest into the ctest working directory.
  if (setenv("W4K_MANIFEST_DIR", ".", /*overwrite=*/1) != 0)
    return fail("setenv failed");
  std::remove(manifest.c_str());

  const std::string cmd = "\"" + binary + "\" > manifest_smoke_bench.log 2>&1";
  const int rc = std::system(cmd.c_str());
  if (rc != 0)
    return fail("bench exited with status " + std::to_string(rc) +
                " (see manifest_smoke_bench.log)");

  std::ifstream in(manifest);
  if (!in) return fail("bench did not write " + manifest);
  std::stringstream buf;
  buf << in.rdbuf();

  std::string err;
  const auto doc = w4k::obs::json::parse(buf.str(), &err);
  if (!doc) return fail(manifest + " is not valid JSON: " + err);
  if (!doc->is_object()) return fail("manifest root is not an object");

  const auto* name = doc->find("name");
  if (name == nullptr || !name->is_string() || name->str != argv[2])
    return fail("manifest \"name\" missing or wrong");

  const auto* env = doc->find("environment");
  if (env == nullptr || !env->is_object())
    return fail("manifest \"environment\" missing");
  for (const char* key : {"gf256_tier", "pool_threads", "telemetry"})
    if (env->find(key) == nullptr)
      return fail(std::string("environment.") + key + " missing");

  const auto* config = doc->find("config");
  if (config == nullptr || !config->is_object())
    return fail("manifest \"config\" missing");

  const auto* stages = doc->find("stages");
  if (stages == nullptr || !stages->is_object())
    return fail("manifest \"stages\" missing");

  std::printf("manifest_smoke: %s OK (%zu stages)\n", manifest.c_str(),
              stages->obj.size());
  return 0;
}

#include "model/baselines.h"
#include "model/dataset.h"
#include "model/quality_model.h"

#include <gtest/gtest.h>

namespace w4k::model {
namespace {

Dataset psnr_dataset() {
  auto specs = video::standard_videos(128, 128, 3);
  specs.resize(3);
  DatasetConfig cfg;
  cfg.frames_per_video = 2;
  cfg.fractions_per_frame = 30;
  cfg.metric = TargetMetric::kPsnr;
  return build_dataset(specs, cfg);
}

TEST(PsnrModel, LabelsAreNormalizedPsnr) {
  const Dataset ds = psnr_dataset();
  ASSERT_FALSE(ds.train.empty());
  for (const auto& ex : ds.train) {
    EXPECT_GE(ex.y, 0.0);
    EXPECT_LE(ex.y, 1.0);
    // PSNR anchors (features 4-8) normalized too.
    for (std::size_t i = 4; i < kFeatureCount; ++i) {
      EXPECT_GE(ex.x[i], 0.0);
      EXPECT_LE(ex.x[i], 1.0);
    }
  }
}

TEST(PsnrModel, AnchorsDifferFromSsim) {
  auto specs = video::standard_videos(128, 128, 2);
  specs.resize(1);
  DatasetConfig ssim_cfg;
  ssim_cfg.frames_per_video = 1;
  ssim_cfg.fractions_per_frame = 4;
  DatasetConfig psnr_cfg = ssim_cfg;
  psnr_cfg.metric = TargetMetric::kPsnr;
  const Dataset a = build_dataset(specs, ssim_cfg);
  const Dataset b = build_dataset(specs, psnr_cfg);
  // Feature 4 is the layer-0 anchor: SSIM vs normalized PSNR of the same
  // reconstruction differ.
  const auto& xa = a.train.empty() ? a.test.front().x : a.train.front().x;
  const auto& xb = b.train.empty() ? b.test.front().x : b.train.front().x;
  EXPECT_NE(xa[4], xb[4]);
}

TEST(PsnrModel, DnnLearnsPsnrTargets) {
  const Dataset ds = psnr_dataset();
  QualityModel dnn(42);
  TrainConfig tc;
  tc.epochs = 1000;
  dnn.train(ds.train, tc);
  const double mse = dnn.evaluate(ds.test);
  EXPECT_LT(mse, 3e-3);  // ~ <= 2.7 dB RMS at the 50 dB scale

  // And it must beat linear regression, like the SSIM variant does.
  LinearRegression lr;
  lr.fit(ds.train);
  EXPECT_LT(mse, lr.evaluate(ds.test));
}

TEST(PsnrModel, FullReceptionPredictsNearLossless) {
  const Dataset ds = psnr_dataset();
  QualityModel dnn(42);
  TrainConfig tc;
  tc.epochs = 1000;
  dnn.train(ds.train, tc);
  for (const auto& ex : ds.test) {
    if (ex.x[0] == 1.0 && ex.x[1] == 1.0 && ex.x[2] == 1.0 &&
        ex.x[3] == 1.0) {
      Features f;
      for (std::size_t l = 0; l < 4; ++l) {
        f.fraction[l] = ex.x[l];
        f.up_to_layer[l] = ex.x[l + 4];
      }
      f.blank = ex.x[8];
      // 0.9 normalized = 45 dB: effectively lossless territory.
      EXPECT_GT(dnn.predict(f), 0.85);
    }
  }
}

}  // namespace
}  // namespace w4k::model

#include "model/dataset.h"

#include <gtest/gtest.h>

namespace w4k::model {
namespace {

std::vector<video::VideoSpec> tiny_videos() {
  auto specs = video::standard_videos(64, 64, 4);
  specs.resize(2);  // one HR + keep it fast
  return specs;
}

TEST(Features, ToInputLayout) {
  Features f;
  f.fraction = {0.1, 0.2, 0.3, 0.4};
  f.up_to_layer = {0.5, 0.6, 0.7, 0.8};
  f.blank = 0.9;
  const Vec x = f.to_input();
  ASSERT_EQ(x.size(), kFeatureCount);
  EXPECT_DOUBLE_EQ(x[0], 0.1);
  EXPECT_DOUBLE_EQ(x[3], 0.4);
  EXPECT_DOUBLE_EQ(x[4], 0.5);
  EXPECT_DOUBLE_EQ(x[7], 0.8);
  EXPECT_DOUBLE_EQ(x[8], 0.9);
}

TEST(PartialFromFractions, ZeroGivesNothing) {
  const video::SyntheticVideo clip(tiny_videos()[0]);
  const auto enc = video::encode(clip.frame(0));
  const auto p = partial_from_fractions(enc, {0.0, 0.0, 0.0, 0.0});
  for (int l = 0; l < video::kNumLayers; ++l)
    EXPECT_EQ(p.layer_received(l), 0u);
}

TEST(PartialFromFractions, OneGivesEverything) {
  const video::SyntheticVideo clip(tiny_videos()[0]);
  const auto enc = video::encode(clip.frame(0));
  const auto p = partial_from_fractions(enc, {1.0, 1.0, 1.0, 1.0});
  for (int l = 0; l < video::kNumLayers; ++l)
    EXPECT_EQ(p.layer_received(l), video::layer_bytes(l, 64, 64));
}

TEST(PartialFromFractions, HalfGivesHalfTheBytes) {
  const video::SyntheticVideo clip(tiny_videos()[0]);
  const auto enc = video::encode(clip.frame(0));
  const auto p = partial_from_fractions(enc, {0.5, 0.5, 0.5, 0.5});
  for (int l = 0; l < video::kNumLayers; ++l)
    EXPECT_NEAR(static_cast<double>(p.layer_received(l)),
                0.5 * static_cast<double>(video::layer_bytes(l, 64, 64)), 2.0);
}

TEST(PartialFromFractions, FillsSublayersInOrder) {
  const video::SyntheticVideo clip(tiny_videos()[0]);
  const auto enc = video::encode(clip.frame(0));
  // A quarter of layer 1 = exactly sublayer 0.
  const auto p = partial_from_fractions(enc, {0.0, 0.25, 0.0, 0.0});
  EXPECT_FALSE(p.layers[1][0].segments.empty());
  EXPECT_TRUE(p.layers[1][1].segments.empty());
  EXPECT_TRUE(p.layers[1][3].segments.empty());
}

TEST(PartialFromFractions, OutOfRangeFractionsClamped) {
  const video::SyntheticVideo clip(tiny_videos()[0]);
  const auto enc = video::encode(clip.frame(0));
  EXPECT_NO_THROW(partial_from_fractions(enc, {-0.5, 2.0, 0.5, 0.5}));
}

TEST(BuildDataset, SplitProportionsAndSizes) {
  DatasetConfig cfg;
  cfg.frames_per_video = 2;
  cfg.fractions_per_frame = 10;
  const Dataset ds = build_dataset(tiny_videos(), cfg);
  const std::size_t total = ds.train.size() + ds.test.size();
  EXPECT_EQ(total, 2u * 2u * 10u);
  EXPECT_NEAR(static_cast<double>(ds.train.size()) / total, 0.7, 0.05);
}

TEST(BuildDataset, LabelsAreValidSsim) {
  DatasetConfig cfg;
  cfg.frames_per_video = 1;
  cfg.fractions_per_frame = 8;
  const Dataset ds = build_dataset(tiny_videos(), cfg);
  for (const auto& ex : ds.train) {
    EXPECT_GE(ex.y, -0.2);
    EXPECT_LE(ex.y, 1.0);
    ASSERT_EQ(ex.x.size(), kFeatureCount);
    for (std::size_t i = 0; i < 4; ++i) {
      EXPECT_GE(ex.x[i], 0.0);
      EXPECT_LE(ex.x[i], 1.0);
    }
  }
}

TEST(BuildDataset, FullReceptionLabelNearPerfect) {
  // Dataset rows with all-ones fractions must have labels near 1.
  DatasetConfig cfg;
  cfg.frames_per_video = 1;
  cfg.fractions_per_frame = 40;
  const Dataset ds = build_dataset(tiny_videos(), cfg);
  for (const auto& set : {ds.train, ds.test}) {
    for (const auto& ex : set) {
      if (ex.x[0] == 1.0 && ex.x[1] == 1.0 && ex.x[2] == 1.0 && ex.x[3] == 1.0)
        EXPECT_GT(ex.y, 0.98);
    }
  }
}

TEST(BuildDataset, Deterministic) {
  DatasetConfig cfg;
  cfg.frames_per_video = 1;
  cfg.fractions_per_frame = 5;
  const Dataset a = build_dataset(tiny_videos(), cfg);
  const Dataset b = build_dataset(tiny_videos(), cfg);
  ASSERT_EQ(a.train.size(), b.train.size());
  for (std::size_t i = 0; i < a.train.size(); ++i) {
    EXPECT_EQ(a.train[i].x, b.train[i].x);
    EXPECT_DOUBLE_EQ(a.train[i].y, b.train[i].y);
  }
}

TEST(BuildDataset, MoreLayersReceivedHigherLabel) {
  // Sanity on the monotone relationship the model must learn: compare the
  // all-zero row against the all-one row for the same frame.
  const video::SyntheticVideo clip(tiny_videos()[0]);
  const auto frame = clip.frame(0);
  const auto enc = video::encode(frame);
  const auto none = video::reconstruct(
      partial_from_fractions(enc, {0.0, 0.0, 0.0, 0.0}));
  const auto all = video::reconstruct(
      partial_from_fractions(enc, {1.0, 1.0, 1.0, 1.0}));
  EXPECT_GT(quality::ssim(frame, all), quality::ssim(frame, none));
}

}  // namespace
}  // namespace w4k::model

#include "model/nn.h"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

namespace w4k::model {
namespace {

TEST(Dense, ForwardLinearKnownValues) {
  Rng rng(1);
  Dense layer(2, 1, /*sigmoid=*/false, rng);
  // Overwrite weights via save/load round-trip format.
  std::stringstream ss;
  ss << "2 1 0\n3.0 -2.0\n0.5\n";
  layer.load(ss);
  const Vec out = layer.forward({1.0, 2.0});
  EXPECT_NEAR(out[0], 3.0 - 4.0 + 0.5, 1e-12);
}

TEST(Dense, SigmoidSquashes) {
  Rng rng(2);
  Dense layer(1, 1, /*sigmoid=*/true, rng);
  std::stringstream ss;
  ss << "1 1 1\n100.0\n0.0\n";
  layer.load(ss);
  EXPECT_NEAR(layer.forward({1.0})[0], 1.0, 1e-6);
  EXPECT_NEAR(layer.forward({-1.0})[0], 0.0, 1e-6);
  EXPECT_NEAR(layer.forward({0.0})[0], 0.5, 1e-12);
}

TEST(Dense, InputSizeMismatchThrows) {
  Rng rng(3);
  Dense layer(3, 2, false, rng);
  EXPECT_THROW(layer.forward({1.0}), std::invalid_argument);
}

TEST(Network, GradientMatchesFiniteDifference) {
  // The core correctness property of backprop.
  Network net = Network::quality_topology(4, 2, 77);
  const Vec x{0.3, 0.7, 0.1, 0.9};
  const Vec analytic = net.input_gradient(x);
  const double eps = 1e-6;
  for (std::size_t i = 0; i < x.size(); ++i) {
    Vec xp = x, xm = x;
    xp[i] += eps;
    xm[i] -= eps;
    const double numeric =
        (net.forward(xp)[0] - net.forward(xm)[0]) / (2.0 * eps);
    EXPECT_NEAR(analytic[i], numeric, 1e-5) << "input " << i;
  }
}

TEST(Network, WeightGradientDescendsLoss) {
  // One Adam step on a single example must reduce squared error.
  Network net = Network::quality_topology(3, 2, 5);
  const Vec x{0.5, 0.5, 0.5};
  const double target = 0.25;
  const double before = net.forward(x)[0];
  for (int i = 0; i < 50; ++i) {
    net.zero_grad();
    const double err = net.forward(x)[0] - target;
    net.backward({2.0 * err});
    net.adam_step(0.01, i + 1, 1);
  }
  const double after = net.forward(x)[0];
  EXPECT_LT(std::abs(after - target), std::abs(before - target));
  EXPECT_NEAR(after, target, 0.02);
}

TEST(Network, QualityTopologyShape) {
  Network net = Network::quality_topology(9, 5, 42);
  EXPECT_EQ(net.layer_count(), 6u);  // 5 hidden + 1 head
  const Vec out = net.forward(Vec(9, 0.5));
  EXPECT_EQ(out.size(), 1u);
}

TEST(Network, SaveLoadRoundTrip) {
  Network a = Network::quality_topology(5, 3, 9);
  const Vec x{0.1, 0.9, 0.4, 0.6, 0.2};
  const double before = a.forward(x)[0];
  std::stringstream ss;
  a.save(ss);
  Network b = Network::quality_topology(5, 3, 1);  // different init
  EXPECT_NE(b.forward(x)[0], before);
  b.load(ss);
  EXPECT_DOUBLE_EQ(b.forward(x)[0], before);
}

TEST(Network, LoadTopologyMismatchThrows) {
  Network a = Network::quality_topology(5, 3, 9);
  std::stringstream ss;
  a.save(ss);
  Network b = Network::quality_topology(4, 3, 1);
  EXPECT_THROW(b.load(ss), std::runtime_error);
}

TEST(Network, InputGradientRequiresSingleOutput) {
  Rng rng(10);
  Network net;
  net.add_layer(Dense(3, 2, false, rng));
  EXPECT_THROW(net.input_gradient({1.0, 2.0, 3.0}), std::logic_error);
}

TEST(Training, LearnsLinearFunction) {
  // y = 0.2 x0 + 0.5 x1 + 0.1, trivially learnable.
  Rng rng(11);
  std::vector<Example> data;
  for (int i = 0; i < 256; ++i) {
    Example ex;
    ex.x = {rng.uniform(), rng.uniform()};
    ex.y = 0.2 * ex.x[0] + 0.5 * ex.x[1] + 0.1;
    data.push_back(ex);
  }
  Network net = Network::quality_topology(2, 2, 13);
  TrainConfig cfg;
  cfg.epochs = 800;
  const double mse = train_mse(net, data, cfg);
  EXPECT_LT(mse, 2e-4);
  EXPECT_LT(evaluate_mse(net, data), 2e-4);
}

TEST(Training, LearnsNonlinearFunction) {
  // y = x0 * x1 needs the hidden nonlinearity.
  Rng rng(12);
  std::vector<Example> data;
  for (int i = 0; i < 512; ++i) {
    Example ex;
    ex.x = {rng.uniform(), rng.uniform()};
    ex.y = ex.x[0] * ex.x[1];
    data.push_back(ex);
  }
  Network net = Network::quality_topology(2, 3, 14);
  TrainConfig cfg;
  cfg.epochs = 1500;
  const double mse = train_mse(net, data, cfg);
  EXPECT_LT(mse, 2e-3);
}

TEST(Training, EarlyStopOnTarget) {
  Rng rng(15);
  std::vector<Example> data;
  for (int i = 0; i < 64; ++i) {
    Example ex;
    ex.x = {rng.uniform()};
    ex.y = 0.5;
    data.push_back(ex);
  }
  Network net = Network::quality_topology(1, 1, 16);
  TrainConfig cfg;
  cfg.epochs = 100000;  // would take forever without early stop
  cfg.target_mse = 1e-5;
  const double mse = train_mse(net, data, cfg);
  EXPECT_LT(mse, 1e-5);
}

TEST(Training, EmptyDatasetThrows) {
  Network net = Network::quality_topology(2, 1, 17);
  EXPECT_THROW(train_mse(net, {}, TrainConfig{}), std::invalid_argument);
}

TEST(Training, DeterministicGivenSeeds) {
  Rng rng(18);
  std::vector<Example> data;
  for (int i = 0; i < 64; ++i) {
    Example ex;
    ex.x = {rng.uniform(), rng.uniform()};
    ex.y = ex.x[0];
    data.push_back(ex);
  }
  TrainConfig cfg;
  cfg.epochs = 50;
  Network a = Network::quality_topology(2, 2, 19);
  Network b = Network::quality_topology(2, 2, 19);
  train_mse(a, data, cfg);
  train_mse(b, data, cfg);
  EXPECT_DOUBLE_EQ(a.forward({0.3, 0.4})[0], b.forward({0.3, 0.4})[0]);
}

}  // namespace
}  // namespace w4k::model

#include "model/baselines.h"
#include "model/dataset.h"
#include "model/quality_model.h"

#include <gtest/gtest.h>

#include <cmath>

namespace w4k::model {
namespace {

std::vector<Example> linear_data(std::size_t n, std::uint64_t seed,
                                 double noise = 0.0) {
  Rng rng(seed);
  std::vector<Example> data;
  for (std::size_t i = 0; i < n; ++i) {
    Example ex;
    ex.x = {rng.uniform(), rng.uniform(), rng.uniform()};
    ex.y = 0.3 * ex.x[0] - 0.2 * ex.x[1] + 0.7 * ex.x[2] + 0.1 +
           (noise > 0 ? rng.gaussian(0.0, noise) : 0.0);
    data.push_back(ex);
  }
  return data;
}

TEST(LinearRegression, RecoversExactLinearRelation) {
  LinearRegression lr;
  const auto data = linear_data(200, 1);
  const double mse = lr.fit(data);
  EXPECT_LT(mse, 1e-18);
  EXPECT_NEAR(lr.predict({1.0, 0.0, 0.0}), 0.4, 1e-9);
  EXPECT_NEAR(lr.predict({0.0, 0.0, 0.0}), 0.1, 1e-9);
}

TEST(LinearRegression, NoisyDataMseMatchesNoiseFloor) {
  LinearRegression lr;
  const auto data = linear_data(2000, 2, 0.05);
  const double mse = lr.fit(data);
  EXPECT_NEAR(mse, 0.05 * 0.05, 5e-4);
}

TEST(LinearRegression, EvaluateOnHeldOut) {
  LinearRegression lr;
  lr.fit(linear_data(200, 3));
  EXPECT_LT(lr.evaluate(linear_data(50, 4)), 1e-18);
}

TEST(LinearRegression, EmptyDatasetThrows) {
  LinearRegression lr;
  EXPECT_THROW(lr.fit({}), std::invalid_argument);
}

TEST(LinearSvr, FitsLinearDataApproximately) {
  LinearSvr svr;
  const auto data = linear_data(400, 5);
  SvrConfig cfg;
  cfg.epochs = 100;
  const double mse = svr.fit(data, cfg);
  // Epsilon-insensitive loss leaves residuals up to ~epsilon.
  EXPECT_LT(mse, 0.01);
}

TEST(LinearSvr, EmptyDatasetThrows) {
  LinearSvr svr;
  EXPECT_THROW(svr.fit({}), std::invalid_argument);
}

TEST(LinearSvr, EpsilonTubeLimitsPrecision) {
  // With a huge epsilon the SVR has no incentive to fit at all.
  LinearSvr coarse, fine;
  const auto data = linear_data(300, 6);
  SvrConfig loose;
  loose.epsilon = 0.4;
  loose.epochs = 60;
  SvrConfig tight;
  tight.epsilon = 0.01;
  tight.epochs = 60;
  EXPECT_GT(coarse.fit(data, loose), fine.fit(data, tight));
}

TEST(Baselines, Table1OrderingOnQualityDataset) {
  // The paper's Table 1: DNN << Linear Regression < SVM on held-out MSE.
  auto specs = video::standard_videos(128, 128, 3);
  DatasetConfig dcfg;
  dcfg.frames_per_video = 2;
  dcfg.fractions_per_frame = 50;
  const Dataset ds = build_dataset(specs, dcfg);

  LinearRegression lr;
  lr.fit(ds.train);
  const double lr_mse = lr.evaluate(ds.test);

  LinearSvr svr;
  const double svr_mse = [&] {
    SvrConfig cfg;
    svr.fit(ds.train, cfg);
    return svr.evaluate(ds.test);
  }();

  QualityModel dnn(42);
  TrainConfig tc;
  tc.epochs = 2000;
  dnn.train(ds.train, tc);
  const double dnn_mse = dnn.evaluate(ds.test);

  EXPECT_LT(dnn_mse, lr_mse);
  EXPECT_LT(lr_mse, svr_mse);
  EXPECT_LT(dnn_mse, lr_mse / 3.0);  // "much better", not marginal
}

}  // namespace
}  // namespace w4k::model

#include "model/quality_model.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

namespace w4k::model {
namespace {

/// Shared fixture: train once on a small dataset (still meaningful — the
/// full-strength training is exercised by bench_table1).
class QualityModelTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto specs = video::standard_videos(128, 128, 3);
    DatasetConfig cfg;
    cfg.frames_per_video = 2;
    cfg.fractions_per_frame = 40;
    dataset_ = new Dataset(build_dataset(specs, cfg));
    model_ = new QualityModel(42);
    TrainConfig tc;
    tc.epochs = 1000;
    model_->train(dataset_->train, tc);
  }
  static void TearDownTestSuite() {
    delete dataset_;
    delete model_;
    dataset_ = nullptr;
    model_ = nullptr;
  }

  static Dataset* dataset_;
  static QualityModel* model_;
};

Dataset* QualityModelTest::dataset_ = nullptr;
QualityModel* QualityModelTest::model_ = nullptr;

Features sample_features() {
  Features f;
  f.fraction = {1.0, 1.0, 0.5, 0.1};
  f.up_to_layer = {0.8, 0.88, 0.94, 1.0};
  f.blank = 0.7;
  return f;
}

TEST_F(QualityModelTest, TestMseReasonable) {
  // Headline Table-1 reproduction happens in the bench at full strength;
  // here we only require the small training run to beat the baselines'
  // error regime by a wide margin.
  EXPECT_LT(model_->evaluate(dataset_->test), 5e-4);
}

TEST_F(QualityModelTest, PredictionsInUnitRange) {
  for (const auto& ex : dataset_->test) {
    Features f;
    for (int l = 0; l < 4; ++l) {
      f.fraction[static_cast<std::size_t>(l)] = ex.x[static_cast<std::size_t>(l)];
      f.up_to_layer[static_cast<std::size_t>(l)] =
          ex.x[static_cast<std::size_t>(l) + 4];
    }
    f.blank = ex.x[8];
    const double p = model_->predict(f);
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

TEST_F(QualityModelTest, MoreDataPredictsMoreQuality) {
  Features low = sample_features();
  low.fraction = {1.0, 0.2, 0.0, 0.0};
  Features high = sample_features();
  high.fraction = {1.0, 1.0, 1.0, 0.5};
  EXPECT_GT(model_->predict(high), model_->predict(low));
}

TEST_F(QualityModelTest, FullReceptionNearTopAnchor) {
  Features f = sample_features();
  f.fraction = {1.0, 1.0, 1.0, 1.0};
  EXPECT_NEAR(model_->predict(f), 1.0, 0.08);
}

TEST_F(QualityModelTest, GradientMostlyPositive) {
  // In the interior of the fraction cube quality increases with data.
  Features f = sample_features();
  f.fraction = {0.9, 0.7, 0.4, 0.2};
  const auto g = model_->fraction_gradient(f);
  int positive = 0;
  for (double x : g) positive += x > 0.0 ? 1 : 0;
  EXPECT_GE(positive, 3);
}

TEST_F(QualityModelTest, GradientMatchesPredictionDifference) {
  Features f = sample_features();
  const auto g = model_->fraction_gradient(f);
  const double eps = 1e-5;
  for (std::size_t l = 0; l < 4; ++l) {
    Features fp = f;
    fp.fraction[l] += eps;
    // predict() clamps to [0,1]; use raw difference where unclamped.
    const double diff = (model_->predict(fp) - model_->predict(f)) / eps;
    EXPECT_NEAR(g[l], diff, 1e-3) << "layer " << l;
  }
}

TEST_F(QualityModelTest, SaveLoadPreservesPredictions) {
  std::stringstream ss;
  model_->save(ss);
  QualityModel copy(1);  // different random init
  const Features f = sample_features();
  EXPECT_NE(copy.predict(f), model_->predict(f));
  copy.load(ss);
  EXPECT_DOUBLE_EQ(copy.predict(f), model_->predict(f));
}

TEST_F(QualityModelTest, FileRoundTrip) {
  const std::string path = "test_quality_model.tmp";
  model_->save_file(path);
  QualityModel copy(1);
  ASSERT_TRUE(copy.load_file(path));
  EXPECT_DOUBLE_EQ(copy.predict(sample_features()),
                   model_->predict(sample_features()));
  std::remove(path.c_str());
}

TEST(QualityModelStandalone, LoadMissingFileReturnsFalse) {
  QualityModel m(1);
  EXPECT_FALSE(m.load_file("/nonexistent/path/model.txt"));
}

TEST(QualityModelStandalone, UntrainedStillPredictsInRange) {
  QualityModel m(123);
  const double p = m.predict(sample_features());
  EXPECT_GE(p, 0.0);
  EXPECT_LE(p, 1.0);
}

}  // namespace
}  // namespace w4k::model

#include "channel/propagation.h"

#include "channel/array.h"
#include "channel/mcs.h"

#include <gtest/gtest.h>

#include <cmath>

namespace w4k::channel {
namespace {

TEST(Position, PolarRoundTrip) {
  const Position p = Position::from_polar(5.0, 0.6);
  EXPECT_NEAR(p.distance(), 5.0, 1e-12);
  EXPECT_NEAR(p.azimuth(), 0.6, 1e-12);
}

TEST(Fspl, SixtyGigahertzAtOneMeter) {
  // FSPL at 60.48 GHz, 1 m = 20 log10(4 pi / lambda) ~ 68 dB.
  EXPECT_NEAR(fspl_db(1.0), 68.1, 0.2);
}

TEST(Fspl, TwentyDbPerDecade) {
  EXPECT_NEAR(fspl_db(10.0) - fspl_db(1.0), 20.0, 1e-9);
  EXPECT_NEAR(fspl_db(16.0) - fspl_db(4.0), 20.0 * std::log10(4.0), 1e-9);
}

TEST(Fspl, NearFieldClamped) {
  EXPECT_DOUBLE_EQ(fspl_db(0.0), fspl_db(0.05));
}

TEST(TracePaths, LosIsFirstAndShortest) {
  Room room;
  const auto paths = trace_paths(room, Position::from_polar(5.0, 0.3));
  ASSERT_GE(paths.size(), 3u);
  EXPECT_TRUE(paths[0].line_of_sight);
  EXPECT_NEAR(paths[0].length_m, 5.0, 1e-9);
  for (std::size_t i = 1; i < paths.size(); ++i) {
    EXPECT_FALSE(paths[i].line_of_sight);
    EXPECT_GT(paths[i].length_m, paths[0].length_m);
    EXPECT_GT(paths[i].extra_loss_db, 0.0);
  }
}

TEST(TracePaths, SideWallImageGeometry) {
  Room room;
  room.width = 10.0;
  // Receiver on boresight at 4 m; the +y wall image sits at (4, 10).
  const auto paths = trace_paths(room, Position{4.0, 0.0});
  bool found = false;
  for (const auto& p : paths) {
    if (!p.line_of_sight &&
        std::abs(p.length_m - std::hypot(4.0, 10.0)) < 1e-9 &&
        p.azimuth_rad > 0.5)
      found = true;
  }
  EXPECT_TRUE(found);
}

TEST(TracePaths, CeilingFloorSameAzimuthAsLos) {
  Room room;
  const Position rx = Position::from_polar(6.0, -0.4);
  const auto paths = trace_paths(room, rx);
  int same_azimuth_bounces = 0;
  for (const auto& p : paths) {
    if (!p.line_of_sight && std::abs(p.azimuth_rad - rx.azimuth()) < 1e-9)
      ++same_azimuth_bounces;
  }
  EXPECT_EQ(same_azimuth_bounces, 2);  // ceiling + floor
}

TEST(MakeChannel, CalibrationPutsThreeMetersNearMinus48) {
  // The link-budget promise the whole MCS regime rests on (see header).
  PropagationConfig cfg;
  cfg.reflections = false;
  const auto h = make_channel(cfg, Position::from_polar(3.0, 0.0));
  const double rss = Dbm::from_milliwatts(h.norm_sq()).value;  // MRT
  EXPECT_NEAR(rss, -48.0, 1.5);
}

TEST(MakeChannel, McsRegimesAcrossDistance) {
  // 3 m -> top MCS; 16 m -> mid MCS; 40 m -> weak or dead.
  PropagationConfig cfg;
  const auto rss_at = [&](double d) {
    const auto h = make_channel(cfg, Position::from_polar(d, 0.1));
    return Dbm::from_milliwatts(h.norm_sq());
  };
  const auto near = select_mcs(rss_at(3.0));
  ASSERT_TRUE(near);
  EXPECT_GE(near->mcs, 11);
  const auto mid = select_mcs(rss_at(16.0));
  ASSERT_TRUE(mid);
  EXPECT_GE(mid->mcs, 4);
  EXPECT_LE(mid->mcs, 10);
}

TEST(MakeChannel, PowerDecaysWithDistance) {
  PropagationConfig cfg;
  double prev = 1e18;
  for (double d : {2.0, 4.0, 8.0, 16.0}) {
    const auto h = make_channel(cfg, Position::from_polar(d, 0.2));
    const double p = h.norm_sq();
    EXPECT_LT(p, prev) << d;
    prev = p;
  }
}

TEST(MakeChannel, BlockageAttenuatesLosOnly) {
  PropagationConfig cfg;
  const Position rx = Position::from_polar(5.0, 0.0);
  const auto open = make_channel(cfg, rx, 0.0);
  const auto blocked = make_channel(cfg, rx, 18.0);
  const double drop = Dbm::from_milliwatts(open.norm_sq()).value -
                      Dbm::from_milliwatts(blocked.norm_sq()).value;
  // LoS dominates, so the drop is large but less than the full 18 dB
  // because reflected paths survive.
  EXPECT_GT(drop, 7.0);
  EXPECT_LT(drop, 18.0);
}

TEST(MakeChannel, ReflectionsCreateAngularSpread) {
  // With reflections the channel is not a pure steering vector: the best
  // single-direction beam captures less than the full power.
  PropagationConfig with, without;
  without.reflections = false;
  const Position rx = Position::from_polar(8.0, 0.5);
  const auto h_multi = make_channel(with, rx);
  // MRT captures everything.
  const double total = h_multi.norm_sq();
  // Steering-only beam toward the LoS direction.
  const auto f_los =
      steering_vector(rx.azimuth(), with.n_antennas).conj().normalized();
  const double los_only = std::norm(beam_response(h_multi, f_los));
  EXPECT_LT(los_only, total * 1.0001);
  EXPECT_GT(los_only, total * 0.3);  // LoS still dominates at 60 GHz
}

TEST(MakeChannel, DeterministicGeometry) {
  PropagationConfig cfg;
  const auto a = make_channel(cfg, Position{3.0, 1.0});
  const auto b = make_channel(cfg, Position{3.0, 1.0});
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

TEST(MakeChannel, ZeroAntennasThrows) {
  PropagationConfig cfg;
  cfg.n_antennas = 0;
  EXPECT_THROW(make_channel(cfg, Position{1.0, 0.0}), std::invalid_argument);
}

TEST(MakeChannel, SmallMoveSmallChangeLargeMoveDecorrelates) {
  // Channel coherence: multipath phases rotate with millimeter motion but
  // the envelope moves slowly; a 2 m move changes the channel completely.
  PropagationConfig cfg;
  const auto h0 = make_channel(cfg, Position{5.0, 0.0});
  const auto h_near = make_channel(cfg, Position{5.02, 0.0});
  const auto h_far = make_channel(cfg, Position{7.0, 1.0});
  const auto corr = [&](const linalg::CVector& a, const linalg::CVector& b) {
    return std::abs(linalg::dot(a, b)) / (a.norm() * b.norm());
  };
  EXPECT_GT(corr(h0, h_near), 0.9);
  EXPECT_LT(corr(h0, h_far), 0.7);
}

}  // namespace
}  // namespace w4k::channel

#include "beamforming/codebook.h"

#include "channel/array.h"

#include <gtest/gtest.h>

#include <cmath>

namespace w4k::beamforming {
namespace {

TEST(Codebook, SizeAndNormalization) {
  CodebookConfig cfg;
  cfg.n_beams = 32;
  const Codebook cb = make_sector_codebook(cfg);
  EXPECT_EQ(cb.size(), 32u);
  for (std::size_t k = 0; k < cb.size(); ++k)
    EXPECT_NEAR(cb[k].norm(), 1.0, 1e-12);
}

TEST(Codebook, RejectsHardwareLimitViolation) {
  CodebookConfig cfg;
  cfg.n_beams = 129;  // Sparrow+ caps at 128
  EXPECT_THROW(make_sector_codebook(cfg), std::invalid_argument);
  cfg.n_beams = 0;
  EXPECT_THROW(make_sector_codebook(cfg), std::invalid_argument);
}

TEST(Codebook, CoversTheAzimuthFan) {
  // Every direction in the fan should have some beam within a few dB of
  // the quantization-limited optimum.
  CodebookConfig cfg;
  cfg.n_beams = 64;
  cfg.n_antennas = 32;
  const Codebook cb = make_sector_codebook(cfg);
  for (double theta = -1.1; theta <= 1.1; theta += 0.05) {
    const auto h = channel::steering_vector(theta, cfg.n_antennas);
    double best = -1e9;
    for (std::size_t k = 0; k < cb.size(); ++k)
      best = std::max(best, channel::beam_rss(h, cb[k]).value);
    const double ideal = 10.0 * std::log10(static_cast<double>(cfg.n_antennas));
    EXPECT_GT(best, ideal - 5.0) << "theta=" << theta;
  }
}

TEST(Codebook, BeamsPointAtDistinctDirections) {
  CodebookConfig cfg;
  cfg.n_beams = 16;
  const Codebook cb = make_sector_codebook(cfg);
  // The best-responding direction of consecutive beams should advance.
  double prev_best_theta = -10.0;
  for (std::size_t k = 0; k < cb.size(); ++k) {
    double best = -1e9, best_theta = 0.0;
    for (double theta = -1.3; theta <= 1.3; theta += 0.01) {
      const auto h = channel::steering_vector(theta, cfg.n_antennas);
      const double r = channel::beam_rss(h, cb[k]).value;
      if (r > best) {
        best = r;
        best_theta = theta;
      }
    }
    EXPECT_GT(best_theta, prev_best_theta - 0.05) << "beam " << k;
    prev_best_theta = std::max(prev_best_theta, best_theta);
  }
}

TEST(Codebook, QuantizedBeamLosesVersusIdeal) {
  // Pre-defined (2-bit) beams should be within ~1-2 dB of the unquantized
  // matched filter but never above it.
  CodebookConfig cfg;
  cfg.n_beams = 64;
  const Codebook cb = make_sector_codebook(cfg);
  const double theta = 0.33;
  const auto h = channel::steering_vector(theta, cfg.n_antennas);
  const double ideal =
      channel::beam_rss(h, h.conj().normalized()).value;
  double best = -1e9;
  for (std::size_t k = 0; k < cb.size(); ++k)
    best = std::max(best, channel::beam_rss(h, cb[k]).value);
  EXPECT_LT(best, ideal + 1e-9);
  EXPECT_GT(best, ideal - 4.0);
}

}  // namespace
}  // namespace w4k::beamforming

#include "beamforming/multicast.h"

#include "channel/array.h"
#include "channel/propagation.h"

#include <gtest/gtest.h>

namespace w4k::beamforming {
namespace {

std::vector<linalg::CVector> channels_at(
    std::initializer_list<std::pair<double, double>> dist_az) {
  channel::PropagationConfig prop;
  std::vector<linalg::CVector> out;
  for (const auto& [d, az] : dist_az)
    out.push_back(
        channel::make_channel(prop, channel::Position::from_polar(d, az)));
  return out;
}

Codebook default_codebook() {
  CodebookConfig cfg;
  return make_sector_codebook(cfg);
}

TEST(SchemeTraits, MulticastCapability) {
  EXPECT_TRUE(allows_multicast(Scheme::kOptimizedMulticast));
  EXPECT_TRUE(allows_multicast(Scheme::kPredefinedMulticast));
  EXPECT_FALSE(allows_multicast(Scheme::kOptimizedUnicast));
  EXPECT_FALSE(allows_multicast(Scheme::kPredefinedUnicast));
}

TEST(SchemeTraits, Names) {
  EXPECT_EQ(to_string(Scheme::kOptimizedMulticast), "optimized-multicast");
  EXPECT_EQ(to_string(Scheme::kPredefinedUnicast), "pre-defined-unicast");
}

TEST(GroupBeam, EmptyGroupThrows) {
  Rng rng(1);
  EXPECT_THROW(group_beam(Scheme::kOptimizedUnicast, {}, Codebook{}, rng),
               std::invalid_argument);
}

TEST(GroupBeam, UnicastSchemeRejectsMultiMemberGroups) {
  Rng rng(2);
  const auto chans = channels_at({{3.0, 0.1}, {3.0, -0.1}});
  EXPECT_THROW(group_beam(Scheme::kOptimizedUnicast, chans, Codebook{}, rng),
               std::invalid_argument);
}

TEST(GroupBeam, PredefinedSchemesNeedCodebook) {
  Rng rng(3);
  const auto chans = channels_at({{3.0, 0.1}});
  EXPECT_THROW(group_beam(Scheme::kPredefinedUnicast, chans, Codebook{}, rng),
               std::invalid_argument);
}

TEST(GroupBeam, OptimizedUnicastIsMrt) {
  Rng rng(4);
  const auto chans = channels_at({{3.0, 0.2}});
  const GroupBeam g =
      group_beam(Scheme::kOptimizedUnicast, chans, Codebook{}, rng);
  // MRT achieves ||h||^2 exactly.
  EXPECT_NEAR(g.min_rss.value,
              Dbm::from_milliwatts(chans[0].norm_sq()).value, 1e-9);
  EXPECT_GT(g.rate.value, 0.0);
  EXPECT_NEAR(g.beam.norm(), 1.0, 1e-12);
}

TEST(GroupBeam, OptimizedBeatsPredefinedUnicast) {
  Rng rng(5);
  const auto cb = default_codebook();
  const auto chans = channels_at({{3.0, 0.23}});
  const auto opt = group_beam(Scheme::kOptimizedUnicast, chans, Codebook{}, rng);
  const auto pre = group_beam(Scheme::kPredefinedUnicast, chans, cb, rng);
  EXPECT_GE(opt.min_rss.value, pre.min_rss.value);
}

TEST(GroupBeam, OptimizedMulticastBeatsPredefinedMulticast) {
  Rng rng(6);
  const auto cb = default_codebook();
  const auto chans = channels_at({{3.0, 0.5}, {3.0, -0.5}});
  const auto opt =
      group_beam(Scheme::kOptimizedMulticast, chans, Codebook{}, rng);
  const auto pre = group_beam(Scheme::kPredefinedMulticast, chans, cb, rng);
  EXPECT_GE(opt.min_rss.value, pre.min_rss.value - 0.5);
}

TEST(GroupBeam, MulticastBeamReachesBothUsers) {
  // The headline property: a multi-lobe beam serves angularly separated
  // users far better than either user's unicast beam serves the other.
  Rng rng(7);
  const auto chans = channels_at({{3.0, 0.5}, {3.0, -0.5}});
  const auto multi =
      group_beam(Scheme::kOptimizedMulticast, chans, Codebook{}, rng);
  ASSERT_EQ(multi.member_rss.size(), 2u);
  // Unicast beam for user 0 evaluated at user 1:
  const auto f0 = chans[0].conj().normalized();
  const double cross = channel::beam_rss(chans[1], f0).value;
  EXPECT_GT(multi.min_rss.value, cross + 6.0);
}

TEST(GroupBeam, MulticastSplitsPowerVersusUnicast) {
  // Serving two users with one beam costs roughly 3 dB against a
  // dedicated beam per user (power split across two lobes).
  Rng rng(8);
  const auto chans = channels_at({{3.0, 0.5}, {3.0, -0.5}});
  const auto multi =
      group_beam(Scheme::kOptimizedMulticast, chans, Codebook{}, rng);
  const auto uni =
      group_beam(Scheme::kOptimizedUnicast, {chans[0]}, Codebook{}, rng);
  const double split_loss = uni.min_rss.value - multi.min_rss.value;
  EXPECT_GT(split_loss, 1.0);
  EXPECT_LT(split_loss, 7.0);
}

TEST(GroupBeam, SingletonOptimizedMulticastEqualsMrt) {
  Rng rng(9);
  const auto chans = channels_at({{4.0, 0.3}});
  const auto multi =
      group_beam(Scheme::kOptimizedMulticast, chans, Codebook{}, rng);
  const auto uni =
      group_beam(Scheme::kOptimizedUnicast, chans, Codebook{}, rng);
  EXPECT_NEAR(multi.min_rss.value, uni.min_rss.value, 1e-9);
}

TEST(GroupBeam, MinRssIsBottleneckMember) {
  Rng rng(10);
  const auto chans = channels_at({{3.0, 0.2}, {10.0, -0.4}});
  const auto g =
      group_beam(Scheme::kOptimizedMulticast, chans, Codebook{}, rng);
  double min = 1e9;
  for (const auto& r : g.member_rss) min = std::min(min, r.value);
  EXPECT_DOUBLE_EQ(g.min_rss.value, min);
  // Rate corresponds to the min RSS per Table 2.
  EXPECT_DOUBLE_EQ(g.rate.value,
                   channel::rate_for_rss(g.min_rss).value);
}

TEST(GroupBeam, CloseUsersMulticastNearlyFree) {
  // Users 3 degrees apart share one lobe: the multicast penalty vs
  // unicast should be far below the 3 dB split.
  Rng rng(11);
  const auto chans = channels_at({{3.0, 0.00}, {3.0, 0.05}});
  const auto multi =
      group_beam(Scheme::kOptimizedMulticast, chans, Codebook{}, rng);
  const auto uni =
      group_beam(Scheme::kOptimizedUnicast, {chans[0]}, Codebook{}, rng);
  EXPECT_GT(multi.min_rss.value, uni.min_rss.value - 3.0);
}

TEST(GroupBeam, FarUserYieldsZeroRate) {
  Rng rng(12);
  const auto chans = channels_at({{200.0, 0.0}});
  const auto g =
      group_beam(Scheme::kOptimizedUnicast, chans, Codebook{}, rng);
  EXPECT_DOUBLE_EQ(g.rate.value, 0.0);
}

TEST(GroupBeam, EightUserGroupStillServed) {
  Rng rng(13);
  channel::PropagationConfig prop;
  std::vector<linalg::CVector> chans;
  for (int i = 0; i < 8; ++i)
    chans.push_back(channel::make_channel(
        prop, channel::Position::from_polar(6.0, -0.6 + 0.17 * i)));
  const auto g =
      group_beam(Scheme::kOptimizedMulticast, chans, Codebook{}, rng);
  EXPECT_EQ(g.member_rss.size(), 8u);
  EXPECT_GT(g.rate.value, 0.0);
}

}  // namespace
}  // namespace w4k::beamforming

#include "channel/mcs.h"

#include <gtest/gtest.h>

namespace w4k::channel {
namespace {

TEST(McsTable, HasTenSupportedRows) {
  EXPECT_EQ(mcs_table().size(), 10u);
}

TEST(McsTable, MonotoneInSensitivityAndRate) {
  const auto table = mcs_table();
  for (std::size_t i = 1; i < table.size(); ++i) {
    EXPECT_GT(table[i].mcs, table[i - 1].mcs);
    EXPECT_GT(table[i].sensitivity.value, table[i - 1].sensitivity.value);
    EXPECT_GT(table[i].udp_throughput.value,
              table[i - 1].udp_throughput.value);
  }
}

TEST(McsTable, PaperValuesSpotChecks) {
  // Table 2 of the paper.
  auto m1 = mcs_by_index(1);
  ASSERT_TRUE(m1);
  EXPECT_DOUBLE_EQ(m1->sensitivity.value, -68.0);
  EXPECT_DOUBLE_EQ(m1->udp_throughput.value, 300.0);
  auto m8 = mcs_by_index(8);
  ASSERT_TRUE(m8);
  EXPECT_DOUBLE_EQ(m8->sensitivity.value, -61.0);
  EXPECT_DOUBLE_EQ(m8->udp_throughput.value, 1580.0);
  auto m12 = mcs_by_index(12);
  ASSERT_TRUE(m12);
  EXPECT_DOUBLE_EQ(m12->sensitivity.value, -53.0);
  EXPECT_DOUBLE_EQ(m12->udp_throughput.value, 2400.0);
}

TEST(McsTable, UnsupportedIndicesAbsent) {
  // QCA6320 cannot carry data on MCS 0, 5, 9 (and 9.1 is non-integer).
  EXPECT_FALSE(mcs_by_index(0));
  EXPECT_FALSE(mcs_by_index(5));
  EXPECT_FALSE(mcs_by_index(9));
  EXPECT_FALSE(mcs_by_index(13));
  EXPECT_FALSE(mcs_by_index(-1));
}

TEST(SelectMcs, PicksHighestSustainable) {
  EXPECT_EQ(select_mcs(Dbm{-53.0})->mcs, 12);
  EXPECT_EQ(select_mcs(Dbm{-40.0})->mcs, 12);
  EXPECT_EQ(select_mcs(Dbm{-53.5})->mcs, 11);
  EXPECT_EQ(select_mcs(Dbm{-61.0})->mcs, 8);
  // Between MCS 8 (-61) and MCS 10 (-55) there is a gap: -58 -> MCS 8.
  EXPECT_EQ(select_mcs(Dbm{-58.0})->mcs, 8);
  EXPECT_EQ(select_mcs(Dbm{-68.0})->mcs, 1);
}

TEST(SelectMcs, TooWeakIsNothing) {
  EXPECT_FALSE(select_mcs(Dbm{-68.1}));
  EXPECT_FALSE(select_mcs(Dbm{-100.0}));
}

TEST(RateForRss, ZeroWhenUnsupported) {
  EXPECT_DOUBLE_EQ(rate_for_rss(Dbm{-90.0}).value, 0.0);
  EXPECT_DOUBLE_EQ(rate_for_rss(Dbm{-60.0}).value, 1580.0);
}

TEST(RateForRss, BoundaryExactlyAtSensitivity) {
  for (const auto& e : mcs_table())
    EXPECT_DOUBLE_EQ(rate_for_rss(e.sensitivity).value,
                     e.udp_throughput.value)
        << "MCS " << e.mcs;
}

TEST(McsTable, HighRssThresholdIsMcs8Sensitivity) {
  // Sec. 4.3.4 splits mobile traces at the MCS 8 sensitivity.
  EXPECT_DOUBLE_EQ(kHighRssThreshold.value,
                   mcs_by_index(8)->sensitivity.value);
}

TEST(McsTable, ToStringFormatsRow) {
  const std::string s = to_string(*mcs_by_index(8));
  EXPECT_NE(s.find("MCS 8"), std::string::npos);
  EXPECT_NE(s.find("-61.0"), std::string::npos);
  EXPECT_NE(s.find("1580"), std::string::npos);
}

}  // namespace
}  // namespace w4k::channel

#include "beamforming/codebook.h"

#include "channel/array.h"

#include <gtest/gtest.h>

#include <cmath>

namespace w4k::beamforming {
namespace {

TEST(MultilevelCodebook, SizeIsSumOfLevels) {
  const Codebook cb =
      make_multilevel_codebook(32, {{32, 20}, {8, 8}, {4, 4}});
  EXPECT_EQ(cb.size(), 32u);
}

TEST(MultilevelCodebook, AllBeamsUnitNorm) {
  const Codebook cb =
      make_multilevel_codebook(32, {{32, 10}, {16, 6}, {8, 4}});
  for (std::size_t k = 0; k < cb.size(); ++k)
    EXPECT_NEAR(cb[k].norm(), 1.0, 1e-12) << "beam " << k;
}

TEST(MultilevelCodebook, WiderLevelsTradeGainForCoverage) {
  // A 4-element quasi beam has less peak gain than a 32-element sector
  // but holds its gain over a much wider angular span.
  const Codebook fine = make_multilevel_codebook(32, {{32, 1}}, 8, 1e-6);
  const Codebook quasi = make_multilevel_codebook(32, {{4, 1}}, 8, 1e-6);
  const auto gain_at = [&](const Codebook& cb, double theta) {
    return channel::beam_rss(channel::steering_vector(theta, 32), cb[0])
        .value;
  };
  // Peak (boresight): fine wins by ~9 dB (32 vs 4 elements).
  EXPECT_GT(gain_at(fine, 0.0), gain_at(quasi, 0.0) + 6.0);
  // Off-axis at 20 degrees: the fine beam has fallen off a cliff, the
  // quasi beam is still near its peak.
  const double off = 0.349;
  EXPECT_GT(gain_at(quasi, off), gain_at(fine, off) + 6.0);
}

TEST(MultilevelCodebook, LimitsEnforced) {
  EXPECT_THROW(make_multilevel_codebook(32, {{32, 129}}),
               std::invalid_argument);
  EXPECT_THROW(make_multilevel_codebook(32, {}), std::invalid_argument);
  EXPECT_THROW(make_multilevel_codebook(32, {{64, 4}}),  // subarray > array
               std::invalid_argument);
  EXPECT_THROW(make_multilevel_codebook(32, {{0, 4}}), std::invalid_argument);
}

TEST(DualLobe, AppendsPairCount) {
  Codebook cb = make_multilevel_codebook(32, {{32, 4}});
  append_dual_lobe_beams(cb, 32, 6);
  EXPECT_EQ(cb.size(), 4u + 15u);  // C(6,2) = 15
}

TEST(DualLobe, RespectsHardwareLimit) {
  Codebook cb = make_multilevel_codebook(32, {{32, 120}});
  EXPECT_THROW(append_dual_lobe_beams(cb, 32, 6), std::invalid_argument);
  Codebook cb2;
  EXPECT_THROW(append_dual_lobe_beams(cb2, 32, 1), std::invalid_argument);
}

TEST(DualLobe, ServesTwoDirectionsAtOnce) {
  // A dual-lobe beam must deliver useful gain toward BOTH of its target
  // directions simultaneously — the property that makes pre-defined
  // multicast to spread users possible at all.
  Codebook cb;
  append_dual_lobe_beams(cb, 32, 14, 8, 1.06);
  // Targets: a widely separated direction pair near two grid points.
  const double theta_a = -0.6;
  const double theta_b = 0.6;
  const auto h_a = channel::steering_vector(theta_a, 32);
  const auto h_b = channel::steering_vector(theta_b, 32);
  double best_min = -1e300;
  for (std::size_t k = 0; k < cb.size(); ++k) {
    const double min_rss = std::min(channel::beam_rss(h_a, cb[k]).value,
                                    channel::beam_rss(h_b, cb[k]).value);
    best_min = std::max(best_min, min_rss);
  }
  // Ideal dual lobe: 16 coherent elements at 1/sqrt(32) amplitude each
  // -> |16/sqrt(32)|^2 = 8 (9 dB); allow pointing + quantization loss.
  EXPECT_GT(best_min, 10.0 * std::log10(8.0) - 5.0);
  // And it must beat every single-lobe sector by a wide margin.
  const Codebook sectors = make_multilevel_codebook(32, {{32, 24}});
  double sector_best = -1e300;
  for (std::size_t k = 0; k < sectors.size(); ++k) {
    const double min_rss =
        std::min(channel::beam_rss(h_a, sectors[k]).value,
                 channel::beam_rss(h_b, sectors[k]).value);
    sector_best = std::max(sector_best, min_rss);
  }
  EXPECT_GT(best_min, sector_best + 6.0);
}

TEST(DualLobe, BeamsAreUnitNorm) {
  Codebook cb;
  append_dual_lobe_beams(cb, 32, 5);
  for (std::size_t k = 0; k < cb.size(); ++k)
    EXPECT_NEAR(cb[k].norm(), 1.0, 1e-12);
}

}  // namespace
}  // namespace w4k::beamforming

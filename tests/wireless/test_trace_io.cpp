#include "channel/trace_io.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>

namespace w4k::channel {
namespace {

struct TempPath {
  std::string path;
  explicit TempPath(const char* name)
      : path(std::string("w4k_trace_test_") + name) {}
  ~TempPath() { std::remove(path.c_str()); }
};

CsiTrace small_trace() {
  MovingReceiverConfig cfg;
  cfg.n_users = 2;
  cfg.duration = 1.0;
  cfg.prop.n_antennas = 8;
  cfg.seed = 4;
  return moving_receiver_trace(cfg);
}

TEST(TraceIo, RoundTripPreservesEverything) {
  TempPath tmp("roundtrip.bin");
  const CsiTrace original = small_trace();
  save_trace(original, tmp.path);
  const CsiTrace loaded = load_trace(tmp.path);

  ASSERT_EQ(loaded.steps(), original.steps());
  ASSERT_EQ(loaded.users(), original.users());
  EXPECT_DOUBLE_EQ(loaded.interval, original.interval);
  for (std::size_t t = 0; t < original.steps(); ++t) {
    for (std::size_t u = 0; u < original.users(); ++u) {
      EXPECT_DOUBLE_EQ(loaded.positions[t][u].x, original.positions[t][u].x);
      EXPECT_DOUBLE_EQ(loaded.positions[t][u].y, original.positions[t][u].y);
      ASSERT_EQ(loaded.snapshots[t][u].size(), original.snapshots[t][u].size());
      for (std::size_t n = 0; n < original.snapshots[t][u].size(); ++n)
        EXPECT_EQ(loaded.snapshots[t][u][n], original.snapshots[t][u][n]);
    }
  }
}

TEST(TraceIo, EmptyTraceRejected) {
  TempPath tmp("empty.bin");
  EXPECT_THROW(save_trace(CsiTrace{}, tmp.path), std::runtime_error);
}

TEST(TraceIo, MissingFileThrows) {
  EXPECT_THROW(load_trace("/nonexistent/trace.bin"), std::runtime_error);
}

TEST(TraceIo, BadMagicRejected) {
  TempPath tmp("badmagic.bin");
  std::ofstream(tmp.path, std::ios::binary) << "WRONGMAGICxxxxxxxxxxxx";
  EXPECT_THROW(load_trace(tmp.path), std::runtime_error);
}

TEST(TraceIo, TruncationDetected) {
  TempPath tmp("trunc.bin");
  const CsiTrace original = small_trace();
  save_trace(original, tmp.path);
  // Chop the file in half.
  std::ifstream in(tmp.path, std::ios::binary);
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  in.close();
  std::ofstream(tmp.path, std::ios::binary)
      << data.substr(0, data.size() / 2);
  EXPECT_THROW(load_trace(tmp.path), std::runtime_error);
}

namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void spit(const std::string& path, const std::string& data) {
  std::ofstream(path, std::ios::binary) << data;
}

void expect_load_error(const std::string& path, const char* needle) {
  try {
    load_trace(path);
    FAIL() << "expected throw mentioning '" << needle << "'";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << e.what();
  }
}

// v2 layout: 8 magic + 3 u32 + 1 f64 header, then per step a u32 seq id
// followed by users x (2 f64 position + antennas x 2 f64 channel).
constexpr std::size_t kHeaderBytes = 8 + 3 * 4 + 8;

std::size_t step_bytes(std::size_t users, std::size_t antennas) {
  return 4 + users * (2 * 8 + antennas * 2 * 8);
}

}  // namespace

TEST(TraceIo, NonFiniteValueNamesTheRecord) {
  TempPath tmp("nan.bin");
  save_trace(small_trace(), tmp.path);
  std::string data = slurp(tmp.path);
  // Poison the x position of step 0, user 0 (right after the seq id).
  const double nan = std::nan("");
  std::memcpy(data.data() + kHeaderBytes + 4, &nan, sizeof(nan));
  spit(tmp.path, data);
  expect_load_error(tmp.path, "non-finite position at step 0 user 0");
}

TEST(TraceIo, NonFiniteChannelValueRejected) {
  TempPath tmp("nanchan.bin");
  const CsiTrace original = small_trace();
  save_trace(original, tmp.path);
  std::string data = slurp(tmp.path);
  // First channel double of step 1, user 1.
  const std::size_t off = kHeaderBytes +
                          step_bytes(original.users(), 8) +  // past step 0
                          4 + (2 * 8 + 8 * 2 * 8) + 2 * 8;
  const double inf = std::numeric_limits<double>::infinity();
  std::memcpy(data.data() + off, &inf, sizeof(inf));
  spit(tmp.path, data);
  expect_load_error(tmp.path, "non-finite channel value at step 1 user 1");
}

TEST(TraceIo, OutOfOrderStepIdRejected) {
  TempPath tmp("reorder.bin");
  const CsiTrace original = small_trace();
  save_trace(original, tmp.path);
  std::string data = slurp(tmp.path);
  // Overwrite step 1's sequence id: a spliced/reordered capture.
  const std::size_t off = kHeaderBytes + step_bytes(original.users(), 8);
  const std::uint32_t wrong = 7;
  std::memcpy(data.data() + off, &wrong, sizeof(wrong));
  spit(tmp.path, data);
  expect_load_error(tmp.path, "out-of-order step id (got 7) at step 1");
}

TEST(TraceIo, NonPositiveIntervalRejected) {
  TempPath tmp("interval.bin");
  save_trace(small_trace(), tmp.path);
  std::string data = slurp(tmp.path);
  const double bad = -0.1;
  std::memcpy(data.data() + 8 + 3 * 4, &bad, sizeof(bad));
  spit(tmp.path, data);
  expect_load_error(tmp.path, "interval");
}

TEST(TraceIo, VersionOneFilesStillLoad) {
  // Hand-written v1 file (no per-step sequence ids): 1 step, 1 user,
  // 2 antennas.
  TempPath tmp("v1.bin");
  std::ofstream os(tmp.path, std::ios::binary);
  os.write("W4KCSIT1", 8);
  const auto u32 = [&](std::uint32_t v) {
    os.write(reinterpret_cast<const char*>(&v), sizeof(v));
  };
  const auto f64 = [&](double v) {
    os.write(reinterpret_cast<const char*>(&v), sizeof(v));
  };
  u32(1);
  u32(1);
  u32(2);
  f64(0.1);           // interval
  f64(1.5);           // pos x
  f64(-2.0);          // pos y
  f64(0.25);          // antenna 0 re/im
  f64(-0.5);
  f64(1.0);           // antenna 1 re/im
  f64(0.0);
  os.close();

  const CsiTrace trace = load_trace(tmp.path);
  ASSERT_EQ(trace.steps(), 1u);
  ASSERT_EQ(trace.users(), 1u);
  EXPECT_DOUBLE_EQ(trace.interval, 0.1);
  EXPECT_DOUBLE_EQ(trace.positions[0][0].x, 1.5);
  EXPECT_DOUBLE_EQ(trace.snapshots[0][0][0].real(), 0.25);
  EXPECT_DOUBLE_EQ(trace.snapshots[0][0][1].real(), 1.0);
}

TEST(TraceIo, ReplayedTraceDrivesEmulation) {
  // Saved traces must be usable exactly like freshly generated ones.
  TempPath tmp("replay.bin");
  const CsiTrace original = small_trace();
  save_trace(original, tmp.path);
  const CsiTrace loaded = load_trace(tmp.path);
  const auto rss_orig = best_case_rss_dbm(original, 0);
  const auto rss_loaded = best_case_rss_dbm(loaded, 0);
  ASSERT_EQ(rss_orig.size(), rss_loaded.size());
  for (std::size_t i = 0; i < rss_orig.size(); ++i)
    EXPECT_DOUBLE_EQ(rss_orig[i], rss_loaded[i]);
}

}  // namespace
}  // namespace w4k::channel

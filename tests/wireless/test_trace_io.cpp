#include "channel/trace_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace w4k::channel {
namespace {

struct TempPath {
  std::string path;
  explicit TempPath(const char* name)
      : path(std::string("w4k_trace_test_") + name) {}
  ~TempPath() { std::remove(path.c_str()); }
};

CsiTrace small_trace() {
  MovingReceiverConfig cfg;
  cfg.n_users = 2;
  cfg.duration = 1.0;
  cfg.prop.n_antennas = 8;
  cfg.seed = 4;
  return moving_receiver_trace(cfg);
}

TEST(TraceIo, RoundTripPreservesEverything) {
  TempPath tmp("roundtrip.bin");
  const CsiTrace original = small_trace();
  save_trace(original, tmp.path);
  const CsiTrace loaded = load_trace(tmp.path);

  ASSERT_EQ(loaded.steps(), original.steps());
  ASSERT_EQ(loaded.users(), original.users());
  EXPECT_DOUBLE_EQ(loaded.interval, original.interval);
  for (std::size_t t = 0; t < original.steps(); ++t) {
    for (std::size_t u = 0; u < original.users(); ++u) {
      EXPECT_DOUBLE_EQ(loaded.positions[t][u].x, original.positions[t][u].x);
      EXPECT_DOUBLE_EQ(loaded.positions[t][u].y, original.positions[t][u].y);
      ASSERT_EQ(loaded.snapshots[t][u].size(), original.snapshots[t][u].size());
      for (std::size_t n = 0; n < original.snapshots[t][u].size(); ++n)
        EXPECT_EQ(loaded.snapshots[t][u][n], original.snapshots[t][u][n]);
    }
  }
}

TEST(TraceIo, EmptyTraceRejected) {
  TempPath tmp("empty.bin");
  EXPECT_THROW(save_trace(CsiTrace{}, tmp.path), std::runtime_error);
}

TEST(TraceIo, MissingFileThrows) {
  EXPECT_THROW(load_trace("/nonexistent/trace.bin"), std::runtime_error);
}

TEST(TraceIo, BadMagicRejected) {
  TempPath tmp("badmagic.bin");
  std::ofstream(tmp.path, std::ios::binary) << "WRONGMAGICxxxxxxxxxxxx";
  EXPECT_THROW(load_trace(tmp.path), std::runtime_error);
}

TEST(TraceIo, TruncationDetected) {
  TempPath tmp("trunc.bin");
  const CsiTrace original = small_trace();
  save_trace(original, tmp.path);
  // Chop the file in half.
  std::ifstream in(tmp.path, std::ios::binary);
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  in.close();
  std::ofstream(tmp.path, std::ios::binary)
      << data.substr(0, data.size() / 2);
  EXPECT_THROW(load_trace(tmp.path), std::runtime_error);
}

TEST(TraceIo, ReplayedTraceDrivesEmulation) {
  // Saved traces must be usable exactly like freshly generated ones.
  TempPath tmp("replay.bin");
  const CsiTrace original = small_trace();
  save_trace(original, tmp.path);
  const CsiTrace loaded = load_trace(tmp.path);
  const auto rss_orig = best_case_rss_dbm(original, 0);
  const auto rss_loaded = best_case_rss_dbm(loaded, 0);
  ASSERT_EQ(rss_orig.size(), rss_loaded.size());
  for (std::size_t i = 0; i < rss_orig.size(); ++i)
    EXPECT_DOUBLE_EQ(rss_orig[i], rss_loaded[i]);
}

}  // namespace
}  // namespace w4k::channel

#include "beamforming/csi.h"
#include "beamforming/sls.h"
#include "channel/array.h"
#include "channel/propagation.h"

#include <gtest/gtest.h>

namespace w4k::beamforming {
namespace {

Codebook big_codebook(std::size_t n_antennas = 32) {
  CodebookConfig cfg;
  cfg.n_antennas = n_antennas;
  cfg.n_beams = 96;  // >= 2 N_t measurements for phase retrieval
  return make_sector_codebook(cfg);
}

TEST(SectorSweep, ReturnsPerBeamRssAndBest) {
  Rng rng(1);
  const auto cb = big_codebook();
  const auto h = channel::steering_vector(0.4, 32);
  const SweepResult res = sector_sweep(h, cb, rng, 0.0);
  EXPECT_EQ(res.rss_dbm.size(), cb.size());
  for (std::size_t k = 0; k < cb.size(); ++k)
    EXPECT_LE(res.rss_dbm[k], res.rss_dbm[res.best_beam] + 1e-9);
}

TEST(SectorSweep, BestBeamPointsAtChannel) {
  Rng rng(2);
  const auto cb = big_codebook();
  // Beam index should scale with sin(azimuth) across the fan.
  std::size_t prev = 0;
  for (double theta : {-0.8, -0.3, 0.0, 0.3, 0.8}) {
    const auto h = channel::steering_vector(theta, 32);
    const auto res = sector_sweep(h, cb, rng, 0.0);
    EXPECT_GE(res.best_beam + 5, prev);  // non-decreasing with slack
    prev = res.best_beam;
  }
}

TEST(SectorSweep, NoiseChangesMeasurements) {
  Rng rng(3);
  const auto cb = big_codebook();
  const auto h = channel::steering_vector(0.2, 32);
  const auto clean = sector_sweep(h, cb, rng, 0.0);
  const auto noisy = sector_sweep(h, cb, rng, 1.0);
  int diffs = 0;
  for (std::size_t k = 0; k < cb.size(); ++k)
    diffs += std::abs(clean.rss_dbm[k] - noisy.rss_dbm[k]) > 1e-9 ? 1 : 0;
  EXPECT_GT(diffs, static_cast<int>(cb.size() / 2));
}

TEST(SectorSweep, EmptyCodebookThrows) {
  Rng rng(4);
  EXPECT_THROW(sector_sweep(channel::steering_vector(0, 8), Codebook{}, rng),
               std::invalid_argument);
}

TEST(EstimateCsi, RecoversSteeringChannel) {
  Rng rng(5);
  const auto cb = big_codebook();
  const auto h = channel::steering_vector(0.37, 32);
  const auto sweep = sector_sweep(h, cb, rng, 0.0);
  const CsiEstimate est = estimate_csi(sweep, cb);
  // Phase retrieval recovers h up to a global phase.
  EXPECT_GT(csi_alignment(est.h, h), 0.98);
  EXPECT_LT(est.residual, 0.05);
}

TEST(EstimateCsi, RecoversMultipathChannel) {
  Rng rng(6);
  channel::PropagationConfig prop;
  const auto h =
      channel::make_channel(prop, channel::Position::from_polar(5.0, 0.4));
  const auto cb = big_codebook();
  const auto sweep = sector_sweep(h, cb, rng, 0.0);
  const CsiEstimate est = estimate_csi(sweep, cb);
  EXPECT_GT(csi_alignment(est.h, h), 0.95);
}

TEST(EstimateCsi, BeamformingOnEstimateNearOptimal) {
  // What matters downstream: MRT on the estimated CSI should capture
  // nearly the power of MRT on the true CSI.
  Rng rng(7);
  channel::PropagationConfig prop;
  const auto h =
      channel::make_channel(prop, channel::Position::from_polar(8.0, -0.3));
  const auto cb = big_codebook();
  const auto sweep = sector_sweep(h, cb, rng, 0.3);  // realistic RSS noise
  const CsiEstimate est = estimate_csi(sweep, cb);
  const double ideal = channel::beam_rss(h, h.conj().normalized()).value;
  const double achieved =
      channel::beam_rss(h, est.h.conj().normalized()).value;
  EXPECT_GT(achieved, ideal - 1.5);  // within 1.5 dB of perfect CSI
}

TEST(EstimateCsi, NoisyMeasurementsDegradeGracefully) {
  Rng rng(8);
  const auto cb = big_codebook();
  const auto h = channel::steering_vector(0.1, 32);
  const auto clean = estimate_csi(sector_sweep(h, cb, rng, 0.0), cb);
  const auto noisy = estimate_csi(sector_sweep(h, cb, rng, 2.0), cb);
  EXPECT_GE(csi_alignment(clean.h, h), csi_alignment(noisy.h, h) - 0.02);
  EXPECT_GT(csi_alignment(noisy.h, h), 0.8);
}

TEST(EstimateCsi, TooFewBeamsThrows) {
  CodebookConfig cfg;
  cfg.n_antennas = 32;
  cfg.n_beams = 16;  // < N_t
  const Codebook cb = make_sector_codebook(cfg);
  Rng rng(9);
  const auto h = channel::steering_vector(0.0, 32);
  const auto sweep = sector_sweep(h, cb, rng, 0.0);
  EXPECT_THROW(estimate_csi(sweep, cb), std::invalid_argument);
}

TEST(EstimateCsi, MismatchedSweepThrows) {
  const auto cb = big_codebook();
  SweepResult sweep;
  sweep.rss_dbm.assign(10, -50.0);  // wrong size
  EXPECT_THROW(estimate_csi(sweep, cb), std::invalid_argument);
}

TEST(CsiAlignment, BoundsAndPhaseInvariance) {
  const auto h = channel::steering_vector(0.5, 16);
  EXPECT_NEAR(csi_alignment(h, h), 1.0, 1e-12);
  // Global phase doesn't matter.
  auto rotated = h;
  rotated *= std::polar(1.0, 1.234);
  EXPECT_NEAR(csi_alignment(rotated, h), 1.0, 1e-12);
  // Zero vector aligns with nothing.
  EXPECT_DOUBLE_EQ(csi_alignment(linalg::CVector(16), h), 0.0);
}

}  // namespace
}  // namespace w4k::beamforming

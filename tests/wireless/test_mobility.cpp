#include "channel/mobility.h"

#include <gtest/gtest.h>

#include <cmath>

namespace w4k::channel {
namespace {

TEST(MovingReceiver, TraceShape) {
  MovingReceiverConfig cfg;
  cfg.n_users = 3;
  cfg.duration = 5.0;
  const CsiTrace trace = moving_receiver_trace(cfg);
  EXPECT_EQ(trace.steps(), 50u);  // 5 s at 10 Hz
  EXPECT_EQ(trace.users(), 3u);
  EXPECT_EQ(trace.positions.size(), trace.steps());
  for (const auto& snap : trace.snapshots)
    for (const auto& h : snap) EXPECT_EQ(h.size(), cfg.prop.n_antennas);
}

TEST(MovingReceiver, WalkersStayInAnnulus) {
  MovingReceiverConfig cfg;
  cfg.n_users = 2;
  cfg.duration = 20.0;
  cfg.min_distance = 3.0;
  cfg.max_distance = 7.0;
  const CsiTrace trace = moving_receiver_trace(cfg);
  for (const auto& step : trace.positions) {
    for (const auto& p : step) {
      EXPECT_GE(p.distance(), cfg.min_distance - 0.5);
      EXPECT_LE(p.distance(), cfg.max_distance + 0.5);
    }
  }
}

TEST(MovingReceiver, SpeedBounded) {
  MovingReceiverConfig cfg;
  cfg.n_users = 1;
  cfg.duration = 10.0;
  cfg.walk_speed = 1.0;
  const CsiTrace trace = moving_receiver_trace(cfg);
  for (std::size_t t = 1; t < trace.steps(); ++t) {
    const auto& a = trace.positions[t - 1][0];
    const auto& b = trace.positions[t][0];
    const double step = std::hypot(b.x - a.x, b.y - a.y);
    EXPECT_LE(step, cfg.walk_speed * 1.2 * kBeaconInterval + 1e-9);
  }
}

TEST(MovingReceiver, StaticFlagFreezesUser) {
  MovingReceiverConfig cfg;
  cfg.n_users = 2;
  cfg.moving = {true, false};
  cfg.duration = 5.0;
  const CsiTrace trace = moving_receiver_trace(cfg);
  const auto& first = trace.positions.front()[1];
  for (const auto& step : trace.positions) {
    EXPECT_DOUBLE_EQ(step[1].x, first.x);
    EXPECT_DOUBLE_EQ(step[1].y, first.y);
  }
  // And the moving user does move.
  const auto& m0 = trace.positions.front()[0];
  const auto& m1 = trace.positions.back()[0];
  EXPECT_GT(std::hypot(m1.x - m0.x, m1.y - m0.y), 0.1);
}

TEST(MovingReceiver, ChannelEvolvesOverTime) {
  MovingReceiverConfig cfg;
  cfg.n_users = 1;
  cfg.duration = 10.0;
  const CsiTrace trace = moving_receiver_trace(cfg);
  const auto rss = best_case_rss_dbm(trace, 0);
  double min = 1e9, max = -1e9;
  for (double r : rss) {
    min = std::min(min, r);
    max = std::max(max, r);
  }
  EXPECT_GT(max - min, 1.0);  // mobility causes real fluctuation
}

TEST(MovingReceiver, Deterministic) {
  MovingReceiverConfig cfg;
  cfg.n_users = 1;
  cfg.duration = 2.0;
  cfg.seed = 99;
  const auto a = moving_receiver_trace(cfg);
  const auto b = moving_receiver_trace(cfg);
  for (std::size_t t = 0; t < a.steps(); ++t)
    for (std::size_t n = 0; n < a.snapshots[t][0].size(); ++n)
      EXPECT_EQ(a.snapshots[t][0][n], b.snapshots[t][0][n]);
}

TEST(MovingReceiver, BadArgumentsThrow) {
  MovingReceiverConfig cfg;
  cfg.n_users = 0;
  EXPECT_THROW(moving_receiver_trace(cfg), std::invalid_argument);
  cfg.n_users = 2;
  cfg.moving = {true};  // size mismatch
  EXPECT_THROW(moving_receiver_trace(cfg), std::invalid_argument);
}

TEST(MovingEnvironment, UsersAreStatic) {
  MovingEnvironmentConfig cfg;
  cfg.users = {Position::from_polar(4.0, 0.2), Position::from_polar(5.0, -0.3)};
  cfg.duration = 5.0;
  const CsiTrace trace = moving_environment_trace(cfg);
  EXPECT_EQ(trace.users(), 2u);
  for (const auto& step : trace.positions) {
    EXPECT_DOUBLE_EQ(step[0].x, cfg.users[0].x);
    EXPECT_DOUBLE_EQ(step[1].y, cfg.users[1].y);
  }
}

TEST(MovingEnvironment, BlockageCausesRssDips) {
  MovingEnvironmentConfig cfg;
  cfg.users = {Position::from_polar(6.0, 0.0)};
  cfg.duration = 60.0;
  cfg.n_blockers = 2;
  const CsiTrace trace = moving_environment_trace(cfg);
  const auto rss = best_case_rss_dbm(trace, 0);
  double min = 1e9, max = -1e9;
  for (double r : rss) {
    min = std::min(min, r);
    max = std::max(max, r);
  }
  // People crossing the LoS should cause multi-dB dips at some point in a
  // minute of walking.
  EXPECT_GT(max - min, 4.0);
}

TEST(MovingEnvironment, NoBlockersMeansStableChannel) {
  MovingEnvironmentConfig cfg;
  cfg.users = {Position::from_polar(6.0, 0.0)};
  cfg.duration = 5.0;
  cfg.n_blockers = 0;
  const CsiTrace trace = moving_environment_trace(cfg);
  const auto rss = best_case_rss_dbm(trace, 0);
  for (double r : rss) EXPECT_NEAR(r, rss.front(), 1e-9);
}

TEST(MovingEnvironment, EmptyUsersThrow) {
  MovingEnvironmentConfig cfg;
  EXPECT_THROW(moving_environment_trace(cfg), std::invalid_argument);
}

TEST(BestCaseRss, OutOfRangeUserThrows) {
  MovingReceiverConfig cfg;
  cfg.n_users = 1;
  cfg.duration = 1.0;
  const CsiTrace trace = moving_receiver_trace(cfg);
  EXPECT_THROW(best_case_rss_dbm(trace, 5), std::out_of_range);
}

TEST(Regimes, HighAndLowRssBandsAreAchievable) {
  // The paper's high-RSS regime (close walkers) vs low-RSS (far walkers):
  // generated traces should mostly land on the intended side of -61 dBm.
  MovingReceiverConfig high;
  high.n_users = 1;
  high.duration = 30.0;
  high.min_distance = 2.5;
  high.max_distance = 6.0;
  const auto rss_high = best_case_rss_dbm(moving_receiver_trace(high), 0);
  int above = 0;
  for (double r : rss_high) above += r >= -61.0 ? 1 : 0;
  EXPECT_GT(above, static_cast<int>(rss_high.size() * 3 / 4));

  MovingReceiverConfig low = high;
  low.min_distance = 15.0;
  low.max_distance = 19.0;
  const auto rss_low = best_case_rss_dbm(moving_receiver_trace(low), 0);
  int below = 0;
  for (double r : rss_low) below += r < -61.0 ? 1 : 0;
  EXPECT_GT(below, static_cast<int>(rss_low.size() / 2));
}

}  // namespace
}  // namespace w4k::channel

#include "channel/array.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

namespace w4k::channel {
namespace {

TEST(SteeringVector, UnitMagnitudeEntries) {
  const auto a = steering_vector(0.5, 16);
  ASSERT_EQ(a.size(), 16u);
  for (std::size_t n = 0; n < a.size(); ++n)
    EXPECT_NEAR(std::abs(a[n]), 1.0, 1e-12);
}

TEST(SteeringVector, BoresightIsAllOnes) {
  const auto a = steering_vector(0.0, 8);
  for (std::size_t n = 0; n < a.size(); ++n) {
    EXPECT_NEAR(std::real(a[n]), 1.0, 1e-12);
    EXPECT_NEAR(std::imag(a[n]), 0.0, 1e-12);
  }
}

TEST(SteeringVector, PhaseProgressionHalfLambda) {
  const double theta = 0.3;
  const auto a = steering_vector(theta, 4);
  const double expected_step = std::numbers::pi * std::sin(theta);
  for (std::size_t n = 1; n < 4; ++n) {
    const double step = std::arg(a[n] / a[n - 1]);
    EXPECT_NEAR(step, expected_step, 1e-12);
  }
}

TEST(SteeringVector, ZeroAntennasThrows) {
  EXPECT_THROW(steering_vector(0.0, 0), std::invalid_argument);
}

TEST(BeamRss, MatchedFilterGivesArrayGain) {
  // Beam = conj(steering)/sqrt(N) on a unit-amplitude channel along the
  // same direction: response = sqrt(N), power = N -> 10log10(N) dB gain.
  const std::size_t n = 32;
  const auto h = steering_vector(0.4, n);
  const auto f = h.conj().normalized();
  const Dbm rss = beam_rss(h, f);
  EXPECT_NEAR(rss.value, 10.0 * std::log10(static_cast<double>(n)), 1e-9);
}

TEST(BeamRss, MismatchedBeamLosesGain) {
  const std::size_t n = 32;
  const auto h = steering_vector(0.4, n);
  const auto f_good = h.conj().normalized();
  const auto f_bad = steering_vector(-0.4, n).conj().normalized();
  EXPECT_GT(beam_rss(h, f_good).value, beam_rss(h, f_bad).value + 10.0);
}

TEST(BeamRss, ZeroChannelIsFloor) {
  linalg::CVector h(8);  // all zeros
  const auto f = steering_vector(0.0, 8).conj().normalized();
  EXPECT_LE(beam_rss(h, f).value, -250.0);
}

TEST(BeamResponse, SizeMismatchThrows) {
  EXPECT_THROW(
      beam_response(steering_vector(0, 4), steering_vector(0, 8)),
      std::invalid_argument);
}

TEST(QuantizePhases, OutputHasUniformMagnitude) {
  const auto ideal = steering_vector(0.7, 16).conj();
  const auto q = quantize_phases(ideal, 2);
  for (std::size_t n = 0; n < q.size(); ++n)
    EXPECT_NEAR(std::abs(q[n]), 1.0 / 4.0, 1e-12);  // 1/sqrt(16)
}

TEST(QuantizePhases, PhasesOnGrid) {
  const auto ideal = steering_vector(0.7, 16).conj();
  const auto q = quantize_phases(ideal, 2);
  const double step = std::numbers::pi / 2.0;  // 2 bits -> 4 levels
  for (std::size_t n = 0; n < q.size(); ++n) {
    const double phase = std::arg(q[n]);
    const double snapped = std::round(phase / step) * step;
    EXPECT_NEAR(phase, snapped, 1e-9);
  }
}

TEST(QuantizePhases, MoreBitsLessLoss) {
  const auto h = steering_vector(0.37, 32);
  const auto ideal = h.conj().normalized();
  const double perfect = beam_rss(h, ideal).value;
  double prev_loss = 1e9;
  for (int bits : {1, 2, 4, 8}) {
    const double got = beam_rss(h, quantize_phases(ideal, bits)).value;
    const double loss = perfect - got;
    EXPECT_GE(loss, -1e-9);
    EXPECT_LE(loss, prev_loss + 1e-9) << bits << " bits";
    prev_loss = loss;
  }
  EXPECT_LT(prev_loss, 0.1);  // 8-bit shifters nearly ideal
}

TEST(QuantizePhases, InvalidBitsThrow) {
  const auto v = steering_vector(0.0, 4);
  EXPECT_THROW(quantize_phases(v, 0), std::invalid_argument);
  EXPECT_THROW(quantize_phases(v, 17), std::invalid_argument);
}

}  // namespace
}  // namespace w4k::channel

#include "fec/fountain.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

namespace w4k::fec {
namespace {

std::vector<std::uint8_t> make_data(std::size_t n, std::uint64_t seed = 1) {
  Rng rng(seed);
  std::vector<std::uint8_t> data(n);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.below(256));
  return data;
}

TEST(CoefficientRow, SystematicRowsAreUnitVectors) {
  for (Esi esi = 0; esi < 5; ++esi) {
    const auto row = coefficient_row(99, esi, 5);
    for (std::size_t i = 0; i < 5; ++i)
      EXPECT_EQ(row[i], i == esi ? 1 : 0);
  }
}

TEST(CoefficientRow, RepairRowsAreDenseAndDeterministic) {
  const auto a = coefficient_row(42, 100, 20);
  const auto b = coefficient_row(42, 100, 20);
  EXPECT_EQ(a, b);
  int nonzero = 0;
  for (auto c : a) nonzero += c != 0 ? 1 : 0;
  EXPECT_GT(nonzero, 15);  // dense: ~255/256 of entries nonzero
}

TEST(CoefficientRow, DifferentEsiDifferentRow) {
  EXPECT_NE(coefficient_row(42, 100, 20), coefficient_row(42, 101, 20));
}

TEST(CoefficientRow, DifferentSeedDifferentRow) {
  EXPECT_NE(coefficient_row(1, 100, 20), coefficient_row(2, 100, 20));
}

TEST(FountainEncoder, RejectsBadArguments) {
  const auto data = make_data(100);
  EXPECT_THROW(FountainEncoder(data, 0, 1), std::invalid_argument);
  EXPECT_THROW(FountainEncoder(std::vector<std::uint8_t>{}, 10, 1),
               std::invalid_argument);
}

TEST(FountainEncoder, KIsCeilOfDataOverSymbol) {
  const auto data = make_data(100);
  EXPECT_EQ(FountainEncoder(data, 10, 1).k(), 10u);
  EXPECT_EQ(FountainEncoder(data, 30, 1).k(), 4u);
  EXPECT_EQ(FountainEncoder(data, 100, 1).k(), 1u);
  EXPECT_EQ(FountainEncoder(data, 101, 1).k(), 1u);
}

TEST(FountainEncoder, SystematicSymbolsAreSourceData) {
  const auto data = make_data(95);
  FountainEncoder enc(data, 10, 7);
  for (Esi esi = 0; esi < 9; ++esi) {
    const Symbol s = enc.encode(esi);
    for (std::size_t i = 0; i < 10; ++i)
      EXPECT_EQ(s.data[i], data[esi * 10 + i]);
  }
  // Last symbol zero-padded.
  const Symbol last = enc.encode(9);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_EQ(last.data[i], data[90 + i]);
  for (std::size_t i = 5; i < 10; ++i) EXPECT_EQ(last.data[i], 0);
}

TEST(FountainEncoder, NextEmitsSequentialEsis) {
  const auto data = make_data(50);
  FountainEncoder enc(data, 10, 7);
  EXPECT_EQ(enc.next().esi, 0u);
  EXPECT_EQ(enc.next().esi, 1u);
  EXPECT_EQ(enc.next().esi, 2u);
}

TEST(FountainRoundTrip, SystematicOnly) {
  const auto data = make_data(200, 3);
  FountainEncoder enc(data, 20, 11);
  FountainDecoder dec(enc.k(), 20, data.size(), 11);
  for (Esi e = 0; e < enc.k(); ++e)
    EXPECT_TRUE(dec.add_symbol(enc.encode(e)));
  ASSERT_TRUE(dec.can_decode());
  EXPECT_EQ(*dec.decode(), data);
}

TEST(FountainRoundTrip, RepairOnly) {
  const auto data = make_data(200, 4);
  FountainEncoder enc(data, 20, 12);
  FountainDecoder dec(enc.k(), 20, data.size(), 12);
  // Feed only repair symbols (ESI >= k).
  Esi esi = enc.k();
  while (!dec.can_decode()) {
    dec.add_symbol(enc.encode(esi++));
    ASSERT_LT(esi, enc.k() + 30u) << "needed too many repair symbols";
  }
  EXPECT_EQ(*dec.decode(), data);
}

TEST(FountainRoundTrip, MixedWithLosses) {
  const auto data = make_data(1000, 5);
  FountainEncoder enc(data, 100, 13);  // k = 10
  FountainDecoder dec(enc.k(), 100, data.size(), 13);
  Rng rng(77);
  Esi esi = 0;
  while (!dec.can_decode()) {
    const Symbol s = enc.encode(esi++);
    if (rng.chance(0.3)) continue;  // 30% loss
    dec.add_symbol(s);
    ASSERT_LT(esi, 100u);
  }
  EXPECT_EQ(*dec.decode(), data);
}

TEST(FountainRoundTrip, SingleSymbolBlock) {
  const auto data = make_data(17, 6);
  FountainEncoder enc(data, 32, 14);  // k = 1
  FountainDecoder dec(1, 32, data.size(), 14);
  EXPECT_TRUE(dec.add_symbol(enc.encode(0)));
  EXPECT_EQ(*dec.decode(), data);
}

TEST(FountainRoundTrip, RepairDecodesSingleSymbolBlock) {
  const auto data = make_data(17, 6);
  FountainEncoder enc(data, 32, 14);
  FountainDecoder dec(1, 32, data.size(), 14);
  EXPECT_TRUE(dec.add_symbol(enc.encode(5)));  // any repair symbol works
  EXPECT_EQ(*dec.decode(), data);
}

TEST(FountainDecoder, DuplicateSymbolsNotInnovative) {
  const auto data = make_data(60, 7);
  FountainEncoder enc(data, 20, 15);
  FountainDecoder dec(enc.k(), 20, data.size(), 15);
  const Symbol s = enc.encode(0);
  EXPECT_TRUE(dec.add_symbol(s));
  EXPECT_FALSE(dec.add_symbol(s));
  EXPECT_EQ(dec.rank(), 1u);
  EXPECT_EQ(dec.symbols_seen(), 2u);
}

TEST(FountainDecoder, WrongSizeSymbolRejected) {
  FountainDecoder dec(3, 20, 60, 1);
  Symbol s;
  s.esi = 0;
  s.data.assign(10, 0);  // wrong size
  EXPECT_FALSE(dec.add_symbol(s));
}

TEST(FountainDecoder, DecodeBeforeRankCompleteReturnsNothing) {
  const auto data = make_data(60, 8);
  FountainEncoder enc(data, 20, 16);
  FountainDecoder dec(enc.k(), 20, data.size(), 16);
  dec.add_symbol(enc.encode(0));
  EXPECT_FALSE(dec.can_decode());
  EXPECT_FALSE(dec.decode().has_value());
}

TEST(FountainDecoder, RejectsBadConstruction) {
  EXPECT_THROW(FountainDecoder(0, 20, 10, 1), std::invalid_argument);
  EXPECT_THROW(FountainDecoder(2, 20, 100, 1), std::invalid_argument);
}

TEST(FountainDecoder, ExtraSymbolsAfterDecodeIgnored) {
  const auto data = make_data(40, 9);
  FountainEncoder enc(data, 20, 17);
  FountainDecoder dec(enc.k(), 20, data.size(), 17);
  dec.add_symbol(enc.encode(0));
  dec.add_symbol(enc.encode(1));
  ASSERT_TRUE(dec.can_decode());
  EXPECT_FALSE(dec.add_symbol(enc.encode(2)));
  EXPECT_EQ(*dec.decode(), data);
}

// --- Decode-probability property (paper: 1 - 1/256^(h+1)) -------------------

class FountainOverheadTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FountainOverheadTest, RandomKSymbolsAlmostAlwaysDecode) {
  // Receiving exactly K distinct symbols (mixed systematic/repair) should
  // decode with probability ~ 1 - 1/256: over 300 trials expect at most a
  // handful of rank-deficient sets.
  const std::size_t k = GetParam();
  const auto data = make_data(k * 8, k);
  int failures = 0;
  const int trials = 300;
  Rng rng(1000 + k);
  for (int trial = 0; trial < trials; ++trial) {
    FountainEncoder enc(data, 8, trial * 7919u + k);
    FountainDecoder dec(k, 8, data.size(), trial * 7919u + k);
    // Choose k distinct ESIs from a window of 3k.
    std::vector<Esi> esis(3 * k);
    std::iota(esis.begin(), esis.end(), 0u);
    for (std::size_t i = esis.size(); i > 1; --i)
      std::swap(esis[i - 1], esis[rng.below(i)]);
    for (std::size_t i = 0; i < k; ++i) dec.add_symbol(enc.encode(esis[i]));
    if (!dec.can_decode()) {
      ++failures;
    } else {
      EXPECT_EQ(*dec.decode(), data);
    }
  }
  // Expected failures ~ trials/256 ~ 1.2; allow generous slack.
  EXPECT_LE(failures, 8) << "k=" << k;
}

INSTANTIATE_TEST_SUITE_P(VariousK, FountainOverheadTest,
                         ::testing::Values(2, 5, 10, 20, 40));

class FountainSizeTest
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(FountainSizeTest, RoundTripAcrossGeometries) {
  const auto [size, symbol] = GetParam();
  const auto data = make_data(size, size);
  FountainEncoder enc(data, symbol, size * 31u);
  FountainDecoder dec(enc.k(), symbol, data.size(), size * 31u);
  // Alternate systematic and repair symbols.
  Esi sys = 0, rep = static_cast<Esi>(enc.k());
  bool use_repair = false;
  while (!dec.can_decode()) {
    dec.add_symbol(enc.encode(use_repair ? rep++ : sys++));
    use_repair = !use_repair;
  }
  EXPECT_EQ(*dec.decode(), data);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, FountainSizeTest,
    ::testing::Values(std::pair<std::size_t, std::size_t>{1, 1},
                      std::pair<std::size_t, std::size_t>{100, 7},
                      std::pair<std::size_t, std::size_t>{1000, 100},
                      std::pair<std::size_t, std::size_t>{6000, 6000},
                      std::pair<std::size_t, std::size_t>{120000, 6000}));

}  // namespace
}  // namespace w4k::fec

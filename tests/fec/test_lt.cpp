#include "fec/lt.h"

#include <gtest/gtest.h>

#include <numeric>
#include <set>

namespace w4k::fec {
namespace {

std::vector<std::uint8_t> make_data(std::size_t n, std::uint64_t seed = 1) {
  Rng rng(seed);
  std::vector<std::uint8_t> data(n);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.below(256));
  return data;
}

TEST(RobustSoliton, PmfIsAProbabilityDistribution) {
  const RobustSoliton dist(100);
  double total = 0.0;
  for (double p : dist.pmf()) {
    EXPECT_GE(p, 0.0);
    total += p;
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(RobustSoliton, DegreeOneAndTwoDominate) {
  // The soliton shape: P(2) is the largest mass, P(1) small but nonzero.
  const RobustSoliton dist(100);
  const auto& pmf = dist.pmf();
  EXPECT_GT(pmf[0], 0.0);
  EXPECT_GT(pmf[1], pmf[0]);
  for (std::size_t d = 3; d < 50; ++d)
    EXPECT_GE(pmf[1], pmf[d]) << "degree " << d + 1;
}

TEST(RobustSoliton, SamplesMatchPmf) {
  const RobustSoliton dist(50);
  Rng rng(7);
  std::vector<int> counts(50, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[dist.sample(rng) - 1];
  // Spot-check degree 2 frequency against the PMF.
  EXPECT_NEAR(static_cast<double>(counts[1]) / n, dist.pmf()[1], 0.01);
  // All samples in range.
  EXPECT_EQ(std::accumulate(counts.begin(), counts.end(), 0), n);
}

TEST(RobustSoliton, BadParametersThrow) {
  EXPECT_THROW(RobustSoliton(0), std::invalid_argument);
  EXPECT_THROW(RobustSoliton(10, -1.0), std::invalid_argument);
  EXPECT_THROW(RobustSoliton(10, 0.1, 1.5), std::invalid_argument);
}

TEST(LtNeighbors, DeterministicAndDistinct) {
  const RobustSoliton dist(64);
  const auto a = lt_neighbors(dist, 42, 7);
  const auto b = lt_neighbors(dist, 42, 7);
  EXPECT_EQ(a, b);
  const std::set<std::uint32_t> unique(a.begin(), a.end());
  EXPECT_EQ(unique.size(), a.size());
  for (auto n : a) EXPECT_LT(n, 64u);
  EXPECT_NE(lt_neighbors(dist, 42, 8), a);
}

TEST(LtRoundTrip, DecodesWithModestOverhead) {
  const auto data = make_data(6400, 3);
  LtEncoder enc(data, 64, 99);  // k = 100
  LtDecoder dec(enc.k(), 64, data.size(), 99);
  std::uint32_t esi = 0;
  while (!dec.can_decode()) {
    dec.add_symbol(esi, enc.encode(esi));
    ++esi;
    ASSERT_LT(esi, 300u) << "LT overhead should stay below 3x";
  }
  EXPECT_EQ(*dec.decode(), data);
  // Classic LT overhead for k=100 with peeling only: usually < 80%.
  EXPECT_LT(esi, 190u);
}

TEST(LtRoundTrip, SurvivesLosses) {
  const auto data = make_data(3200, 4);
  LtEncoder enc(data, 64, 123);
  LtDecoder dec(enc.k(), 64, data.size(), 123);
  Rng rng(5);
  std::uint32_t esi = 0;
  while (!dec.can_decode()) {
    const auto sym = enc.encode(esi);
    if (!rng.chance(0.3)) dec.add_symbol(esi, sym);
    ++esi;
    ASSERT_LT(esi, 1000u);
  }
  EXPECT_EQ(*dec.decode(), data);
}

TEST(LtRoundTrip, SingleSymbolBlock) {
  const auto data = make_data(40, 5);
  LtEncoder enc(data, 64, 7);
  EXPECT_EQ(enc.k(), 1u);
  LtDecoder dec(1, 64, data.size(), 7);
  std::uint32_t esi = 0;
  while (!dec.can_decode()) dec.add_symbol(esi, enc.encode(esi)), ++esi;
  EXPECT_EQ(*dec.decode(), data);
}

TEST(LtDecoder, RedundantSymbolsNotCounted) {
  const auto data = make_data(640, 6);
  LtEncoder enc(data, 64, 55);
  LtDecoder dec(enc.k(), 64, data.size(), 55);
  dec.add_symbol(3, enc.encode(3));
  const std::size_t before = dec.recovered();
  dec.add_symbol(3, enc.encode(3));  // duplicate
  EXPECT_EQ(dec.symbols_seen(), 2u);
  EXPECT_EQ(dec.recovered(), before);
}

TEST(LtDecoder, WrongSizeRejected) {
  LtDecoder dec(10, 64, 640, 1);
  std::vector<std::uint8_t> wrong(32, 0);
  EXPECT_FALSE(dec.add_symbol(0, wrong));
}

TEST(LtDecoder, DecodeBeforeCompleteReturnsNothing) {
  const auto data = make_data(640, 8);
  LtEncoder enc(data, 64, 77);
  LtDecoder dec(enc.k(), 64, data.size(), 77);
  dec.add_symbol(0, enc.encode(0));
  EXPECT_FALSE(dec.decode().has_value());
}

TEST(LtVsDense, OverheadComparison) {
  // The documented trade-off: the dense GF(256) fountain decodes at ~K
  // symbols, LT needs measurable overhead.
  const auto data = make_data(6400, 9);
  double lt_total = 0.0;
  int trials = 10;
  for (int t = 0; t < trials; ++t) {
    LtEncoder enc(data, 64, 1000 + static_cast<std::uint64_t>(t));
    LtDecoder dec(enc.k(), 64, data.size(),
                  1000 + static_cast<std::uint64_t>(t));
    std::uint32_t esi = 0;
    while (!dec.can_decode()) dec.add_symbol(esi, enc.encode(esi)), ++esi;
    lt_total += static_cast<double>(esi) / static_cast<double>(enc.k());
  }
  const double lt_overhead = lt_total / trials;
  EXPECT_GT(lt_overhead, 1.02);  // LT genuinely pays overhead
  EXPECT_LT(lt_overhead, 2.0);   // but a bounded one
}

}  // namespace
}  // namespace w4k::fec

#include "fec/coding_unit.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace w4k::fec {
namespace {

std::vector<std::uint8_t> payload(std::size_t n) {
  std::vector<std::uint8_t> p(n);
  for (std::size_t i = 0; i < n; ++i)
    p[i] = static_cast<std::uint8_t>((i * 31 + 5) & 0xFF);
  return p;
}

TEST(UnitSeed, DistinctAcrossUnits) {
  std::set<std::uint64_t> seeds;
  for (std::uint16_t l = 0; l < 4; ++l)
    for (std::uint16_t s = 0; s < 32; ++s)
      seeds.insert(unit_seed(42, UnitId{l, s}));
  EXPECT_EQ(seeds.size(), 4u * 32u);
}

TEST(UnitSeed, DistinctAcrossFrames) {
  EXPECT_NE(unit_seed(1, UnitId{0, 0}), unit_seed(2, UnitId{0, 0}));
}

TEST(UnitSeed, Deterministic) {
  EXPECT_EQ(unit_seed(7, UnitId{2, 3}), unit_seed(7, UnitId{2, 3}));
}

TEST(UnitId, Ordering) {
  EXPECT_LT((UnitId{0, 5}), (UnitId{1, 0}));
  EXPECT_LT((UnitId{1, 0}), (UnitId{1, 1}));
  EXPECT_EQ((UnitId{2, 2}), (UnitId{2, 2}));
}

TEST(UnitEncoder, EmitsFreshEsis) {
  UnitEncoder enc(UnitId{1, 2}, payload(1000), 100, 9);
  EXPECT_EQ(enc.k(), 10u);
  EXPECT_EQ(enc.emit().esi, 0u);
  EXPECT_EQ(enc.emit().esi, 1u);
  EXPECT_EQ(enc.symbols_emitted(), 2u);
}

TEST(UnitRoundTrip, EncoderDecoderAgreeOnSeed) {
  const auto data = payload(950);
  UnitEncoder enc(UnitId{3, 7}, data, 100, 1234);
  UnitDecoder dec(UnitId{3, 7}, enc.k(), 100, data.size(), 1234);
  while (!dec.complete()) dec.add_symbol(enc.emit());
  EXPECT_EQ(*dec.decode(), data);
}

TEST(UnitRoundTrip, SurvivesHeavyLossViaContinuedEmission) {
  const auto data = payload(2000);
  UnitEncoder enc(UnitId{0, 0}, data, 100, 55);
  UnitDecoder dec(UnitId{0, 0}, enc.k(), 100, data.size(), 55);
  Rng rng(3);
  int sent = 0;
  while (!dec.complete()) {
    const Symbol s = enc.emit();
    ++sent;
    ASSERT_LT(sent, 200);
    if (rng.chance(0.5)) continue;
    dec.add_symbol(s);
  }
  EXPECT_EQ(*dec.decode(), data);
  EXPECT_GE(enc.symbols_emitted(), dec.k());
}

TEST(UnitRoundTrip, MismatchedFrameSeedFailsToDecodeCorrectly) {
  // A receiver with the wrong frame seed derives wrong coefficients for
  // repair symbols, so decoding either stalls or yields wrong data.
  const auto data = payload(500);
  UnitEncoder enc(UnitId{0, 1}, data, 100, 111);
  UnitDecoder dec(UnitId{0, 1}, enc.k(), 100, data.size(), 222);
  // Feed only repair symbols: coefficients disagree.
  for (int i = 0; i < 20 && !dec.complete(); ++i) {
    Symbol s = enc.emit();
    s.esi += static_cast<Esi>(enc.k());  // force repair interpretation
    dec.add_symbol(s);
  }
  if (dec.complete()) EXPECT_NE(*dec.decode(), data);
}

TEST(UnitDefaults, PaperGeometry) {
  EXPECT_EQ(kDefaultSymbolSize, 6000u);
  EXPECT_EQ(kDefaultSymbolsPerUnit, 20u);
}

TEST(UnitRoundTrip, PaperSizedUnit) {
  // A full paper-sized coding unit: 20 symbols x 6000 B = 120 kB.
  const auto data = payload(kDefaultSymbolSize * kDefaultSymbolsPerUnit);
  UnitEncoder enc(UnitId{2, 5}, data, kDefaultSymbolSize, 77);
  EXPECT_EQ(enc.k(), kDefaultSymbolsPerUnit);
  UnitDecoder dec(UnitId{2, 5}, enc.k(), kDefaultSymbolSize, data.size(), 77);
  while (!dec.complete()) dec.add_symbol(enc.emit());
  EXPECT_EQ(*dec.decode(), data);
}

}  // namespace
}  // namespace w4k::fec

// FrameArena contract: bump allocation with alignment, reset() that
// rewinds without freeing, geometric page growth until the high-water mark
// settles, and — the property the W4K_COUNT_ALLOCS gate leans on — zero
// heap traffic for any allocation pattern that fits the warmed-up pages.
#include "core/arena.h"

#include "common/alloc_count.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>

namespace w4k::core {
namespace {

TEST(FrameArena, StartsEmptyAndDefersTheFirstPage) {
  FrameArena arena;
  EXPECT_EQ(arena.used(), 0u);
  EXPECT_EQ(arena.capacity(), 0u);
  EXPECT_EQ(arena.page_count(), 0u);
  EXPECT_EQ(arena.high_water(), 0u);
}

TEST(FrameArena, InitialBytesPresizesTheFirstPage) {
  FrameArena arena(1 << 16);
  EXPECT_GE(arena.capacity(), std::size_t{1} << 16);
  EXPECT_EQ(arena.page_count(), 1u);
  EXPECT_EQ(arena.used(), 0u);
}

TEST(FrameArena, AllocSpanIsUsableAndCounted) {
  FrameArena arena;
  auto s = arena.alloc_span<double>(100);
  ASSERT_EQ(s.size(), 100u);
  for (std::size_t i = 0; i < s.size(); ++i) s[i] = double(i);
  for (std::size_t i = 0; i < s.size(); ++i) EXPECT_EQ(s[i], double(i));
  EXPECT_EQ(arena.used(), 100 * sizeof(double));
  EXPECT_EQ(arena.high_water(), arena.used());
}

TEST(FrameArena, ZeroSizeSpanIsEmptyAndFree) {
  FrameArena arena;
  EXPECT_TRUE(arena.alloc_span<int>(0).empty());
  EXPECT_EQ(arena.used(), 0u);
  EXPECT_EQ(arena.page_count(), 0u);
}

TEST(FrameArena, AllocZeroedZeroes) {
  FrameArena arena;
  auto a = arena.alloc_span<std::uint8_t>(256);
  std::memset(a.data(), 0xAB, a.size());
  arena.reset();
  auto z = arena.alloc_zeroed<std::uint8_t>(256);
  for (std::uint8_t v : z) EXPECT_EQ(v, 0u);
}

TEST(FrameArena, RespectsAlignment) {
  FrameArena arena;
  arena.alloc_span<char>(1);  // misalign the bump cursor
  for (std::size_t align : {2, 4, 8, 16, 64}) {
    void* p = arena.allocate(3, align);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % align, 0u)
        << "alignment " << align;
    arena.alloc_span<char>(1);
  }
}

TEST(FrameArena, ResetRewindsWithoutFreeing) {
  FrameArena arena;
  auto first = arena.alloc_span<double>(512);
  const std::size_t cap = arena.capacity();
  const std::size_t pages = arena.page_count();
  arena.reset();
  EXPECT_EQ(arena.used(), 0u);
  EXPECT_EQ(arena.capacity(), cap);
  EXPECT_EQ(arena.page_count(), pages);
  // The rewound arena hands back the same memory.
  auto second = arena.alloc_span<double>(512);
  EXPECT_EQ(second.data(), first.data());
}

TEST(FrameArena, GrowsAcrossPagesAndKeepsOldSpansValid) {
  FrameArena arena(4096);
  auto a = arena.alloc_span<std::uint8_t>(3000);
  std::memset(a.data(), 1, a.size());
  // Exceed the first page: a new one must appear, and `a` must survive.
  auto b = arena.alloc_span<std::uint8_t>(3000);
  std::memset(b.data(), 2, b.size());
  EXPECT_GE(arena.page_count(), 2u);
  for (std::uint8_t v : a) ASSERT_EQ(v, 1u);
  for (std::uint8_t v : b) ASSERT_EQ(v, 2u);
  EXPECT_EQ(arena.high_water(), 6000u);
}

TEST(FrameArena, SteadyStateAddsNoPagesAndNoHeapTraffic) {
  FrameArena arena;
  const auto frame = [&arena] {
    arena.reset();
    arena.alloc_span<double>(700);
    arena.allocate(96, 64);
    arena.alloc_zeroed<std::uint32_t>(1200);
  };
  frame();  // warmup establishes the high-water mark
  const std::size_t pages = arena.page_count();
  const std::size_t cap = arena.capacity();
  const alloc_count::Scope scope;
  for (int i = 0; i < 16; ++i) frame();
  EXPECT_EQ(arena.page_count(), pages);
  EXPECT_EQ(arena.capacity(), cap);
  if (alloc_count::counting_available()) {
    EXPECT_EQ(scope.taken(), 0u)
        << "warmed-up arena reached the heap in steady state";
  }
}

}  // namespace
}  // namespace w4k::core

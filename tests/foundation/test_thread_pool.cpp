// ThreadPool semantics plus the determinism contract the compute substrate
// promises: parallel SSIM / MS-SSIM and parallel fountain encoding are
// bit-identical to the serial path for any pool size, because chunk
// boundaries depend only on the range and per-chunk partials reduce in
// chunk order.
#include "common/thread_pool.h"

#include "fec/fountain.h"
#include "quality/metrics.h"
#include "video/synthetic.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace w4k {
namespace {

/// Restores the default shared pool however a test exits.
struct SharedPoolGuard {
  ~SharedPoolGuard() { ThreadPool::reset_shared(0); }
};

TEST(ThreadPool, CoversRangeExactlyOnce) {
  for (std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    ThreadPool pool(threads);
    EXPECT_EQ(pool.size(), threads);
    std::vector<std::atomic<int>> hits(1000);
    pool.parallel_for(0, hits.size(), 7, [&](std::size_t b, std::size_t e) {
      for (std::size_t i = b; i < e; ++i)
        hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < hits.size(); ++i)
      ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, EmptyRangeAndZeroGrain) {
  ThreadPool pool(2);
  bool ran = false;
  pool.parallel_for(5, 5, 4, [&](std::size_t, std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
  // grain 0 is promoted to 1.
  std::atomic<int> n{0};
  pool.parallel_for(0, 3, 0, [&](std::size_t b, std::size_t e) {
    n += static_cast<int>(e - b);
  });
  EXPECT_EQ(n.load(), 3);
}

TEST(ThreadPool, PropagatesBodyException) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(0, 100, 1,
                                 [&](std::size_t b, std::size_t) {
                                   if (b == 57)
                                     throw std::runtime_error("chunk 57");
                                 }),
               std::runtime_error);
  // The pool survives and runs the next job.
  std::atomic<int> n{0};
  pool.parallel_for(0, 10, 2, [&](std::size_t b, std::size_t e) {
    n += static_cast<int>(e - b);
  });
  EXPECT_EQ(n.load(), 10);
}

TEST(ThreadPool, NestedParallelForRunsInline) {
  ThreadPool pool(3);
  std::atomic<int> inner_total{0};
  pool.parallel_for(0, 8, 1, [&](std::size_t, std::size_t) {
    // Must not deadlock; nested bodies run inline on this worker.
    ThreadPool::shared().parallel_for(0, 4, 1,
                                      [&](std::size_t b, std::size_t e) {
                                        inner_total +=
                                            static_cast<int>(e - b);
                                      });
  });
  EXPECT_EQ(inner_total.load(), 32);
}

// --- Determinism across pool sizes -----------------------------------------

video::Frame test_frame(std::uint64_t seed_frame) {
  video::VideoSpec spec;
  spec.width = 256;
  spec.height = 160;
  spec.frames = 2;
  spec.richness = video::Richness::kHigh;
  return video::SyntheticVideo(spec).frame(static_cast<int>(seed_frame));
}

TEST(ThreadPoolDeterminism, SsimBitIdenticalAcrossPoolSizes) {
  SharedPoolGuard guard;
  const video::Frame a = test_frame(0);
  const video::Frame b = test_frame(1);

  ThreadPool::reset_shared(1);  // serial reference
  const double ssim_ref = quality::ssim(a, b);
  const double ms_ref = quality::ms_ssim(a, b, 4);
  const double psnr_ref = quality::psnr(a, b);

  for (std::size_t threads : {std::size_t{2}, std::size_t{0}}) {
    ThreadPool::reset_shared(threads);
    EXPECT_EQ(quality::ssim(a, b), ssim_ref) << "pool=" << threads;
    EXPECT_EQ(quality::ms_ssim(a, b, 4), ms_ref) << "pool=" << threads;
    EXPECT_EQ(quality::psnr(a, b), psnr_ref) << "pool=" << threads;
  }
}

TEST(ThreadPoolDeterminism, FountainEncodeBitIdenticalAcrossPoolSizes) {
  SharedPoolGuard guard;
  std::vector<std::uint8_t> data(12'345);
  for (std::size_t i = 0; i < data.size(); ++i)
    data[i] = static_cast<std::uint8_t>(i * 31 + 5);
  const fec::FountainEncoder enc(data, 600, /*block_seed=*/99);
  const auto first = static_cast<fec::Esi>(enc.k());
  constexpr std::size_t kCount = 40;

  ThreadPool::reset_shared(1);
  const std::vector<fec::Symbol> ref = enc.encode_batch(first, kCount);
  ASSERT_EQ(ref.size(), kCount);
  // The batch must equal one-at-a-time encoding.
  for (std::size_t i = 0; i < kCount; ++i) {
    const fec::Symbol one = enc.encode(first + static_cast<fec::Esi>(i));
    ASSERT_EQ(ref[i].esi, one.esi);
    ASSERT_EQ(ref[i].data, one.data) << "esi " << one.esi;
  }

  for (std::size_t threads : {std::size_t{2}, std::size_t{0}}) {
    ThreadPool::reset_shared(threads);
    const std::vector<fec::Symbol> got = enc.encode_batch(first, kCount);
    ASSERT_EQ(got.size(), kCount);
    for (std::size_t i = 0; i < kCount; ++i) {
      ASSERT_EQ(got[i].esi, ref[i].esi);
      ASSERT_EQ(got[i].data, ref[i].data)
          << "pool=" << threads << " esi=" << got[i].esi;
    }
  }
}

TEST(ThreadPoolDeterminism, BatchRoundTripsThroughDecoder) {
  SharedPoolGuard guard;
  ThreadPool::reset_shared(0);
  std::vector<std::uint8_t> data(9'001);
  for (std::size_t i = 0; i < data.size(); ++i)
    data[i] = static_cast<std::uint8_t>(i * 131 + 17);
  const fec::FountainEncoder enc(data, 500, /*block_seed=*/7);
  // Worst case: decode purely from batch-encoded repair symbols.
  const auto repair =
      enc.encode_batch(static_cast<fec::Esi>(enc.k()), enc.k() + 3);
  fec::FountainDecoder dec(enc.k(), enc.symbol_size(), data.size(), 7);
  for (const auto& s : repair) {
    dec.add_symbol(s);
    if (dec.can_decode()) break;
  }
  ASSERT_TRUE(dec.can_decode());
  const auto out = dec.decode();
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, data);
}

}  // namespace
}  // namespace w4k

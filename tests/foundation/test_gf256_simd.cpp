// Exhaustive scalar-vs-SIMD equivalence for the GF(256) row kernels: every
// coefficient (0..255) crossed with unaligned spans of every length in
// 1..131 bytes, run on every dispatch tier the CPU supports, plus the
// W4K_FORCE_SCALAR environment override path.
#include "gf256/gf256.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <vector>

namespace w4k::gf256 {
namespace {

constexpr std::size_t kMaxLen = 131;  // covers 4x SIMD width + odd tails
constexpr std::size_t kMaxOffset = 3;  // misalignment relative to the buffer

std::vector<Tier> supported_tiers() {
  std::vector<Tier> tiers;
  for (Tier t : {Tier::kScalar, Tier::kSsse3, Tier::kAvx2, Tier::kNeon})
    if (tier_supported(t)) tiers.push_back(t);
  return tiers;
}

/// Restores the default dispatch however a test exits.
struct DispatchGuard {
  ~DispatchGuard() { refresh_dispatch(); }
};

TEST(Gf256Simd, ScalarTierAlwaysSupported) {
  EXPECT_TRUE(tier_supported(Tier::kScalar));
  EXPECT_FALSE(supported_tiers().empty());
}

TEST(Gf256Simd, SetActiveTierRejectsUnsupported) {
  DispatchGuard guard;
  for (Tier t : {Tier::kScalar, Tier::kSsse3, Tier::kAvx2, Tier::kNeon}) {
    if (tier_supported(t)) {
      EXPECT_TRUE(set_active_tier(t)) << tier_name(t);
      EXPECT_EQ(active_tier(), t);
    } else {
      const Tier before = active_tier();
      EXPECT_FALSE(set_active_tier(t)) << tier_name(t);
      EXPECT_EQ(active_tier(), before);  // unchanged on failure
    }
  }
}

TEST(Gf256Simd, MulAddRowMatchesScalarOnEveryTier) {
  DispatchGuard guard;
  // Reference results computed element-wise with mul(), independent of any
  // row kernel.
  std::vector<std::uint8_t> buf_src(kMaxOffset + kMaxLen);
  std::vector<std::uint8_t> buf_init(kMaxOffset + kMaxLen);
  for (std::size_t i = 0; i < buf_src.size(); ++i) {
    buf_src[i] = static_cast<std::uint8_t>(i * 151 + 43);
    buf_init[i] = static_cast<std::uint8_t>(i * 197 + 11);
  }
  for (Tier t : supported_tiers()) {
    ASSERT_TRUE(set_active_tier(t));
    for (int coeff = 0; coeff < 256; ++coeff) {
      const auto c = static_cast<std::uint8_t>(coeff);
      for (std::size_t off = 0; off <= kMaxOffset; ++off) {
        for (std::size_t len = 1; len + off <= kMaxLen; ++len) {
          std::vector<std::uint8_t> dst(buf_init.begin(),
                                        buf_init.begin() + off + len);
          std::span<std::uint8_t> d(dst.data() + off, len);
          std::span<const std::uint8_t> s(buf_src.data() + off, len);
          mul_add_row(d, s, c);
          for (std::size_t i = 0; i < len; ++i) {
            const std::uint8_t expect = static_cast<std::uint8_t>(
                buf_init[off + i] ^ mul(c, buf_src[off + i]));
            ASSERT_EQ(d[i], expect)
                << tier_name(t) << " coeff=" << coeff << " off=" << off
                << " len=" << len << " i=" << i;
          }
          // The kernel must not touch bytes before the span.
          for (std::size_t i = 0; i < off; ++i)
            ASSERT_EQ(dst[i], buf_init[i]);
        }
      }
    }
  }
}

TEST(Gf256Simd, ScaleRowMatchesScalarOnEveryTier) {
  DispatchGuard guard;
  std::vector<std::uint8_t> buf_init(kMaxOffset + kMaxLen);
  for (std::size_t i = 0; i < buf_init.size(); ++i)
    buf_init[i] = static_cast<std::uint8_t>(i * 89 + 7);
  for (Tier t : supported_tiers()) {
    ASSERT_TRUE(set_active_tier(t));
    for (int coeff = 0; coeff < 256; ++coeff) {
      const auto c = static_cast<std::uint8_t>(coeff);
      for (std::size_t off = 0; off <= kMaxOffset; ++off) {
        for (std::size_t len = 1; len + off <= kMaxLen; ++len) {
          std::vector<std::uint8_t> dst(buf_init.begin(),
                                        buf_init.begin() + off + len);
          scale_row(std::span<std::uint8_t>(dst.data() + off, len), c);
          for (std::size_t i = 0; i < len; ++i)
            ASSERT_EQ(dst[off + i], mul(c, buf_init[off + i]))
                << tier_name(t) << " coeff=" << coeff << " off=" << off
                << " len=" << len << " i=" << i;
          for (std::size_t i = 0; i < off; ++i)
            ASSERT_EQ(dst[i], buf_init[i]);
        }
      }
    }
  }
}

TEST(Gf256Simd, ForceScalarEnvPinsScalarTier) {
  DispatchGuard guard;
  ASSERT_EQ(setenv("W4K_FORCE_SCALAR", "1", 1), 0);
  EXPECT_EQ(refresh_dispatch(), Tier::kScalar);
  EXPECT_EQ(active_tier(), Tier::kScalar);
  // "0" means no override.
  ASSERT_EQ(setenv("W4K_FORCE_SCALAR", "0", 1), 0);
  const Tier best = refresh_dispatch();
  ASSERT_EQ(unsetenv("W4K_FORCE_SCALAR"), 0);
  EXPECT_EQ(refresh_dispatch(), best);
}

}  // namespace
}  // namespace w4k::gf256

#include "linalg/decompose.h"
#include "linalg/matrix.h"

#include <gtest/gtest.h>

#include <cmath>
#include <complex>

namespace w4k::linalg {
namespace {

using namespace std::complex_literals;

TEST(CVector, NormOfKnownVector) {
  CVector v{{3.0, 0.0}, {0.0, 4.0}};
  EXPECT_DOUBLE_EQ(v.norm(), 5.0);
  EXPECT_DOUBLE_EQ(v.norm_sq(), 25.0);
}

TEST(CVector, NormalizedHasUnitNorm) {
  CVector v{{1.0, 2.0}, {-3.0, 0.5}, {0.0, 1.0}};
  EXPECT_NEAR(v.normalized().norm(), 1.0, 1e-14);
}

TEST(CVector, NormalizeZeroThrows) {
  CVector v(3);
  EXPECT_THROW(v.normalized(), std::domain_error);
}

TEST(CVector, ConjNegatesImaginary) {
  CVector v{{1.0, 2.0}};
  EXPECT_EQ(v.conj()[0], Complex(1.0, -2.0));
}

TEST(CVector, ArithmeticOperators) {
  CVector a{{1.0, 0.0}, {2.0, 0.0}};
  CVector b{{0.5, 0.0}, {-1.0, 0.0}};
  const CVector sum = a + b;
  EXPECT_EQ(sum[0], Complex(1.5, 0.0));
  EXPECT_EQ(sum[1], Complex(1.0, 0.0));
  const CVector scaled = a * Complex(2.0, 0.0);
  EXPECT_EQ(scaled[1], Complex(4.0, 0.0));
}

TEST(CVector, SizeMismatchThrows) {
  CVector a(2), b(3);
  EXPECT_THROW(a += b, std::invalid_argument);
  EXPECT_THROW(dot(a, b), std::invalid_argument);
}

TEST(CVector, DotConjugatesFirstArgument) {
  CVector a{{0.0, 1.0}};  // i
  CVector b{{0.0, 1.0}};  // i
  // <a, b> = conj(i) * i = 1.
  EXPECT_EQ(dot(a, b), Complex(1.0, 0.0));
}

TEST(CMatrix, IdentityMultiplication) {
  const CMatrix id = CMatrix::identity(3);
  CVector v{{1.0, 1.0}, {2.0, -1.0}, {0.0, 3.0}};
  const CVector w = id * v;
  for (std::size_t i = 0; i < 3; ++i) EXPECT_EQ(w[i], v[i]);
}

TEST(CMatrix, HermitianTransposesAndConjugates) {
  CMatrix m(2, 3);
  m(0, 1) = Complex(1.0, 2.0);
  const CMatrix h = m.hermitian();
  EXPECT_EQ(h.rows(), 3u);
  EXPECT_EQ(h.cols(), 2u);
  EXPECT_EQ(h(1, 0), Complex(1.0, -2.0));
}

TEST(CMatrix, MatrixProductKnownValue) {
  CMatrix a(2, 2), b(2, 2);
  a(0, 0) = 1.0; a(0, 1) = 2.0; a(1, 0) = 3.0; a(1, 1) = 4.0;
  b(0, 0) = 5.0; b(0, 1) = 6.0; b(1, 0) = 7.0; b(1, 1) = 8.0;
  const CMatrix c = a * b;
  EXPECT_EQ(c(0, 0), Complex(19.0, 0.0));
  EXPECT_EQ(c(1, 1), Complex(50.0, 0.0));
}

TEST(CMatrix, DimensionMismatchThrows) {
  CMatrix a(2, 3);
  CVector v(2);
  EXPECT_THROW(a * v, std::invalid_argument);
}

TEST(CMatrix, FromRowsRoundTrip) {
  CVector r0{{1.0, 0.0}, {2.0, 0.0}};
  CVector r1{{3.0, 0.0}, {4.0, 0.0}};
  const CMatrix m = CMatrix::from_rows({r0, r1});
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.row(0)[1], Complex(2.0, 0.0));
  EXPECT_EQ(m.col(0)[1], Complex(3.0, 0.0));
}

TEST(CMatrix, FrobeniusNorm) {
  CMatrix m(2, 2);
  m(0, 0) = 3.0;
  m(1, 1) = 4.0;
  EXPECT_DOUBLE_EQ(m.frobenius_norm(), 5.0);
}

// --- Decompositions ---------------------------------------------------------

TEST(DominantSVD, RankOneMatrixRecovered) {
  // A = sigma * u v^H: the dominant right singular vector is v.
  CVector v{{0.6, 0.0}, {0.0, 0.8}};
  CMatrix a(1, 2);
  a(0, 0) = std::conj(v[0]) * 5.0;
  a(0, 1) = std::conj(v[1]) * 5.0;
  Rng rng(1);
  const auto svd = dominant_right_singular(a, rng);
  EXPECT_NEAR(svd.singular_value, 5.0, 1e-9);
  // Alignment up to a global phase.
  EXPECT_NEAR(std::abs(dot(svd.right_singular, v)), 1.0, 1e-9);
}

TEST(DominantSVD, MaximizesResponseOverRandomVectors) {
  Rng rng(2);
  CMatrix a(3, 4);
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t c = 0; c < 4; ++c)
      a(r, c) = Complex(rng.gaussian(), rng.gaussian());
  const auto svd = dominant_right_singular(a, rng);
  const double best = (a * svd.right_singular).norm();
  for (int trial = 0; trial < 200; ++trial) {
    CVector v(4);
    for (std::size_t i = 0; i < 4; ++i)
      v[i] = Complex(rng.gaussian(), rng.gaussian());
    EXPECT_LE((a * v.normalized()).norm(), best + 1e-6);
  }
}

TEST(DominantSVD, ZeroMatrix) {
  CMatrix a(2, 2);
  Rng rng(3);
  const auto svd = dominant_right_singular(a, rng);
  EXPECT_DOUBLE_EQ(svd.singular_value, 0.0);
  EXPECT_NEAR(svd.right_singular.norm(), 1.0, 1e-12);
}

TEST(DominantSVD, EmptyMatrix) {
  CMatrix a;
  Rng rng(4);
  const auto svd = dominant_right_singular(a, rng);
  EXPECT_EQ(svd.right_singular.size(), 0u);
}

TEST(HermitianEigen, DiagonalMatrix) {
  CMatrix m(3, 3);
  m(0, 0) = 1.0;
  m(1, 1) = 5.0;
  m(2, 2) = 3.0;
  const auto pairs = hermitian_eigen(m);
  ASSERT_EQ(pairs.size(), 3u);
  EXPECT_NEAR(pairs[0].value, 5.0, 1e-10);
  EXPECT_NEAR(pairs[1].value, 3.0, 1e-10);
  EXPECT_NEAR(pairs[2].value, 1.0, 1e-10);
}

TEST(HermitianEigen, ComplexHermitianKnownEigenvalues) {
  // [[2, i], [-i, 2]] has eigenvalues 3 and 1.
  CMatrix m(2, 2);
  m(0, 0) = 2.0;
  m(0, 1) = 1.0i;
  m(1, 0) = -1.0i;
  m(1, 1) = 2.0;
  const auto pairs = hermitian_eigen(m);
  EXPECT_NEAR(pairs[0].value, 3.0, 1e-10);
  EXPECT_NEAR(pairs[1].value, 1.0, 1e-10);
  // Eigenvector property: ||M v - lambda v|| ~ 0.
  for (const auto& p : pairs) {
    CVector mv = m * p.vector;
    CVector lv = p.vector * Complex(p.value, 0.0);
    EXPECT_NEAR((mv - lv).norm(), 0.0, 1e-9);
  }
}

TEST(HermitianEigen, TraceEqualsEigenvalueSum) {
  Rng rng(5);
  CMatrix m(4, 4);
  for (std::size_t r = 0; r < 4; ++r) {
    m(r, r) = rng.gaussian();
    for (std::size_t c = r + 1; c < 4; ++c) {
      m(r, c) = Complex(rng.gaussian(), rng.gaussian());
      m(c, r) = std::conj(m(r, c));
    }
  }
  double trace = 0.0;
  for (std::size_t i = 0; i < 4; ++i) trace += std::real(m(i, i));
  const auto pairs = hermitian_eigen(m);
  double sum = 0.0;
  for (const auto& p : pairs) sum += p.value;
  EXPECT_NEAR(sum, trace, 1e-9);
}

TEST(HermitianEigen, NonSquareThrows) {
  EXPECT_THROW(hermitian_eigen(CMatrix(2, 3)), std::invalid_argument);
}

TEST(LeastSquares, ExactSolutionForSquareSystem) {
  CMatrix a(2, 2);
  a(0, 0) = 2.0;
  a(1, 1) = 4.0;
  CVector b{{2.0, 0.0}, {8.0, 0.0}};
  const CVector x = solve_least_squares(a, b);
  EXPECT_NEAR(std::abs(x[0] - Complex(1.0, 0.0)), 0.0, 1e-6);
  EXPECT_NEAR(std::abs(x[1] - Complex(2.0, 0.0)), 0.0, 1e-6);
}

TEST(LeastSquares, OverdeterminedConsistentSystem) {
  Rng rng(6);
  const std::size_t m = 12, n = 4;
  CMatrix a(m, n);
  CVector truth(n);
  for (std::size_t i = 0; i < n; ++i)
    truth[i] = Complex(rng.gaussian(), rng.gaussian());
  for (std::size_t r = 0; r < m; ++r)
    for (std::size_t c = 0; c < n; ++c)
      a(r, c) = Complex(rng.gaussian(), rng.gaussian());
  const CVector b = a * truth;
  const CVector x = solve_least_squares(a, b);
  EXPECT_NEAR((x - truth).norm(), 0.0, 1e-6);
}

TEST(LeastSquares, DimensionMismatchThrows) {
  EXPECT_THROW(solve_least_squares(CMatrix(3, 2), CVector(2)),
               std::invalid_argument);
}

}  // namespace
}  // namespace w4k::linalg

#include "common/stats.h"

#include <gtest/gtest.h>

#include <limits>
#include <stdexcept>
#include <vector>

namespace w4k {
namespace {

TEST(Stats, MeanBasics) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(v), 2.5);
  EXPECT_DOUBLE_EQ(mean(std::vector<double>{}), 0.0);
}

TEST(Stats, StddevKnownValue) {
  const std::vector<double> v{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_NEAR(stddev(v), 2.0, 1e-12);  // classic textbook example
}

TEST(Stats, StddevDegenerate) {
  EXPECT_DOUBLE_EQ(stddev(std::vector<double>{5.0}), 0.0);
  EXPECT_DOUBLE_EQ(stddev(std::vector<double>{}), 0.0);
}

TEST(Stats, HarmonicMeanKnownValue) {
  const std::vector<double> v{1.0, 2.0, 4.0};
  EXPECT_NEAR(harmonic_mean(v), 3.0 / (1.0 + 0.5 + 0.25), 1e-12);
}

TEST(Stats, HarmonicMeanZeroElementYieldsZero) {
  const std::vector<double> v{1.0, 0.0, 4.0};
  EXPECT_DOUBLE_EQ(harmonic_mean(v), 0.0);
}

TEST(Stats, HarmonicMeanDominatedBySmallValues) {
  const std::vector<double> v{100.0, 1.0};
  EXPECT_LT(harmonic_mean(v), 2.0);  // why FastMPC uses it for prediction
}

TEST(Stats, QuantileSortedEndpoints) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_DOUBLE_EQ(quantile_sorted(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(v, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(v, 0.5), 3.0);
}

TEST(Stats, QuantileInterpolates) {
  const std::vector<double> v{0.0, 10.0};
  EXPECT_DOUBLE_EQ(quantile_sorted(v, 0.25), 2.5);
}

TEST(Stats, SummarizeFiveNumber) {
  const std::vector<double> v{5.0, 1.0, 3.0, 2.0, 4.0};
  const Summary s = summarize(v);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.q1, 2.0);
  EXPECT_DOUBLE_EQ(s.q3, 4.0);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_EQ(s.count, 5u);
}

TEST(Stats, SummarizeEmpty) {
  const Summary s = summarize(std::vector<double>{});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
  EXPECT_DOUBLE_EQ(s.min, 0.0);
  EXPECT_DOUBLE_EQ(s.q1, 0.0);
  EXPECT_DOUBLE_EQ(s.median, 0.0);
  EXPECT_DOUBLE_EQ(s.q3, 0.0);
  EXPECT_DOUBLE_EQ(s.max, 0.0);
}

TEST(Stats, SummarizeSingleSample) {
  // All five box-plot numbers collapse onto the one sample.
  const Summary s = summarize(std::vector<double>{3.25});
  EXPECT_EQ(s.count, 1u);
  EXPECT_DOUBLE_EQ(s.min, 3.25);
  EXPECT_DOUBLE_EQ(s.q1, 3.25);
  EXPECT_DOUBLE_EQ(s.median, 3.25);
  EXPECT_DOUBLE_EQ(s.q3, 3.25);
  EXPECT_DOUBLE_EQ(s.max, 3.25);
  EXPECT_DOUBLE_EQ(s.mean, 3.25);
}

TEST(Stats, QuantileSingleSample) {
  const std::vector<double> v{7.0};
  EXPECT_DOUBLE_EQ(quantile_sorted(v, 0.0), 7.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(v, 0.5), 7.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(v, 1.0), 7.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(std::vector<double>{}, 0.5), 0.0);
}

TEST(Stats, SummarizeRejectsNaN) {
  // NaN breaks the sort's strict weak ordering; it must fail loudly.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(summarize(std::vector<double>{1.0, nan, 3.0}),
               std::invalid_argument);
  EXPECT_THROW(summarize(std::vector<double>{nan}), std::invalid_argument);
}

TEST(Stats, SummarizeAcceptsInfinity) {
  // Infinities order fine and show up honestly in min/max.
  const double inf = std::numeric_limits<double>::infinity();
  const Summary s = summarize(std::vector<double>{1.0, inf});
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, inf);
}

TEST(Stats, SummarizeDoesNotMutateInput) {
  const std::vector<double> v{3.0, 1.0, 2.0};
  auto copy = v;
  (void)summarize(copy);
  EXPECT_EQ(copy, v);
}

TEST(Stats, ToStringContainsFields) {
  const Summary s = summarize(std::vector<double>{1.0, 2.0, 3.0});
  const std::string str = to_string(s);
  EXPECT_NE(str.find("mean="), std::string::npos);
  EXPECT_NE(str.find("med="), std::string::npos);
  EXPECT_NE(str.find("n=3"), std::string::npos);
}

TEST(Stats, RunningStatsMatchesBatch) {
  const std::vector<double> v{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  RunningStats rs;
  for (double x : v) rs.add(x);
  EXPECT_EQ(rs.count(), v.size());
  EXPECT_NEAR(rs.mean(), mean(v), 1e-12);
  EXPECT_NEAR(rs.stddev(), stddev(v), 1e-12);
}

TEST(Stats, RunningStatsEmpty) {
  RunningStats rs;
  EXPECT_DOUBLE_EQ(rs.mean(), 0.0);
  EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
}

TEST(Stats, RunningStatsSingleSample) {
  RunningStats rs;
  rs.add(4.5);
  EXPECT_EQ(rs.count(), 1u);
  EXPECT_DOUBLE_EQ(rs.mean(), 4.5);
  EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
  EXPECT_DOUBLE_EQ(rs.stddev(), 0.0);
}

TEST(Stats, RunningStatsRejectsNaN) {
  RunningStats rs;
  rs.add(1.0);
  EXPECT_THROW(rs.add(std::numeric_limits<double>::quiet_NaN()),
               std::invalid_argument);
  // The rejected sample must not have corrupted the accumulator.
  EXPECT_EQ(rs.count(), 1u);
  EXPECT_DOUBLE_EQ(rs.mean(), 1.0);
}

}  // namespace
}  // namespace w4k

#include "common/stats.h"

#include <gtest/gtest.h>

#include <vector>

namespace w4k {
namespace {

TEST(Stats, MeanBasics) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(v), 2.5);
  EXPECT_DOUBLE_EQ(mean(std::vector<double>{}), 0.0);
}

TEST(Stats, StddevKnownValue) {
  const std::vector<double> v{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_NEAR(stddev(v), 2.0, 1e-12);  // classic textbook example
}

TEST(Stats, StddevDegenerate) {
  EXPECT_DOUBLE_EQ(stddev(std::vector<double>{5.0}), 0.0);
  EXPECT_DOUBLE_EQ(stddev(std::vector<double>{}), 0.0);
}

TEST(Stats, HarmonicMeanKnownValue) {
  const std::vector<double> v{1.0, 2.0, 4.0};
  EXPECT_NEAR(harmonic_mean(v), 3.0 / (1.0 + 0.5 + 0.25), 1e-12);
}

TEST(Stats, HarmonicMeanZeroElementYieldsZero) {
  const std::vector<double> v{1.0, 0.0, 4.0};
  EXPECT_DOUBLE_EQ(harmonic_mean(v), 0.0);
}

TEST(Stats, HarmonicMeanDominatedBySmallValues) {
  const std::vector<double> v{100.0, 1.0};
  EXPECT_LT(harmonic_mean(v), 2.0);  // why FastMPC uses it for prediction
}

TEST(Stats, QuantileSortedEndpoints) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_DOUBLE_EQ(quantile_sorted(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(v, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(v, 0.5), 3.0);
}

TEST(Stats, QuantileInterpolates) {
  const std::vector<double> v{0.0, 10.0};
  EXPECT_DOUBLE_EQ(quantile_sorted(v, 0.25), 2.5);
}

TEST(Stats, SummarizeFiveNumber) {
  const std::vector<double> v{5.0, 1.0, 3.0, 2.0, 4.0};
  const Summary s = summarize(v);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.q1, 2.0);
  EXPECT_DOUBLE_EQ(s.q3, 4.0);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_EQ(s.count, 5u);
}

TEST(Stats, SummarizeEmpty) {
  const Summary s = summarize(std::vector<double>{});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(Stats, SummarizeDoesNotMutateInput) {
  const std::vector<double> v{3.0, 1.0, 2.0};
  auto copy = v;
  (void)summarize(copy);
  EXPECT_EQ(copy, v);
}

TEST(Stats, ToStringContainsFields) {
  const Summary s = summarize(std::vector<double>{1.0, 2.0, 3.0});
  const std::string str = to_string(s);
  EXPECT_NE(str.find("mean="), std::string::npos);
  EXPECT_NE(str.find("med="), std::string::npos);
  EXPECT_NE(str.find("n=3"), std::string::npos);
}

TEST(Stats, RunningStatsMatchesBatch) {
  const std::vector<double> v{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  RunningStats rs;
  for (double x : v) rs.add(x);
  EXPECT_EQ(rs.count(), v.size());
  EXPECT_NEAR(rs.mean(), mean(v), 1e-12);
  EXPECT_NEAR(rs.stddev(), stddev(v), 1e-12);
}

TEST(Stats, RunningStatsEmpty) {
  RunningStats rs;
  EXPECT_DOUBLE_EQ(rs.mean(), 0.0);
  EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
}

}  // namespace
}  // namespace w4k

#include "gf256/gf256.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <vector>

namespace w4k::gf256 {
namespace {

TEST(Gf256, MultiplicativeIdentity) {
  for (int a = 0; a < 256; ++a) {
    EXPECT_EQ(mul(static_cast<std::uint8_t>(a), 1), a);
    EXPECT_EQ(mul(1, static_cast<std::uint8_t>(a)), a);
  }
}

TEST(Gf256, ZeroAnnihilates) {
  for (int a = 0; a < 256; ++a) {
    EXPECT_EQ(mul(static_cast<std::uint8_t>(a), 0), 0);
    EXPECT_EQ(mul(0, static_cast<std::uint8_t>(a)), 0);
  }
}

TEST(Gf256, MultiplicationCommutative) {
  for (int a = 1; a < 256; a += 7)
    for (int b = 1; b < 256; b += 11)
      EXPECT_EQ(mul(static_cast<std::uint8_t>(a), static_cast<std::uint8_t>(b)),
                mul(static_cast<std::uint8_t>(b), static_cast<std::uint8_t>(a)));
}

TEST(Gf256, MultiplicationAssociative) {
  for (int a = 1; a < 256; a += 31)
    for (int b = 1; b < 256; b += 37)
      for (int c = 1; c < 256; c += 41) {
        const auto ua = static_cast<std::uint8_t>(a);
        const auto ub = static_cast<std::uint8_t>(b);
        const auto uc = static_cast<std::uint8_t>(c);
        EXPECT_EQ(mul(mul(ua, ub), uc), mul(ua, mul(ub, uc)));
      }
}

TEST(Gf256, DistributesOverXor) {
  // Addition in GF(2^8) is XOR.
  for (int a = 1; a < 256; a += 13)
    for (int b = 0; b < 256; b += 17)
      for (int c = 0; c < 256; c += 19) {
        const auto ua = static_cast<std::uint8_t>(a);
        const auto ub = static_cast<std::uint8_t>(b);
        const auto uc = static_cast<std::uint8_t>(c);
        EXPECT_EQ(mul(ua, static_cast<std::uint8_t>(ub ^ uc)),
                  mul(ua, ub) ^ mul(ua, uc));
      }
}

TEST(Gf256, EveryNonzeroElementHasInverse) {
  for (int a = 1; a < 256; ++a) {
    const auto ua = static_cast<std::uint8_t>(a);
    EXPECT_EQ(mul(ua, inv(ua)), 1) << "a=" << a;
  }
}

TEST(Gf256, DivisionInvertsMultiplication) {
  for (int a = 0; a < 256; a += 5)
    for (int b = 1; b < 256; b += 9) {
      const auto ua = static_cast<std::uint8_t>(a);
      const auto ub = static_cast<std::uint8_t>(b);
      EXPECT_EQ(div(mul(ua, ub), ub), ua);
    }
}

TEST(Gf256, DivisionByZeroThrows) {
  // The contract is an exception in every build mode — a silent 0 would
  // let a decoder bug corrupt data unnoticed in release builds.
  EXPECT_THROW(div(0, 0), std::domain_error);
  EXPECT_THROW(div(1, 0), std::domain_error);
  EXPECT_THROW(div(255, 0), std::domain_error);
}

TEST(Gf256, KnownProduct) {
  // With polynomial 0x11D: 2 * 128 = 0x11D & 0xFF ^ ... = 29.
  EXPECT_EQ(mul(2, 128), 29);
}

TEST(Gf256, GeneratorHasFullOrder) {
  // 2 generates the multiplicative group: powers must cycle through all
  // 255 nonzero elements.
  std::vector<bool> seen(256, false);
  std::uint8_t x = 1;
  for (int i = 0; i < 255; ++i) {
    EXPECT_FALSE(seen[x]) << "cycle shorter than 255 at " << i;
    seen[x] = true;
    x = mul(x, 2);
  }
  EXPECT_EQ(x, 1);  // full period
}

TEST(Gf256, PowMatchesRepeatedMul) {
  for (int a = 1; a < 256; a += 23) {
    const auto ua = static_cast<std::uint8_t>(a);
    std::uint8_t expect = 1;
    for (unsigned p = 0; p < 10; ++p) {
      EXPECT_EQ(pow(ua, p), expect) << "a=" << a << " p=" << p;
      expect = mul(expect, ua);
    }
  }
}

TEST(Gf256, PowEdgeCases) {
  EXPECT_EQ(pow(0, 0), 1);  // convention: x^0 = 1
  EXPECT_EQ(pow(0, 5), 0);
  EXPECT_EQ(pow(7, 255), 1);  // Lagrange: order divides 255
}

TEST(Gf256, MulAddRowCoeffOneIsXor) {
  std::vector<std::uint8_t> dst{1, 2, 3, 4, 5};
  const std::vector<std::uint8_t> src{5, 4, 3, 2, 1};
  mul_add_row(dst, src, 1);
  EXPECT_EQ(dst, (std::vector<std::uint8_t>{4, 6, 0, 6, 4}));
}

TEST(Gf256, MulAddRowCoeffZeroIsNoop) {
  std::vector<std::uint8_t> dst{1, 2, 3};
  mul_add_row(dst, std::vector<std::uint8_t>{9, 9, 9}, 0);
  EXPECT_EQ(dst, (std::vector<std::uint8_t>{1, 2, 3}));
}

TEST(Gf256, MulAddRowMatchesScalarOps) {
  std::vector<std::uint8_t> dst(37), src(37);
  for (std::size_t i = 0; i < dst.size(); ++i) {
    dst[i] = static_cast<std::uint8_t>(i * 7 + 3);
    src[i] = static_cast<std::uint8_t>(i * 13 + 1);
  }
  auto expect = dst;
  for (std::size_t i = 0; i < dst.size(); ++i)
    expect[i] = static_cast<std::uint8_t>(expect[i] ^ mul(0xAB, src[i]));
  mul_add_row(dst, src, 0xAB);
  EXPECT_EQ(dst, expect);
}

TEST(Gf256, MulAddRowSelfInverse) {
  // Applying the same mul_add twice cancels (characteristic 2).
  std::vector<std::uint8_t> dst{10, 20, 30, 40};
  const auto orig = dst;
  const std::vector<std::uint8_t> src{7, 7, 7, 7};
  mul_add_row(dst, src, 0x55);
  EXPECT_NE(dst, orig);
  mul_add_row(dst, src, 0x55);
  EXPECT_EQ(dst, orig);
}

TEST(Gf256, ScaleRowMatchesMul) {
  std::vector<std::uint8_t> row{0, 1, 2, 128, 255};
  auto expect = row;
  for (auto& x : expect) x = mul(x, 0x1D);
  scale_row(row, 0x1D);
  EXPECT_EQ(row, expect);
}

TEST(Gf256, LogExpTablesConsistent) {
  const auto log = log_table();
  const auto exp = exp_table();
  for (int a = 1; a < 256; ++a)
    EXPECT_EQ(exp[log[static_cast<std::size_t>(a)]], a);
}

}  // namespace
}  // namespace w4k::gf256

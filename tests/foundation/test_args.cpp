#include "common/args.h"

#include <gtest/gtest.h>

namespace w4k {
namespace {

Args make(std::initializer_list<const char*> argv) {
  std::vector<const char*> v{"prog"};
  v.insert(v.end(), argv.begin(), argv.end());
  return Args(static_cast<int>(v.size()), v.data());
}

TEST(Args, SpaceSeparatedValues) {
  const Args a = make({"--users", "6", "--distance", "3.5"});
  EXPECT_EQ(a.get("users", 0), 6);
  EXPECT_DOUBLE_EQ(a.get("distance", 0.0), 3.5);
}

TEST(Args, EqualsSeparatedValues) {
  const Args a = make({"--scheme=opt-multicast", "--seed=42"});
  EXPECT_EQ(a.get("scheme", std::string{}), "opt-multicast");
  EXPECT_EQ(a.get("seed", 0), 42);
}

TEST(Args, FlagsWithoutValues) {
  const Args a = make({"--no-adapt", "--users", "2"});
  EXPECT_TRUE(a.has("no-adapt"));
  EXPECT_FALSE(a.has("adapt"));
  EXPECT_EQ(a.get("users", 0), 2);
}

TEST(Args, FlagFollowedByOption) {
  // "--verbose --users 3": verbose must not swallow "--users".
  const Args a = make({"--verbose", "--users", "3"});
  EXPECT_TRUE(a.has("verbose"));
  EXPECT_EQ(a.get("users", 0), 3);
}

TEST(Args, DefaultsWhenAbsent) {
  const Args a = make({});
  EXPECT_EQ(a.get("users", 7), 7);
  EXPECT_DOUBLE_EQ(a.get("x", 1.5), 1.5);
  EXPECT_EQ(a.get("name", std::string("d")), "d");
  EXPECT_FALSE(a.get("flag", false));
  EXPECT_TRUE(a.get("flag", true));
}

TEST(Args, BooleanValues) {
  const Args a = make({"--a=true", "--b=0", "--c", "--d=off"});
  EXPECT_TRUE(a.get("a", false));
  EXPECT_FALSE(a.get("b", true));
  EXPECT_TRUE(a.get("c", false));  // bare flag = true
  EXPECT_FALSE(a.get("d", true));
}

TEST(Args, MalformedNumbersThrow) {
  const Args a = make({"--users=abc", "--dist=1.5x"});
  EXPECT_THROW(a.get("users", 0), std::invalid_argument);
  EXPECT_THROW(a.get("dist", 0.0), std::invalid_argument);
}

TEST(Args, MalformedBoolThrows) {
  const Args a = make({"--flag=maybe"});
  EXPECT_THROW(a.get("flag", false), std::invalid_argument);
}

TEST(Args, EqualsWithEmptyValueActsAsFlag) {
  // "--key=" stores an empty value: typed getters fall back to defaults
  // (no value to parse) and the boolean getter reads presence as true.
  const Args a = make({"--key="});
  EXPECT_TRUE(a.has("key"));
  EXPECT_FALSE(a.value("key").has_value());
  EXPECT_EQ(a.get("key", std::string("d")), "d");
  EXPECT_EQ(a.get("key", 9), 9);
  EXPECT_TRUE(a.get("key", false));
}

TEST(Args, ValueContainingEqualsSplitsAtFirst) {
  const Args a = make({"--filter=name=value"});
  EXPECT_EQ(a.get("filter", std::string{}), "name=value");
}

TEST(Args, PartiallyNumericValuesThrow) {
  // std::stoi/stod would accept the numeric prefix; the parser must not.
  const Args a = make({"--n=1e3", "--d=2.5.6", "--m=3,000"});
  EXPECT_THROW(a.get("n", 0), std::invalid_argument);
  EXPECT_THROW(a.get("d", 0.0), std::invalid_argument);
  EXPECT_THROW(a.get("m", 0), std::invalid_argument);
  EXPECT_DOUBLE_EQ(a.get("n", 0.0), 1000.0);  // fine as a double
}

TEST(Args, IntegerOverflowThrows) {
  const Args a = make({"--n=99999999999999999999"});
  EXPECT_THROW(a.get("n", 0), std::invalid_argument);
}

TEST(Args, EmptyAndWhitespaceValuesThrow) {
  const Args a = make({"--n", " ", "--d=\t"});
  EXPECT_THROW(a.get("n", 0), std::invalid_argument);
  EXPECT_THROW(a.get("d", 0.0), std::invalid_argument);
}

TEST(Args, NegativeNumberIsAValueNotAFlag) {
  // "-5" has no leading "--", so it is the value of the preceding option.
  const Args a = make({"--offset", "-5", "--gain=-2.5"});
  EXPECT_EQ(a.get("offset", 0), -5);
  EXPECT_DOUBLE_EQ(a.get("gain", 0.0), -2.5);
}

TEST(Args, OptionFollowedByOptionGetsNoValue) {
  // "--a --b 3": a must not swallow "--b" as its value.
  const Args a = make({"--a", "--b", "3"});
  EXPECT_TRUE(a.has("a"));
  EXPECT_FALSE(a.value("a").has_value());
  EXPECT_EQ(a.get("b", 0), 3);
}

TEST(Args, RepeatedOptionLastOneWins) {
  const Args a = make({"--n=1", "--n=2"});
  EXPECT_EQ(a.get("n", 0), 2);
}

TEST(Args, PositionalArguments) {
  const Args a = make({"input.y4m", "--users", "2", "output.y4m"});
  ASSERT_EQ(a.positional().size(), 2u);
  EXPECT_EQ(a.positional()[0], "input.y4m");
  EXPECT_EQ(a.positional()[1], "output.y4m");
}

TEST(Args, UnqueriedDetectsTypos) {
  const Args a = make({"--users", "2", "--uzers", "3"});
  (void)a.get("users", 0);
  const auto unknown = a.unqueried();
  ASSERT_EQ(unknown.size(), 1u);
  EXPECT_EQ(unknown[0], "uzers");
}

TEST(Args, UnqueriedEmptyWhenAllUsed) {
  const Args a = make({"--x", "1"});
  (void)a.get("x", 0);
  EXPECT_TRUE(a.unqueried().empty());
}

}  // namespace
}  // namespace w4k

#include "common/units.h"

#include <gtest/gtest.h>

#include <cmath>

namespace w4k {
namespace {

TEST(Dbm, MilliwattsRoundTrip) {
  const Dbm x{-48.0};
  EXPECT_NEAR(Dbm::from_milliwatts(x.milliwatts()).value, -48.0, 1e-12);
}

TEST(Dbm, ZeroDbmIsOneMilliwatt) {
  EXPECT_NEAR(Dbm{0.0}.milliwatts(), 1.0, 1e-12);
}

TEST(Dbm, TenDbIsFactorTen) {
  EXPECT_NEAR(Dbm{10.0}.milliwatts(), 10.0, 1e-9);
  EXPECT_NEAR(Dbm{-10.0}.milliwatts(), 0.1, 1e-12);
}

TEST(Dbm, GainAndLossArithmetic) {
  const Dbm x{-60.0};
  EXPECT_DOUBLE_EQ((x + 15.0).value, -45.0);
  EXPECT_DOUBLE_EQ((x - 8.0).value, -68.0);
}

TEST(Dbm, DifferenceIsRelativeDb) {
  EXPECT_DOUBLE_EQ(Dbm{-50.0} - Dbm{-60.0}, 10.0);
}

TEST(Dbm, Ordering) {
  EXPECT_LT(Dbm{-68.0}, Dbm{-53.0});
  EXPECT_GT(Dbm{-40.0}, Dbm{-41.0});
  EXPECT_EQ(Dbm{-55.0}, Dbm{-55.0});
}

TEST(Mbps, BytesInOneSecond) {
  // 8 Mbps = 1 MB/s.
  EXPECT_NEAR(Mbps{8.0}.bytes_in(1.0), 1e6, 1e-6);
}

TEST(Mbps, BytesInFrameBudget) {
  // 2400 Mbps over 1/30 s = 10 MB.
  EXPECT_NEAR(Mbps{2400.0}.bytes_in(kFrameBudget), 1e7, 1.0);
}

TEST(Mbps, SecondsForInvertsBytesIn) {
  const Mbps r{1580.0};
  const double bytes = 123456.0;
  EXPECT_NEAR(r.bytes_in(r.seconds_for(bytes)), bytes, 1e-6);
}

TEST(Mbps, ZeroRateNeverFinishes) {
  EXPECT_GT(Mbps{0.0}.seconds_for(1.0), 1e17);
}

TEST(Units, FrameBudgetMatchesFrameRate) {
  EXPECT_NEAR(kFrameBudget * kFrameRate, 1.0, 1e-12);
}

TEST(Units, WigigWavelengthIsAboutFiveMillimeters) {
  const double lambda = kSpeedOfLight / kWigigFreqHz;
  EXPECT_NEAR(lambda, 4.96e-3, 0.05e-3);
}

}  // namespace
}  // namespace w4k

#include "common/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace w4k {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next() == b.next()) ? 1 : 0;
  EXPECT_LT(same, 3);
}

TEST(Rng, ReseedRestartsSequence) {
  Rng a(7);
  const auto first = a.next();
  a.next();
  a.reseed(7);
  EXPECT_EQ(a.next(), first);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(12);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.5, 2.25);
    EXPECT_GE(u, -3.5);
    EXPECT_LT(u, 2.25);
  }
}

TEST(Rng, BelowIsBounded) {
  Rng rng(14);
  for (int i = 0; i < 5000; ++i) EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, BelowCoversAllValues) {
  Rng rng(15);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, BelowOneAlwaysZero) {
  Rng rng(16);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, RangeInclusive) {
  Rng rng(17);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= v == -2;
    saw_hi |= v == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, GaussianMoments) {
  Rng rng(18);
  const int n = 50000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double g = rng.gaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, GaussianScaled) {
  Rng rng(19);
  const int n = 50000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.gaussian(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(Rng, ChanceProbability) {
  Rng rng(20);
  const int n = 50000;
  int hits = 0;
  for (int i = 0; i < n; ++i) hits += rng.chance(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ChanceZeroNeverOneAlways) {
  Rng rng(21);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(22);
  Rng child = parent.fork();
  // Child stream should not replicate the parent's continued stream.
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (parent.next() == child.next()) ? 1 : 0;
  EXPECT_LT(same, 2);
}

TEST(Rng, SatisfiesUniformRandomBitGenerator) {
  static_assert(Rng::min() == 0);
  static_assert(Rng::max() == ~0ULL);
  Rng rng(23);
  EXPECT_NE(rng(), rng());
}

TEST(Rng, BitsLookUniform) {
  // Cheap equidistribution check: each of the 64 bit positions should be
  // set about half the time.
  Rng rng(24);
  const int n = 8192;
  std::vector<int> counts(64, 0);
  for (int i = 0; i < n; ++i) {
    const std::uint64_t x = rng.next();
    for (int b = 0; b < 64; ++b) counts[b] += (x >> b) & 1;
  }
  for (int b = 0; b < 64; ++b)
    EXPECT_NEAR(static_cast<double>(counts[b]) / n, 0.5, 0.05)
        << "bit " << b;
}

}  // namespace
}  // namespace w4k

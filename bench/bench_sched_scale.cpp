// Scheduler scaling bench (the PR 5 fast path): wall-clock latency of
// MulticastSession::decide() — group beamforming + Eq. 1 allocation +
// Eq. 4 unit mapping — swept over user counts, static vs mobility CSI,
// and fast path (beam cache + warm start) vs baseline (stateless
// re-enumeration + cold multi-start every frame).
//
// The paper's sender must make this decision inside the 33.3 ms frame
// budget. The fast path exploits two structural facts: (a) each subset's
// beam is a pure function of (scheme, member channels, codebook, seed), so
// only subsets containing a user whose CSI changed since the last beacon
// need re-beamforming; (b) consecutive frames' optimal allocations are
// near each other, so the previous frame's plan (remapped by member
// bitmask) warm-starts the optimizer past the cold multi-start.
//
// Past the hierarchical threshold (N=32/64 rows) the anytime scheduler
// takes over: cluster-tree candidate generation, rate-bound pruning, the
// SoA-packed batch beamformer, and (at N=64) the decide_deadline_ms
// cutoff that trades optional merge candidates for latency.
//
// Outputs BENCH_sched.json (per-config mean/p50/p99 decide latency and the
// N=12-mobility speedup headline). Rows whose baseline sweep is skipped
// carry an explicit "baseline": "skipped" marker so downstream tooling
// never mistakes absence for measurement. `--smoke` runs only the tier-1
// gate: p99 decide() latency at N=32 mobile (deadline on) must stay under
// 16.6 ms (half the frame budget); set W4K_SKIP_PERF_SMOKE=1 to skip
// (exit 77) on machines where wall-clock gates are meaningless (e.g.
// heavily shared CI).
#include "common.h"

#include "channel/mobility.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <fstream>
#include <vector>

namespace {

using namespace w4k;

struct Latency {
  double mean_ms = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double max_ms = 0.0;
  std::size_t calls = 0;
};

Latency summarize_ms(std::vector<double> ms) {
  Latency out;
  if (ms.empty()) return out;
  std::sort(ms.begin(), ms.end());
  out.calls = ms.size();
  for (double v : ms) out.mean_ms += v;
  out.mean_ms /= static_cast<double>(ms.size());
  const auto at = [&](double q) {
    return ms[static_cast<std::size_t>(q * static_cast<double>(ms.size() - 1))];
  };
  out.p50_ms = at(0.5);
  out.p99_ms = at(0.99);
  out.max_ms = ms.back();
  return out;
}

struct MeasureSpec {
  std::size_t n_users = 4;
  bool mobile = false;
  bool fast = true;   ///< beam cache + warm start on
  int n_frames = 30;  ///< measured decide() calls
  /// Cold-start frames excluded from the stats: the first beacon pays the
  /// one-off full enumeration that every later frame amortizes (a real
  /// session pays it once at association, not per frame).
  int warmup_frames = 3;
  /// Group-size cap forwarded to GroupEnumConfig.
  std::size_t max_group_size = sched::GroupEnumConfig{}.max_group_size;
  /// SessionConfig::decide_deadline_ms: 0 keeps the pure (no-clock) path;
  /// > 0 turns on the anytime cutoff. The N=64 sweep rows run with the
  /// deadline the paper's frame budget dictates.
  double deadline_ms = 0.0;
};

/// Decision CSI per frame: 3 video frames per 100 ms beacon, the sender
/// acting on the latest beacon snapshot (run_trace's cadence).
std::vector<std::vector<linalg::CVector>> decision_csi(
    const MeasureSpec& spec) {
  const int total = spec.warmup_frames + spec.n_frames;
  std::vector<std::vector<linalg::CVector>> per_frame;
  per_frame.reserve(static_cast<std::size_t>(total));
  if (spec.mobile) {
    channel::MovingReceiverConfig mc;
    mc.n_users = spec.n_users;
    mc.moving.assign(spec.n_users, false);
    mc.moving[0] = true;  // one walker, the rest static (fig. 16/17 setup)
    mc.duration = channel::kBeaconInterval * (total / 3 + 2);
    mc.seed = 77;
    const channel::CsiTrace trace = channel::moving_receiver_trace(mc);
    for (int f = 0; f < total; ++f) {
      const std::size_t snap = std::min(
          trace.steps() - 1, static_cast<std::size_t>(f) / 3);
      per_frame.push_back(trace.snapshots[snap]);
    }
  } else {
    Rng rng(5);
    channel::PropagationConfig prop;
    const auto chans = core::channels_for(
        prop, core::place_users_fixed(spec.n_users, 4.0, 1.0, rng));
    per_frame.assign(static_cast<std::size_t>(total), chans);
  }
  return per_frame;
}

Latency measure(const MeasureSpec& spec) {
  core::SessionConfig cfg =
      core::SessionConfig::scaled(bench::kWidth, bench::kHeight);
  cfg.seed = 4242;
  cfg.mcs_margin_db = 1.0;
  cfg.beam_cache = spec.fast;
  cfg.warm_start = spec.fast;
  cfg.group_enum.max_group_size = spec.max_group_size;
  cfg.decide_deadline_ms = spec.deadline_ms;
  core::MulticastSession session(cfg, bench::quality_model(),
                                 beamforming::Codebook{});
  const auto& contexts = bench::hr_contexts();
  const std::vector<std::uint8_t> exclude(spec.n_users, 0);
  const auto per_frame = decision_csi(spec);

  std::vector<double> ms;
  ms.reserve(static_cast<std::size_t>(spec.n_frames));
  for (std::size_t f = 0; f < per_frame.size(); ++f) {
    const auto& ctx = contexts[f % contexts.size()];
    const auto t0 = std::chrono::steady_clock::now();
    const auto d = session.decide(per_frame[f], ctx, exclude);
    const auto t1 = std::chrono::steady_clock::now();
    if (d.groups.empty()) {
      std::fprintf(stderr, "unexpected outage at frame %zu\n", f);
      std::exit(1);
    }
    if (f >= static_cast<std::size_t>(spec.warmup_frames))
      ms.push_back(
          std::chrono::duration<double, std::milli>(t1 - t0).count());
  }
  return summarize_ms(std::move(ms));
}

void print_latency(const char* label, const Latency& l) {
  std::printf("%-26s mean %8.3f ms  p50 %8.3f ms  p99 %8.3f ms  max %8.3f ms"
              "  (%zu calls)\n",
              label, l.mean_ms, l.p50_ms, l.p99_ms, l.max_ms, l.calls);
}

void emit_json(const Latency& l, std::ofstream& os) {
  os << "{\"mean_ms\":" << l.mean_ms << ",\"p50_ms\":" << l.p50_ms
     << ",\"p99_ms\":" << l.p99_ms << ",\"max_ms\":" << l.max_ms
     << ",\"calls\":" << l.calls << "}";
}

int run_smoke() {
  if (std::getenv("W4K_SKIP_PERF_SMOKE") != nullptr) {
    std::printf("perf_smoke: skipped (W4K_SKIP_PERF_SMOKE set)\n");
    return 77;
  }
  constexpr double kBudgetMs = 16.6;  // half the 33.3 ms frame budget
  MeasureSpec spec;
  spec.n_users = 32;
  spec.mobile = true;
  spec.fast = true;
  spec.n_frames = 30;
  // N=32 runs the anytime scheduler end to end: the cluster-tree generator
  // (the exhaustive lattice at N=32 would be 2^32 subsets), the rate-bound
  // pruner, the SoA batch path, and the deadline cutoff. The deadline is
  // the production knob that holds the frame budget on slow or heavily
  // shared boxes; the gate then checks the whole decision still lands
  // inside half the 33.3 ms frame budget.
  spec.deadline_ms = 14.0;
  const Latency l = measure(spec);
  print_latency("N=32 mobile fast (ddl=14)", l);
  const bool ok = l.p99_ms < kBudgetMs;
  std::printf("perf_smoke: decide() p99 %.3f ms %s %.1f ms budget: %s\n",
              l.p99_ms, ok ? "<" : ">=", kBudgetMs, ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  if (smoke) return run_smoke();

  // Telemetry off: this binary measures the decision path itself.
  bench::BenchMain bm("bench_sched_scale", /*telemetry=*/false);
  bench::print_header(
      "Scheduler scaling: decide() latency",
      "the sender's per-frame decision must fit the 33.3 ms frame budget");
  bm.set("pool_threads",
         static_cast<std::int64_t>(ThreadPool::shared().size()));

  const std::vector<std::size_t> fast_n = {4, 8, 12, 16, 32, 64};
  const std::vector<std::size_t> base_n = {4, 8, 12};  // baseline is slow
  /// decide_deadline_ms per sweep row: past the hierarchical threshold a
  /// mobile beacon frame re-beamforms most of the candidate set and the
  /// pure path blows the frame budget, so the N=32/64 rows run the anytime
  /// cutoff — 14 ms at N=32 (the smoke-gate config: p99 under half the
  /// budget) and 25 ms at N=64 (headroom under 33.3 ms for the
  /// transmit-side bookkeeping). Everything smaller runs the pure path.
  const auto deadline_for = [](std::size_t n) {
    return n >= 64 ? 25.0 : n >= 32 ? 14.0 : 0.0;
  };

  std::ofstream os("BENCH_sched.json");
  os.precision(5);
  os << "{\n  \"frame_budget_ms\": 33.333,\n  \"pool_threads\": "
     << ThreadPool::shared().size() << ",\n  \"sweep\": [\n";

  double n12_mobile_speedup = 0.0;
  double n12_mobile_fast_p99 = 0.0;
  double n32_mobile_fast_p99 = 0.0;
  double n64_mobile_fast_max = 0.0;
  bool first = true;
  for (const bool mobile : {false, true}) {
    std::printf("\n--- %s CSI (one walker) ---\n",
                mobile ? "mobility" : "static");
    for (const std::size_t n : fast_n) {
      MeasureSpec spec;
      spec.n_users = n;
      spec.mobile = mobile;
      spec.fast = true;
      spec.n_frames = 30;
      spec.deadline_ms = deadline_for(n);
      const Latency fast = measure(spec);
      char label[64];
      std::snprintf(label, sizeof label, "N=%-2zu fast%s", n,
                    spec.deadline_ms > 0.0 ? " (ddl)" : "");
      print_latency(label, fast);

      bool have_base = false;
      Latency base;
      if (std::find(base_n.begin(), base_n.end(), n) != base_n.end()) {
        spec.fast = false;
        spec.n_frames = 9;  // full re-enumeration per frame: keep it short
        base = measure(spec);
        have_base = true;
        std::snprintf(label, sizeof label, "N=%-2zu baseline", n);
        print_latency(label, base);
        std::printf("%-26s %.2fx mean speedup\n", "",
                    base.mean_ms / fast.mean_ms);
      }

      if (!first) os << ",\n";
      first = false;
      os << "    {\"n_users\":" << n << ",\"scenario\":\""
         << (mobile ? "mobile" : "static")
         << "\",\"deadline_ms\":" << spec.deadline_ms << ",\"fast\":";
      emit_json(fast, os);
      if (have_base) {
        os << ",\"baseline\":";
        emit_json(base, os);
        os << ",\"mean_speedup\":" << base.mean_ms / fast.mean_ms;
      } else {
        // Explicit marker: this baseline was skipped (too slow to sweep),
        // not measured as absent.
        os << ",\"baseline\":\"skipped\"";
      }
      os << "}";
      if (mobile && n == 12) {
        n12_mobile_fast_p99 = fast.p99_ms;
        if (have_base) n12_mobile_speedup = base.mean_ms / fast.mean_ms;
      }
      if (mobile && n == 32) n32_mobile_fast_p99 = fast.p99_ms;
      if (mobile && n == 64) n64_mobile_fast_max = fast.max_ms;
    }
  }
  os << "\n  ],\n  \"headline\": {\"n12_mobile_mean_speedup\": "
     << n12_mobile_speedup << ", \"n12_mobile_fast_p99_ms\": "
     << n12_mobile_fast_p99 << ", \"n32_mobile_fast_p99_ms\": "
     << n32_mobile_fast_p99 << ", \"n64_mobile_deadline_max_ms\": "
     << n64_mobile_fast_max << "}\n}\n";
  os.close();
  std::printf("\n# wrote BENCH_sched.json (N=12 mobile: %.2fx mean speedup; "
              "N=32 p99 %.3f ms; N=64 max %.3f ms)\n",
              n12_mobile_speedup, n32_mobile_fast_p99, n64_mobile_fast_max);
  bm.set("n12_mobile_mean_speedup", n12_mobile_speedup);
  bm.set("n12_mobile_fast_p99_ms", n12_mobile_fast_p99);
  bm.set("n32_mobile_fast_p99_ms", n32_mobile_fast_p99);
  bm.set("n64_mobile_deadline_max_ms", n64_mobile_fast_max);
  return 0;
}

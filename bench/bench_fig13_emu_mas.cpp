// Fig. 13: emulation — SSIM vs MAS for 6 users at 12 m, all four schemes.
// Paper: multicast best at small MAS (one lobe covers everyone) and
// degrades as MAS widens; unicast flat in MAS; multicast >= unicast
// throughout.
#include "common.h"

int main() {
  w4k::bench::BenchMain bm("bench_fig13_emu_mas");
  using namespace w4k;
  bench::print_header("Fig 13: emulation SSIM vs MAS (6 users, 12 m)",
                      "multicast falls with MAS; unicast flat");

  std::vector<double> multi_means, uni_means;
  for (double mas_deg : {30.0, 60.0, 90.0, 120.0}) {
    std::printf("\n--- MAS %.0f deg ---\n", mas_deg);
    for (const auto scheme : bench::all_schemes()) {
      bench::StaticRunSpec spec;
      spec.scheme = scheme;
      spec.n_users = 6;
      spec.distance = 12.0;
      spec.mas_rad = mas_deg * 0.0174533;
      spec.n_runs = 10;
      spec.frames_per_run = 6;
      spec.seed = 130 + static_cast<std::uint64_t>(mas_deg);
      const auto res = bench::run_static_experiment(spec);
      bench::print_row(to_string(scheme), res.ssim);
      if (scheme == beamforming::Scheme::kOptimizedMulticast)
        multi_means.push_back(res.ssim.mean);
      if (scheme == beamforming::Scheme::kOptimizedUnicast)
        uni_means.push_back(res.ssim.mean);
    }
  }
  bool shape_ok = true;
  for (std::size_t i = 0; i < multi_means.size(); ++i)
    shape_ok &= multi_means[i] >= uni_means[i] - 0.004;
  // Multicast loses more from the narrowest to the widest MAS than
  // unicast does.
  const double multi_drop = multi_means.front() - multi_means.back();
  const double uni_drop = uni_means.front() - uni_means.back();
  std::printf("\nSSIM drop narrow->wide MAS: multicast %.4f, unicast %.4f\n",
              multi_drop, uni_drop);
  shape_ok &= multi_drop > uni_drop - 0.002;
  std::printf("shape check: %s\n", shape_ok ? "PASS" : "FAIL");
  return shape_ok ? 0 : 1;
}

// Shared scaffolding for the google-benchmark binaries
// (bench_fig2_raptor_timing, bench_micro_pipeline). Kept separate from
// common.h so the table/figure harnesses don't pull in benchmark.h.
#pragma once

#include "common.h"

#include <benchmark/benchmark.h>

#include <cstdint>
#include <functional>
#include <vector>

namespace w4k::bench {

/// Deterministic affine byte fill for kernel input/output buffers. The
/// (mul, add) pairs are arbitrary but fixed so timings are comparable
/// across runs and binaries.
inline std::vector<std::uint8_t> affine_bytes(std::size_t n, unsigned mul,
                                              unsigned add) {
  std::vector<std::uint8_t> v(n);
  for (std::size_t i = 0; i < n; ++i)
    v[i] = static_cast<std::uint8_t>(i * mul + add);
  return v;
}

/// Deterministic pseudo-random fill (Knuth multiplicative hash) for coding
/// unit payloads: incompressible enough that the GF(256) work is real.
inline std::vector<std::uint8_t> hashed_bytes(std::size_t n) {
  std::vector<std::uint8_t> v(n);
  for (std::size_t i = 0; i < n; ++i)
    v[i] = static_cast<std::uint8_t>(i * 2654435761u >> 24);
  return v;
}

/// Custom main body shared by the google-benchmark binaries instead of
/// BENCHMARK_MAIN(): wraps the run in BenchMain with telemetry disabled
/// (these binaries time the raw hot paths and must run the disabled-path
/// code the figures assume), then hands argv to google-benchmark. An
/// optional epilogue runs after the benchmarks while the manifest is
/// still open (e.g. the scalar-vs-SIMD A/B that writes BENCH_kernels.json).
inline int run_gbench(const char* name, int argc, char** argv,
                      const std::function<void()>& epilogue = {}) {
  BenchMain bm(name, /*telemetry=*/false);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  if (epilogue) epilogue();
  benchmark::Shutdown();
  return 0;
}

}  // namespace w4k::bench

// Table 2: the QCA6320 MCS / sensitivity / UDP-throughput table, plus the
// RSS-to-rate mapping the whole resource optimizer is driven by.
#include "common.h"

#include "channel/mcs.h"
#include "channel/propagation.h"

int main() {
  w4k::bench::BenchMain bm("bench_table2_mcs");
  using namespace w4k;
  bench::print_header("Table 2: MCS, receiver sensitivity, UDP throughput",
                      "10 supported rows (MCS 0/5/9/9.1 unusable for data)");

  std::printf("%-6s %-18s %-18s\n", "MCS", "sensitivity (dBm)",
              "Iperf3-UDP (Mbps)");
  for (const auto& e : channel::mcs_table())
    std::printf("%-6d %-18.1f %-18.0f\n", e.mcs, e.sensitivity.value,
                e.udp_throughput.value);

  std::printf("\nRSS -> selected MCS over the emulated link "
              "(optimized unicast beam):\n");
  std::printf("%-12s %-12s %-8s %-12s\n", "distance(m)", "RSS(dBm)", "MCS",
              "rate(Mbps)");
  channel::PropagationConfig prop;
  bool monotone = true;
  double prev_rate = 1e18;
  for (double d : {2.0, 3.0, 4.0, 6.0, 8.0, 12.0, 16.0, 20.0, 28.0}) {
    const auto h =
        channel::make_channel(prop, channel::Position::from_polar(d, 0.1));
    const Dbm rss = Dbm::from_milliwatts(h.norm_sq());
    const auto mcs = channel::select_mcs(rss);
    std::printf("%-12.1f %-12.1f %-8s %-12.0f\n", d, rss.value,
                mcs ? std::to_string(mcs->mcs).c_str() : "-",
                mcs ? mcs->udp_throughput.value : 0.0);
    const double rate = mcs ? mcs->udp_throughput.value : 0.0;
    monotone &= rate <= prev_rate + 1e-9;
    prev_rate = rate;
  }
  std::printf("\nshape check (rate non-increasing with distance): %s\n",
              monotone ? "PASS" : "FAIL");
  return monotone ? 0 : 1;
}

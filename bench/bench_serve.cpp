// w4kd fan-out capacity: >= 10k emulated subscribers on one machine
// (DESIGN.md Sec. 4j).
//
// Runs the serving daemon fully in-process — sharded workers on
// SO_REUSEPORT loopback sockets, refcounted buffer pool, sendmmsg
// batches — against W4K_SERVE_SUBS virtual subscribers multiplexed over
// a handful of client sockets (the daemon keys subscriptions on 64-bit
// sub ids, so socket count, not subscriber count, is what the fd limit
// sees). The bench drives the publish cadence itself: publish a frame,
// wait for every worker to drain its backlog, drain the client sockets,
// repeat. Reports subscriber count reached, fan-out packet rate, and the
// delivered fraction, written to BENCH_serve.json for cross-commit
// comparison.
//
// Exit code gates the ISSUE acceptance shape: the daemon must carry
// >= 10k subscribers (unless scaled down via W4K_SERVE_SUBS) with a
// delivered fraction >= 0.90.
#include "common.h"

#include "serve/client.h"
#include "serve/daemon.h"

#include <poll.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <thread>
#include <vector>

namespace {

using namespace w4k;

int env_int(const char* name, int fallback) {
  const char* v = std::getenv(name);
  return v && *v ? std::atoi(v) : fallback;
}

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

int main() {
  bench::BenchMain bm("bench_serve", /*telemetry=*/true);
  bench::print_header(
      "w4kd serving capacity: 10k-subscriber loopback fan-out",
      "one shared symbol write per frame fans out to every subscriber "
      "via refcounted slots + sendmmsg");

  const int subs = env_int("W4K_SERVE_SUBS", 10000);
  const int sockets = env_int("W4K_SERVE_SOCKETS", 16);
  const int frames = env_int("W4K_SERVE_FRAMES", 30);
  const int workers = env_int("W4K_SERVE_WORKERS", 2);

  serve::DaemonConfig cfg;
  cfg.status = false;
  cfg.workers = static_cast<std::size_t>(workers);
  cfg.pool_slots = 128;
  cfg.source.symbol_bytes = 1200;
  cfg.source.layers = {{0, 0, 8, 2}};  // 2 coded symbols per frame
  cfg.worker.max_subscribers = static_cast<std::size_t>(subs) + 64;
  cfg.worker.heartbeat_timeout_s = 60.0;  // liveness is not under test
  serve::Daemon daemon(cfg);
  daemon.start();

  bm.set("subscribers", static_cast<std::int64_t>(subs));
  bm.set("sockets", static_cast<std::int64_t>(sockets));
  bm.set("frames", static_cast<std::int64_t>(frames));
  bm.set("workers", static_cast<std::int64_t>(workers));
  bm.set("symbol_bytes",
         static_cast<std::int64_t>(cfg.source.symbol_bytes));

  // Subscribe in rounds: ctrl datagrams can be dropped when thousands
  // arrive faster than the worker drains them, and subscribe is
  // idempotent, so blast-and-retry converges.
  std::vector<std::unique_ptr<serve::Client>> clients;
  std::uint64_t next_id = 1;
  for (int i = 0; i < sockets; ++i) {
    serve::Client::Options o;
    o.port = daemon.port();
    o.n_subs = static_cast<std::size_t>(subs / sockets +
                                        (i < subs % sockets ? 1 : 0));
    o.first_sub_id = next_id;
    next_id += o.n_subs;
    o.rcvbuf_bytes = 8 << 20;
    clients.push_back(std::make_unique<serve::Client>(o));
  }
  const double sub_t0 = now_s();
  int rounds = 0;
  while (daemon.subscribers() < static_cast<std::size_t>(subs) &&
         now_s() - sub_t0 < 30.0) {
    for (auto& c : clients) c->subscribe_all();
    ++rounds;
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  const std::size_t reached = daemon.subscribers();
  std::printf("subscribed %zu/%d subscribers over %d sockets "
              "(%d rounds, %.2f s)\n",
              reached, subs, sockets, rounds, now_s() - sub_t0);

  // Fan-out: publish, wait for the workers to finish the frame, drain the
  // client side so receive buffers never overflow between frames.
  const std::size_t sym = daemon.config().source.layers[0].symbols;
  auto drain_all = [&] {
    for (auto& c : clients) c->drain();
  };
  const double t0 = now_s();
  int published = 0;
  for (int f = 0; f < frames; ++f) {
    if (!daemon.publish_one()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      --f;  // ring entry still in flight: retry the same frame
      continue;
    }
    ++published;
    bool busy = true;
    while (busy) {
      busy = false;
      for (std::size_t w = 0; w < daemon.n_workers(); ++w)
        busy = busy || daemon.worker(w).backlog() > 0;
      if (busy) std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    drain_all();
  }
  const double elapsed = now_s() - t0;
  drain_all();
  daemon.stop();
  drain_all();

  std::uint64_t received = 0, parse_errors = 0;
  for (const auto& c : clients) {
    received += c->total_packets();
    parse_errors += c->parse_errors();
  }
  std::uint64_t sent = 0;
  for (std::size_t w = 0; w < daemon.n_workers(); ++w)
    sent += daemon.worker(w).packets_sent();
  const double expected = static_cast<double>(reached) *
                          static_cast<double>(sym) *
                          static_cast<double>(published);
  const double delivered =
      expected > 0.0 ? static_cast<double>(received) / expected : 0.0;
  const double pkts_per_s =
      elapsed > 0.0 ? static_cast<double>(sent) / elapsed : 0.0;
  const double fps =
      elapsed > 0.0 ? static_cast<double>(published) / elapsed : 0.0;

  std::printf("frames %d  elapsed %.2f s  (%.1f frames/s)\n", published,
              elapsed, fps);
  std::printf("sent %llu packets (%.2f Mpkt/s, %.1f MB/s)  received %llu  "
              "delivered %.4f  parse_errors %llu\n",
              static_cast<unsigned long long>(sent), pkts_per_s / 1e6,
              pkts_per_s * static_cast<double>(daemon.pool().slot_bytes()) /
                  1e6,
              static_cast<unsigned long long>(received), delivered,
              static_cast<unsigned long long>(parse_errors));

  std::ofstream os("BENCH_serve.json");
  os << "{\n"
     << "  \"subscribers_target\": " << subs << ",\n"
     << "  \"subscribers_reached\": " << reached << ",\n"
     << "  \"sockets\": " << sockets << ",\n"
     << "  \"workers\": " << workers << ",\n"
     << "  \"symbol_bytes\": " << cfg.source.symbol_bytes << ",\n"
     << "  \"symbols_per_frame\": " << sym << ",\n"
     << "  \"frames\": " << published << ",\n"
     << "  \"elapsed_s\": " << elapsed << ",\n"
     << "  \"frames_per_s\": " << fps << ",\n"
     << "  \"packets_sent\": " << sent << ",\n"
     << "  \"packets_received\": " << received << ",\n"
     << "  \"packets_per_s\": " << pkts_per_s << ",\n"
     << "  \"delivered_fraction\": " << delivered << ",\n"
     << "  \"parse_errors\": " << parse_errors << "\n"
     << "}\n";
  os.close();
  std::printf("written: BENCH_serve.json\n");

  const bool ok = reached >= static_cast<std::size_t>(subs) &&
                  delivered >= 0.90 && parse_errors == 0;
  std::printf("capacity gate: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}

// Fig. 14: emulation — source coding on/off for 4/6/8 users randomly
// placed in 8-16 m, MAS 120 deg (optimized multicast beamforming and
// scheduling in both arms).
// Paper: source coding improves SSIM by ~0.005-0.025 in this regime.
#include "common.h"

int main() {
  w4k::bench::BenchMain bm("bench_fig14_emu_source_coding");
  using namespace w4k;
  bench::print_header(
      "Fig 14: emulation source coding on/off (8-16 m, MAS 120)",
      "source coding wins at every user count");

  bool shape_ok = true;
  for (std::size_t users : {4u, 6u, 8u}) {
    std::printf("\n--- %zu users ---\n", users);
    double with = 0.0;
    for (const bool sc : {true, false}) {
      bench::StaticRunSpec spec;
      spec.n_users = users;
      spec.distance = 0.0;
      spec.min_distance = 8.0;
      spec.max_distance = 16.0;
      spec.mas_rad = 2.0944;
      spec.source_coding = sc;
      spec.n_runs = 10;
      spec.frames_per_run = 6;
      spec.seed = 140 + users;
      const auto res = bench::run_static_experiment(spec);
      bench::print_row(sc ? "with source coding" : "without source coding",
                       res.ssim);
      if (sc)
        with = res.ssim.mean;
      else {
        std::printf("gap: %.4f\n", with - res.ssim.mean);
        shape_ok &= with > res.ssim.mean;
      }
    }
  }
  std::printf("\nshape check (source coding wins at 4/6/8 users): %s\n",
              shape_ok ? "PASS" : "FAIL");
  return shape_ok ? 0 : 1;
}

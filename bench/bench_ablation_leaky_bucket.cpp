// Ablation: leaky-bucket depth (Sec. 2.7 sets it to ~10 packets — "a
// small value that still sustains high throughput"). Sweeps the depth to
// show tiny buckets throttle throughput while huge ones approach the
// no-rate-control queueing regime.
#include "common.h"

int main() {
  using namespace w4k;
  bench::print_header(
      "Ablation: leaky-bucket depth (3 users, 3 m, MAS 60)",
      "very small depth starves; ~10 packets is enough; larger adds "
      "nothing");

  std::printf("%-14s %-12s\n", "depth(pkts)", "mean SSIM");
  std::vector<std::pair<std::size_t, double>> results;
  for (std::size_t depth : {1u, 2u, 5u, 10u, 40u, 200u}) {
    bench::StaticRunSpec base;  // reuse seeds/placement defaults
    std::vector<double> ssim;
    Rng placement_rng(99);
    for (int run = 0; run < 8; ++run) {
      channel::PropagationConfig prop;
      const auto users = core::place_users_fixed(3, 3.0, 1.047, placement_rng);
      const auto channels = core::channels_for(prop, users);
      core::SessionConfig cfg =
          core::SessionConfig::scaled(bench::kWidth, bench::kHeight);
      cfg.engine.bucket_packets = depth;
      cfg.seed = 99 + static_cast<std::uint64_t>(run);
      core::MulticastSession session(cfg, bench::quality_model(),
                                     bench::sector_codebook());
      const auto r =
          core::run_static(session, channels, bench::hr_contexts(), 6);
      ssim.insert(ssim.end(), r.ssim.begin(), r.ssim.end());
    }
    const double m = mean(ssim);
    std::printf("%-14zu %-12.4f\n", depth, m);
    results.emplace_back(depth, m);
  }
  // Depth 10 should match depth 200 (no starvation), and depth 1 must not
  // beat depth 10.
  const double at1 = results[0].second;
  const double at10 = results[3].second;
  const double at200 = results[5].second;
  const bool shape_ok = at10 >= at200 - 0.005 && at1 <= at10 + 0.002;
  std::printf("\nshape check (10-packet bucket sustains throughput): %s\n",
              shape_ok ? "PASS" : "FAIL");
  return shape_ok ? 0 : 1;
}

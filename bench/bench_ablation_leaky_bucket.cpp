// Ablation: leaky-bucket depth (Sec. 2.7 sets it to ~10 packets — "a
// small value that still sustains high throughput"). Sweeps the depth to
// show tiny buckets throttle throughput while huge ones approach the
// no-rate-control queueing regime.
#include "common.h"

int main() {
  using namespace w4k;
  bench::BenchMain bm("bench_ablation_leaky_bucket");
  bench::print_header(
      "Ablation: leaky-bucket depth (3 users, 3 m, MAS 60)",
      "very small depth starves; ~10 packets is enough; larger adds "
      "nothing");

  std::printf("%-14s %-12s\n", "depth(pkts)", "mean SSIM");
  std::vector<std::pair<std::size_t, double>> results;
  core::Experiment exp(bench::quality_model(), bench::hr_contexts());
  exp.codebook(bench::sector_codebook());
  for (std::size_t depth : {1u, 2u, 5u, 10u, 40u, 200u}) {
    std::vector<double> ssim;
    Rng placement_rng(99);
    for (int run = 0; run < 8; ++run) {
      core::SessionConfig& cfg = exp.config();
      cfg.engine.bucket_packets = depth;
      cfg.seed = 99 + static_cast<std::uint64_t>(run);
      exp.place_fixed(3, 3.0, 1.047, placement_rng);
      const auto r = exp.run_static(6);
      const auto run_ssim = r.all_ssim();
      ssim.insert(ssim.end(), run_ssim.begin(), run_ssim.end());
    }
    const double m = mean(ssim);
    std::printf("%-14zu %-12.4f\n", depth, m);
    results.emplace_back(depth, m);
  }
  // Depth 10 should match depth 200 (no starvation), and depth 1 must not
  // beat depth 10.
  const double at1 = results[0].second;
  const double at10 = results[3].second;
  const double at200 = results[5].second;
  const bool shape_ok = at10 >= at200 - 0.005 && at1 <= at10 + 0.002;
  std::printf("\nshape check (10-packet bucket sustains throughput): %s\n",
              shape_ok ? "PASS" : "FAIL");
  return shape_ok ? 0 : 1;
}

// Ablation: dense GF(256) fountain (the paper's RaptorQ stand-in) vs the
// classic sparse LT code over the paper's coding-unit geometry. Shows why
// a RaptorQ-class code is the right choice for 20-symbol units: at small
// K the LT's soliton overhead is punishing, while the dense code decodes
// at K symbols with ~1/256 residual failure.
#include "common.h"

#include "fec/fountain.h"
#include "fec/lt.h"

#include <chrono>
#include <cstdio>
#include <vector>

namespace {

using namespace w4k;

std::vector<std::uint8_t> unit_data(std::size_t bytes) {
  std::vector<std::uint8_t> data(bytes);
  for (std::size_t i = 0; i < data.size(); ++i)
    data[i] = static_cast<std::uint8_t>(i * 131 + 7);
  return data;
}

struct CodeStats {
  double overhead = 0.0;       // symbols needed / K
  double encode_us_per_sym = 0.0;
  double decode_us_per_unit = 0.0;
};

CodeStats measure_dense(std::size_t k, std::size_t symbol, int trials) {
  const auto data = unit_data(k * symbol);
  double total_syms = 0.0;
  double enc_us = 0.0, dec_us = 0.0;
  for (int t = 0; t < trials; ++t) {
    const std::uint64_t seed = 77 + static_cast<std::uint64_t>(t);
    fec::FountainEncoder enc(data, symbol, seed);
    fec::FountainDecoder dec(k, symbol, data.size(), seed);
    fec::Esi esi = static_cast<fec::Esi>(k);  // repair-only (worst case)
    int sent = 0;
    const auto t0 = std::chrono::steady_clock::now();
    while (!dec.can_decode()) {
      dec.add_symbol(enc.encode(esi++));
      ++sent;
    }
    dec_us += std::chrono::duration<double, std::micro>(
                  std::chrono::steady_clock::now() - t0)
                  .count();
    total_syms += sent;
    const auto e0 = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < k; ++i)
      (void)enc.encode(esi + static_cast<fec::Esi>(i));
    enc_us += std::chrono::duration<double, std::micro>(
                  std::chrono::steady_clock::now() - e0)
                  .count();
  }
  return {total_syms / (trials * static_cast<double>(k)),
          enc_us / (trials * static_cast<double>(k)), dec_us / trials};
}

CodeStats measure_lt(std::size_t k, std::size_t symbol, int trials) {
  const auto data = unit_data(k * symbol);
  double total_syms = 0.0;
  double enc_us = 0.0, dec_us = 0.0;
  for (int t = 0; t < trials; ++t) {
    const std::uint64_t seed = 77 + static_cast<std::uint64_t>(t);
    fec::LtEncoder enc(data, symbol, seed);
    fec::LtDecoder dec(k, symbol, data.size(), seed);
    std::uint32_t esi = 0;
    const auto t0 = std::chrono::steady_clock::now();
    while (!dec.can_decode()) {
      dec.add_symbol(esi, enc.encode(esi));
      ++esi;
    }
    dec_us += std::chrono::duration<double, std::micro>(
                  std::chrono::steady_clock::now() - t0)
                  .count();
    total_syms += esi;
    const auto e0 = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < k; ++i)
      (void)enc.encode(esi + static_cast<std::uint32_t>(i));
    enc_us += std::chrono::duration<double, std::micro>(
                  std::chrono::steady_clock::now() - e0)
                  .count();
  }
  return {total_syms / (trials * static_cast<double>(k)),
          enc_us / (trials * static_cast<double>(k)), dec_us / trials};
}

}  // namespace

int main() {
  w4k::bench::BenchMain bm("bench_ablation_fountain_comparison");
  std::printf("==============================================================\n");
  std::printf("Ablation: dense GF(256) fountain vs sparse LT code\n");
  std::printf("unit geometry per the paper: symbol 6000 B; K swept\n");
  std::printf("==============================================================\n");
  std::printf("%-6s %-8s | %-10s %-12s | %-10s %-12s\n", "K", "code",
              "overhead", "enc us/sym", "", "dec us/unit");

  bool shape_ok = true;
  for (std::size_t k : {10u, 20u, 50u, 200u}) {
    const CodeStats dense = measure_dense(k, 6000, 5);
    const CodeStats lt = measure_lt(k, 6000, 5);
    std::printf("%-6zu %-8s | %-10.3f %-12.1f | %-10s %-12.0f\n", k, "dense",
                dense.overhead, dense.encode_us_per_sym, "",
                dense.decode_us_per_unit);
    std::printf("%-6s %-8s | %-10.3f %-12.1f | %-10s %-12.0f\n", "", "LT",
                lt.overhead, lt.encode_us_per_sym, "",
                lt.decode_us_per_unit);
    // Dense decodes at ~K (overhead < 1.07 incl. the 1/256 retries);
    // LT pays visibly more at the paper's small unit sizes.
    shape_ok &= dense.overhead < 1.07;
    shape_ok &= lt.overhead > dense.overhead;
  }
  std::printf("\nshape check (dense ~zero overhead, LT pays the soliton "
              "tax at small K): %s\n",
              shape_ok ? "PASS" : "FAIL");
  return shape_ok ? 0 : 1;
}

// Ablation: the makeup-time reserve (Sec. 2.6: "the feedbacks and all
// retransmissions should finish within 33 ms"). Sweeps the fraction of
// the frame budget withheld from the schedule for feedback + fountain
// makeup packets: zero margin leaves losses unrepaired, too much margin
// wastes schedulable airtime.
#include "common.h"

int main() {
  using namespace w4k;
  bench::BenchMain bm("bench_ablation_makeup_margin");
  bench::print_header(
      "Ablation: makeup-time reserve (3 users, 6 m, MAS 60)",
      "sweet spot near ~8%: enough to repair losses, little airtime waste");

  std::printf("%-12s %-12s %-12s\n", "margin", "mean SSIM", "min SSIM");
  std::vector<std::pair<double, Summary>> results;
  core::Experiment exp(bench::quality_model(), bench::hr_contexts());
  for (double margin : {0.0, 0.04, 0.08, 0.16, 0.30}) {
    std::vector<double> ssim;
    Rng prng(505);
    for (int run = 0; run < 8; ++run) {
      core::SessionConfig& cfg = exp.config();
      cfg.makeup_margin = margin;
      cfg.seed = 505 + static_cast<std::uint64_t>(run);
      exp.place_fixed(3, 6.0, 1.047, prng);
      const auto r = exp.run_static(6);
      const auto run_ssim = r.all_ssim();
      ssim.insert(ssim.end(), run_ssim.begin(), run_ssim.end());
    }
    const Summary s = summarize(ssim);
    std::printf("%-12.2f %-12.4f %-12.4f\n", margin, s.mean, s.min);
    results.emplace_back(margin, s);
  }
  bm.set("users", 3);
  bm.set("runs_per_margin", 8);

  // The default (8%) must beat both extremes on the worst frame, and a
  // huge margin must cost mean quality.
  const auto& zero = results[0].second;
  const auto& def = results[2].second;
  const auto& huge = results[4].second;
  const bool shape_ok = def.min >= zero.min && def.mean > huge.mean;
  std::printf("\nshape check (default margin dominates extremes): %s\n",
              shape_ok ? "PASS" : "FAIL");
  return shape_ok ? 0 : 1;
}

// Ablation: the makeup-time reserve (Sec. 2.6: "the feedbacks and all
// retransmissions should finish within 33 ms"). Sweeps the fraction of
// the frame budget withheld from the schedule for feedback + fountain
// makeup packets: zero margin leaves losses unrepaired, too much margin
// wastes schedulable airtime.
#include "common.h"

int main() {
  using namespace w4k;
  bench::print_header(
      "Ablation: makeup-time reserve (3 users, 6 m, MAS 60)",
      "sweet spot near ~8%: enough to repair losses, little airtime waste");

  std::printf("%-12s %-12s %-12s\n", "margin", "mean SSIM", "min SSIM");
  std::vector<std::pair<double, Summary>> results;
  for (double margin : {0.0, 0.04, 0.08, 0.16, 0.30}) {
    std::vector<double> ssim;
    Rng prng(505);
    for (int run = 0; run < 8; ++run) {
      channel::PropagationConfig prop;
      const auto users = core::place_users_fixed(3, 6.0, 1.047, prng);
      const auto channels = core::channels_for(prop, users);
      core::SessionConfig cfg =
          core::SessionConfig::scaled(bench::kWidth, bench::kHeight);
      cfg.makeup_margin = margin;
      cfg.seed = 505 + static_cast<std::uint64_t>(run);
      core::MulticastSession session(cfg, bench::quality_model(),
                                     beamforming::Codebook{});
      const auto r =
          core::run_static(session, channels, bench::hr_contexts(), 6);
      ssim.insert(ssim.end(), r.ssim.begin(), r.ssim.end());
    }
    const Summary s = summarize(ssim);
    std::printf("%-12.2f %-12.4f %-12.4f\n", margin, s.mean, s.min);
    results.emplace_back(margin, s);
  }

  // The default (8%) must beat both extremes on the worst frame, and a
  // huge margin must cost mean quality.
  const auto& zero = results[0].second;
  const auto& def = results[2].second;
  const auto& huge = results[4].second;
  const bool shape_ok = def.min >= zero.min && def.mean > huge.mean;
  std::printf("\nshape check (default margin dominates extremes): %s\n",
              shape_ok ? "PASS" : "FAIL");
  return shape_ok ? 0 : 1;
}

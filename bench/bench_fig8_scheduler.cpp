// Fig. 8: optimized scheduler vs round-robin (3 m, MAS 60).
// Paper: identical for 2 users (only one multicast group matters);
// optimized wins by 0.03 SSIM / 3.2 dB PSNR for 3 users.
#include "common.h"

int main() {
  w4k::bench::BenchMain bm("bench_fig8_scheduler");
  using namespace w4k;
  bench::print_header(
      "Fig 8: optimized schedule vs round-robin (3 m, MAS 60)",
      "2 users: tie; 3 users: optimized wins ~0.03 SSIM / ~3 dB");

  bool shape_ok = true;
  double gap2 = 0.0, gap3 = 0.0;
  for (std::size_t users : {2u, 3u}) {
    std::printf("\n--- %zu users ---\n", users);
    double opt_mean = 0.0;
    for (const bool optimized : {true, false}) {
      bench::StaticRunSpec spec;
      spec.n_users = users;
      spec.distance = 3.0;
      spec.mas_rad = 1.047;
      spec.optimized_schedule = optimized;
      spec.n_runs = 10;
      spec.seed = 80 + users;
      const auto res = bench::run_static_experiment(spec);
      bench::print_row(optimized ? "optimized schedule" : "round-robin",
                       res.ssim, &res.psnr);
      if (optimized)
        opt_mean = res.ssim.mean;
      else
        (users == 2 ? gap2 : gap3) = opt_mean - res.ssim.mean;
    }
  }
  std::printf("\nSSIM gap (optimized - round robin): 2 users %.4f, "
              "3 users %.4f\n",
              gap2, gap3);
  // 3-user gap must clearly exceed the 2-user gap, and optimized never
  // loses.
  shape_ok = gap3 > gap2 && gap3 > 0.005 && gap2 > -0.01;
  std::printf("shape check (gap grows from 2 to 3 users): %s\n",
              shape_ok ? "PASS" : "FAIL");
  return shape_ok ? 0 : 1;
}

// Ablation: the rateless decode-failure property the design relies on —
// receiving K+h symbols decodes with probability ~ 1 - 1/256^(h+1)
// (Sec. 2.6). Measured over many random reception patterns.
#include "common.h"

#include "fec/fountain.h"

#include <cmath>
#include <cstdio>
#include <numeric>
#include <vector>

int main() {
  w4k::bench::BenchMain bm("bench_ablation_symbol_overhead");
  using namespace w4k;
  std::printf("=============================================================\n");
  std::printf("Ablation: decode failure vs extra symbols h\n");
  std::printf("paper: P(fail) = 1/256^(h+1)\n");
  std::printf("=============================================================\n");

  constexpr std::size_t kK = 20;        // paper's symbols per coding unit
  constexpr std::size_t kSymbol = 64;   // small symbols keep trials fast
  std::vector<std::uint8_t> data(kK* kSymbol);
  for (std::size_t i = 0; i < data.size(); ++i)
    data[i] = static_cast<std::uint8_t>(i);

  Rng rng(2024);
  std::printf("%-4s %-10s %-12s %-12s\n", "h", "trials", "P(fail) meas",
              "P(fail) theory");
  bool shape_ok = true;
  for (std::size_t h = 0; h <= 2; ++h) {
    const int trials = h == 0 ? 60000 : 20000;
    int failures = 0;
    for (int t = 0; t < trials; ++t) {
      const std::uint64_t seed = rng.next();
      fec::FountainEncoder enc(data, kSymbol, seed);
      fec::FountainDecoder dec(kK, kSymbol, data.size(), seed);
      // Receive K+h distinct random symbols from a window of 4K ESIs.
      std::vector<fec::Esi> esis(4 * kK);
      std::iota(esis.begin(), esis.end(), 0u);
      for (std::size_t i = esis.size(); i > 1; --i)
        std::swap(esis[i - 1], esis[rng.below(i)]);
      for (std::size_t i = 0; i < kK + h; ++i)
        dec.add_symbol(enc.encode(esis[i]));
      failures += dec.can_decode() ? 0 : 1;
    }
    const double measured = static_cast<double>(failures) / trials;
    const double theory = std::pow(1.0 / 256.0, static_cast<double>(h + 1));
    std::printf("%-4zu %-10d %-12.3e %-12.3e\n", h, trials, measured, theory);
    // h=0 must sit near 1/256; larger h must be at least 10x rarer each.
    if (h == 0) shape_ok &= measured > theory * 0.3 && measured < theory * 3.0;
    if (h == 1) shape_ok &= measured < 1.0 / 256.0 / 10.0;
    if (h == 2) shape_ok &= failures == 0;
  }
  std::printf("\nshape check (failure ~ 1/256^(h+1)): %s\n",
              shape_ok ? "PASS" : "FAIL");
  return shape_ok ? 0 : 1;
}

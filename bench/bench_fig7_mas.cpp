// Fig. 7: testbed quality vs maximum angular spacing (2 users, 3 m).
// Paper: optimized multicast wins by 0.018-0.048 SSIM / 3-6 dB PSNR at
// every MAS; MAS barely moves unicast but degrades multicast (wider
// spreads force weaker multi-lobe beams).
#include "common.h"

int main() {
  w4k::bench::BenchMain bm("bench_fig7_mas");
  using namespace w4k;
  bench::print_header("Fig 7: SSIM/PSNR vs MAS (2 users, 3 m)",
                      "multicast sensitive to MAS, unicast flat; "
                      "opt-multicast best everywhere");

  bool shape_ok = true;
  std::vector<double> multi_means, uni_means;
  for (double mas_deg : {15.0, 30.0, 60.0, 90.0, 120.0}) {
    std::printf("\n--- MAS %.0f deg ---\n", mas_deg);
    for (const auto scheme : bench::all_schemes()) {
      bench::StaticRunSpec spec;
      spec.scheme = scheme;
      spec.n_users = 2;
      spec.distance = 3.0;
      spec.mas_rad = mas_deg * 0.0174533;
      spec.n_runs = 10;
      spec.seed = 70 + static_cast<std::uint64_t>(mas_deg);
      const auto res = bench::run_static_experiment(spec);
      bench::print_row(to_string(scheme), res.ssim, &res.psnr);
      if (scheme == beamforming::Scheme::kOptimizedMulticast)
        multi_means.push_back(res.ssim.mean);
      if (scheme == beamforming::Scheme::kOptimizedUnicast)
        uni_means.push_back(res.ssim.mean);
    }
  }
  // Multicast >= unicast at every MAS (shared transmission wins for 2
  // users at 3 m) and unicast roughly flat across MAS.
  for (std::size_t i = 0; i < multi_means.size(); ++i)
    shape_ok &= multi_means[i] >= uni_means[i] - 0.004;
  double uni_min = 1e9, uni_max = -1e9;
  for (double v : uni_means) {
    uni_min = std::min(uni_min, v);
    uni_max = std::max(uni_max, v);
  }
  shape_ok &= (uni_max - uni_min) < 0.02;
  std::printf("\nshape check (multicast >= unicast at all MAS; unicast "
              "flat): %s\n",
              shape_ok ? "PASS" : "FAIL");
  return shape_ok ? 0 : 1;
}

// Shared harness for the trace-driven mobile experiments (Figs. 16-17):
// builds the three trace types and runs the four approaches — Real-time
// Update, No Update, RobustMPC, FastMPC — over the same CSI trace, exactly
// like the paper's trace-driven methodology.
#pragma once

#include "common.h"

namespace w4k::bench {

enum class MobileScenario { kMovingHighRss, kMovingLowRss, kMovingEnvironment };

inline const char* to_string(MobileScenario s) {
  switch (s) {
    case MobileScenario::kMovingHighRss: return "(a) moving receiver, high RSS";
    case MobileScenario::kMovingLowRss: return "(b) moving receiver, low RSS";
    case MobileScenario::kMovingEnvironment: return "(c) moving environment";
  }
  return "?";
}

/// Builds the scenario's CSI trace for `n_users`. In multi-user moving
/// scenarios the paper moves two receivers and keeps the rest static.
inline channel::CsiTrace make_trace(MobileScenario scenario,
                                    std::size_t n_users, Seconds duration,
                                    std::uint64_t seed) {
  if (scenario == MobileScenario::kMovingEnvironment) {
    channel::MovingEnvironmentConfig cfg;
    Rng rng(seed);
    for (std::size_t u = 0; u < n_users; ++u)
      cfg.users.push_back(channel::Position::from_polar(
          rng.uniform(4.0, 7.0), rng.uniform(-0.8, 0.8)));
    cfg.duration = duration;
    cfg.seed = seed;
    return channel::moving_environment_trace(cfg);
  }
  channel::MovingReceiverConfig cfg;
  cfg.n_users = n_users;
  cfg.duration = duration;
  cfg.seed = seed;
  if (scenario == MobileScenario::kMovingHighRss) {
    cfg.min_distance = 2.5;
    cfg.max_distance = 7.5;
  } else {
    cfg.min_distance = 14.0;
    cfg.max_distance = 19.0;
  }
  if (n_users > 1) {
    // Paper: two receivers move, the others stay static.
    cfg.moving.assign(n_users, false);
    cfg.moving[0] = true;
    if (n_users > 1) cfg.moving[1] = true;
  }
  return channel::moving_receiver_trace(cfg);
}

struct MobileResult {
  double rt_update = 0.0;
  double no_update = 0.0;
  double robust_mpc = 0.0;
  double fast_mpc = 0.0;
};

/// Runs all four approaches over one scenario trace and returns mean SSIM.
inline MobileResult run_mobile(MobileScenario scenario, std::size_t n_users,
                               Seconds duration, std::uint64_t seed) {
  const channel::CsiTrace trace =
      make_trace(scenario, n_users, duration, seed);
  const auto& contexts = hr_contexts();

  const auto layered = [&](bool adapt) {
    core::Experiment exp(quality_model(), contexts);
    exp.codebook(sector_codebook());
    core::SessionConfig& cfg = exp.config();
    cfg.adapt = adapt;
    cfg.mcs_margin_db = 1.5;  // stale-CSI headroom under mobility
    cfg.seed = seed;
    return exp.run_trace(trace).ssim_summary().mean;
  };

  const auto mpc = [&](abr::Predictor p) {
    abr::AbrConfig cfg;
    cfg.rate_scale = core::rate_scale_for(kWidth, kHeight);
    cfg.seed = seed;
    const abr::AbrRunResult run =
        abr::run_abr_trace(cfg, p, trace, contexts, n_users);
    return mean(run.ssim);
  };

  MobileResult r;
  r.rt_update = layered(true);
  r.no_update = layered(false);
  r.robust_mpc = mpc(abr::Predictor::kRobustMpc);
  r.fast_mpc = mpc(abr::Predictor::kFastMpc);
  return r;
}

inline void print_mobile(const MobileResult& r) {
  std::printf("%-22s mean SSIM %.4f\n", "Real-time Update", r.rt_update);
  std::printf("%-22s mean SSIM %.4f  (gap %.4f)\n", "No Update", r.no_update,
              r.rt_update - r.no_update);
  std::printf("%-22s mean SSIM %.4f  (gap %.4f)\n", "RobustMPC", r.robust_mpc,
              r.rt_update - r.robust_mpc);
  std::printf("%-22s mean SSIM %.4f  (gap %.4f)\n", "FastMPC", r.fast_mpc,
              r.rt_update - r.fast_mpc);
}

}  // namespace w4k::bench

// Fig. 5: testbed video quality vs number of users (1-3) for the four
// beamforming schemes. 3 m, MAS 60 deg, HR video, 10 random runs.
// Paper: optimized-multicast best; its margin grows with users
// (SSIM +0.012/+0.016/+0.038 over the others at 2 users;
//  +0.021/+0.023/+0.045 at 3 users; PSNR gains 2.5-5.6 dB).
#include "common.h"

int main() {
  w4k::bench::BenchMain bm("bench_fig5_users_beamforming");
  using namespace w4k;
  bench::print_header(
      "Fig 5: SSIM/PSNR vs #users x beamforming scheme (3 m, MAS 60)",
      "opt-multicast > pre-multicast > opt-unicast > pre-unicast; gap "
      "grows with #users");

  bool shape_ok = true;
  for (std::size_t users : {1u, 2u, 3u}) {
    std::printf("\n--- %zu user%s ---\n", users, users > 1 ? "s" : "");
    double prev_mean = 1e9;
    double opt_multi_mean = 0.0, pre_uni_mean = 0.0;
    for (const auto scheme : bench::all_schemes()) {
      bench::StaticRunSpec spec;
      spec.scheme = scheme;
      spec.n_users = users;
      spec.distance = 3.0;
      spec.mas_rad = 1.047;  // 60 deg
      spec.n_runs = 10;
      spec.seed = 50 + users;
      const auto res = bench::run_static_experiment(spec);
      bench::print_row(to_string(scheme), res.ssim, &res.psnr);
      if (scheme == beamforming::Scheme::kOptimizedMulticast)
        opt_multi_mean = res.ssim.mean;
      if (scheme == beamforming::Scheme::kPredefinedUnicast)
        pre_uni_mean = res.ssim.mean;
      // With 1 user the multicast/unicast distinction vanishes. For 2+,
      // demand the ordering with slack at the pre-multicast vs
      // opt-unicast boundary: the paper itself has them 0.004 apart (a
      // near-tie that pointing variance can flip).
      if (users >= 2) shape_ok &= res.ssim.mean <= prev_mean + 0.022;
      prev_mean = res.ssim.mean;
    }
    if (users >= 2) shape_ok &= opt_multi_mean > pre_uni_mean + 0.005;
  }
  std::printf("\nshape check (scheme ordering, opt-multicast clearly beats "
              "pre-unicast): %s\n",
              shape_ok ? "PASS" : "FAIL");
  return shape_ok ? 0 : 1;
}

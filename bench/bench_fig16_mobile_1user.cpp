// Fig. 16: trace-driven mobile experiments, one receiver.
//   (a) moving receiver, high RSS: RT-Update beats NoUpdate/RMPC/FMPC by
//       0.008/0.018/0.016 SSIM;
//   (b) moving receiver, low RSS: gaps 0.008/0.021/0.068 — MPCs degrade
//       hardest as the channel worsens;
//   (c) moving environment: gaps 0.004/0.017/0.017.
#include "mobile_common.h"

int main() {
  w4k::bench::BenchMain bm("bench_fig16_mobile_1user");
  using namespace w4k;
  bench::print_header("Fig 16: mobile traces, 1 receiver",
                      "Real-time Update best in all three scenarios; MPC "
                      "gaps widen under low RSS");

  bool shape_ok = true;
  int rt_beats_rmpc = 0;
  for (const auto scenario :
       {bench::MobileScenario::kMovingHighRss,
        bench::MobileScenario::kMovingLowRss,
        bench::MobileScenario::kMovingEnvironment}) {
    std::printf("\n--- %s ---\n", bench::to_string(scenario));
    const auto r = bench::run_mobile(scenario, 1, /*duration=*/30.0,
                                     /*seed=*/1600);
    bench::print_mobile(r);
    // Core claims: adaptation beats No Update, and the layered system
    // beats FastMPC, in every scenario; RobustMPC may tie within noise in
    // the benign high-RSS case (the paper's own margin there is 0.018).
    shape_ok &= r.rt_update > r.no_update;
    shape_ok &= r.rt_update > r.fast_mpc;
    shape_ok &= r.rt_update > r.robust_mpc - 0.02;
    if (scenario == bench::MobileScenario::kMovingLowRss) {
      // The headline of Fig. 16(b): as the network worsens both MPCs
      // trail the layered system.
      shape_ok &= r.rt_update > r.robust_mpc && r.rt_update > r.fast_mpc;
    }
    rt_beats_rmpc += r.rt_update > r.robust_mpc ? 1 : 0;
  }
  shape_ok &= rt_beats_rmpc >= 2;
  std::printf("\nshape check (RT > NoUpdate/FastMPC everywhere, beats "
              "RobustMPC outside the benign case): %s\n",
              shape_ok ? "PASS" : "FAIL");
  return shape_ok ? 0 : 1;
}

// Fig. 15: emulation — optimized scheduling vs round-robin for 2-8 users
// randomly placed in 8-16 m, MAS 120 deg (optimized multicast beams in
// both arms).
// Paper: tie at 2 users; optimized wins by 0.029/0.030/0.052 SSIM at
// 4/6/8 users — scheduling matters more as users grow.
#include "common.h"

int main() {
  w4k::bench::BenchMain bm("bench_fig15_emu_scheduler");
  using namespace w4k;
  bench::print_header(
      "Fig 15: emulation optimized schedule vs round-robin (8-16 m, MAS 120)",
      "gap grows with #users (paper: 0 -> 0.052 SSIM from 2 to 8 users)");

  std::vector<double> gaps;
  for (std::size_t users : {2u, 4u, 6u, 8u}) {
    std::printf("\n--- %zu users ---\n", users);
    double opt = 0.0;
    for (const bool optimized : {true, false}) {
      bench::StaticRunSpec spec;
      spec.n_users = users;
      spec.distance = 0.0;
      spec.min_distance = 8.0;
      spec.max_distance = 16.0;
      spec.mas_rad = 2.0944;
      spec.optimized_schedule = optimized;
      spec.n_runs = 10;
      spec.frames_per_run = 6;
      spec.seed = 150 + users;
      const auto res = bench::run_static_experiment(spec);
      bench::print_row(optimized ? "optimized schedule" : "round-robin",
                       res.ssim);
      if (optimized)
        opt = res.ssim.mean;
      else {
        gaps.push_back(opt - res.ssim.mean);
        std::printf("gap: %.4f\n", gaps.back());
      }
    }
  }
  const bool shape_ok = gaps.back() > gaps.front() && gaps.back() > 0.01;
  std::printf("\nshape check (gap grows from 2 to 8 users): %s\n",
              shape_ok ? "PASS" : "FAIL");
  return shape_ok ? 0 : 1;
}

// Fig. 12: emulation — SSIM vs distance (4/8/12/16 m) for 2-8 users with
// optimized multicast beamforming, MAS 120 deg.
// Paper: quality fluctuates only slightly with distance; the spread
// across user counts grows with distance (0.01 at 4 m -> 0.03 at 16 m).
#include "common.h"

int main() {
  w4k::bench::BenchMain bm("bench_fig12_emu_distance");
  using namespace w4k;
  bench::print_header(
      "Fig 12: emulation SSIM vs distance x #users (opt-multicast, MAS 120)",
      "graceful decay; user-count spread grows with distance");

  std::vector<double> spread_by_distance;
  for (double distance : {4.0, 8.0, 12.0, 16.0}) {
    std::printf("\n--- %.0f m ---\n", distance);
    double lo = 1e9, hi = -1e9;
    for (std::size_t users : {2u, 4u, 6u, 8u}) {
      bench::StaticRunSpec spec;
      spec.n_users = users;
      spec.distance = distance;
      spec.mas_rad = 2.0944;
      spec.n_runs = 10;
      spec.frames_per_run = 6;
      spec.seed = 120 + users + static_cast<std::uint64_t>(distance);
      const auto res = bench::run_static_experiment(spec);
      char label[48];
      std::snprintf(label, sizeof(label), "%zu users", users);
      bench::print_row(label, res.ssim);
      lo = std::min(lo, res.ssim.mean);
      hi = std::max(hi, res.ssim.mean);
    }
    std::printf("spread across user counts: %.4f\n", hi - lo);
    spread_by_distance.push_back(hi - lo);
  }
  const bool shape_ok =
      spread_by_distance.back() > spread_by_distance.front() - 0.002;
  std::printf("\nshape check (spread does not shrink with distance): %s\n",
              shape_ok ? "PASS" : "FAIL");
  return shape_ok ? 0 : 1;
}

// Shared infrastructure for the experiment-reproduction harnesses.
//
// Every bench binary prints the rows/series of one of the paper's tables
// or figures. Absolute numbers come from the emulated substrate; the
// reproduction target is the *shape* (ordering, rough factors,
// crossovers), which EXPERIMENTS.md compares against the paper.
#pragma once

#include "abr/mpc.h"
#include "channel/array.h"
#include "common/stats.h"
#include "common/thread_pool.h"
#include "core/experiment.h"
#include "core/pretrained.h"
#include "core/runner.h"
#include "gf256/gf256.h"
#include "obs/manifest.h"
#include "obs/metrics.h"

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

namespace w4k::bench {

/// Per-binary run scaffolding: construct one at the top of main(). Turns
/// on telemetry aggregation (unless the binary is itself a perf
/// measurement that must run the disabled path) and, on destruction,
/// writes `<name>.manifest.json` next to the bench output — config echo,
/// CPU dispatch tier, pool size, and the per-stage span summary — so
/// BENCH_*.json trajectories stay comparable across commits. The manifest
/// directory defaults to the working directory; W4K_MANIFEST_DIR overrides.
class BenchMain {
 public:
  explicit BenchMain(const char* name, bool telemetry = true)
      : manifest_(name), telemetry_(telemetry) {
    if (telemetry_) obs::set_enabled(true);
  }

  /// Config echo into the manifest (key order preserved).
  template <typename T>
  void set(std::string_view key, T value) {
    manifest_.set(key, value);
  }

  ~BenchMain() {
    manifest_.set_env("gf256_tier", gf256::tier_name(gf256::active_tier()));
    manifest_.set_env("pool_threads",
                      static_cast<std::int64_t>(ThreadPool::shared().size()));
    const char* threads_env = std::getenv("W4K_THREADS");
    manifest_.set_env("W4K_THREADS", threads_env ? threads_env : "");
    const char* scalar_env = std::getenv("W4K_FORCE_SCALAR");
    manifest_.set_env("W4K_FORCE_SCALAR", scalar_env ? scalar_env : "");
    manifest_.set_env("telemetry", telemetry_ ? "on" : "off");

    const char* dir = std::getenv("W4K_MANIFEST_DIR");
    const std::string path = std::string(dir && *dir ? dir : ".") + "/" +
                             manifest_.name() + ".manifest.json";
    if (manifest_.write_file(path))
      std::printf("# manifest: %s\n", path.c_str());
  }

  BenchMain(const BenchMain&) = delete;
  BenchMain& operator=(const BenchMain&) = delete;

 private:
  obs::Manifest manifest_;
  bool telemetry_;
};

/// Emulation resolution for the sweeps: 256x144 (1/240 of 4K), with the
/// link rates, symbol size and queue depth scaled by the same factor so
/// the operating regime matches the paper's full-4K testbed.
inline constexpr int kWidth = 256;
inline constexpr int kHeight = 144;

/// Returns the shared trained quality model (cached on disk after the
/// first training run in this directory).
inline model::QualityModel& quality_model() {
  static model::QualityModel model = [] {
    model::QualityModel m(42);
    core::PretrainedOptions opts;
    opts.cache_path = "w4k_bench_quality_model.cache";
    const double mse = core::ensure_trained(m, opts);
    if (mse > 0.0)
      std::printf("# trained quality model, held-out MSE %.2e\n", mse);
    return m;
  }();
  return model;
}

/// Frame contexts of one HR and one LR standard clip (the paper evaluates
/// on 2 HR + 2 LR; one of each keeps the sweeps tractable and preserves
/// the content diversity that matters).
inline const std::vector<core::FrameContext>& hr_contexts() {
  static const auto ctxs = [] {
    video::VideoSpec spec = video::standard_videos(kWidth, kHeight, 8)[0];
    return core::make_contexts(video::SyntheticVideo(spec), 6,
                               core::scaled_symbol_size(kWidth, kHeight));
  }();
  return ctxs;
}

inline const std::vector<core::FrameContext>& lr_contexts() {
  static const auto ctxs = [] {
    video::VideoSpec spec = video::standard_videos(kWidth, kHeight, 8)[3];
    return core::make_contexts(video::SyntheticVideo(spec), 6,
                               core::scaled_symbol_size(kWidth, kHeight));
  }();
  return ctxs;
}

/// The four beamforming schemes in the paper's comparison order.
inline const std::vector<beamforming::Scheme>& all_schemes() {
  static const std::vector<beamforming::Scheme> s{
      beamforming::Scheme::kOptimizedMulticast,
      beamforming::Scheme::kPredefinedMulticast,
      beamforming::Scheme::kOptimizedUnicast,
      beamforming::Scheme::kPredefinedUnicast,
  };
  return s;
}

/// Codebook shared by the pre-defined schemes: a commodity-style
/// hierarchical design — 20 fine 32-element sectors for unicast, wide
/// (8-element) and quasi-omni (4-element) levels, plus 91 dual-lobe
/// entries (14-direction grid) so a single pre-defined beam can serve two
/// angularly spread multicast receivers. 123 entries, within the 128-beam
/// hardware limit.
inline const beamforming::Codebook& sector_codebook() {
  static const auto cb = [] {
    auto book = beamforming::make_multilevel_codebook(
        channel::kDefaultApAntennas, {{32, 20}, {8, 8}, {4, 4}});
    beamforming::append_dual_lobe_beams(book, channel::kDefaultApAntennas,
                                        14, 2, /*max_abs_azimuth=*/1.06);
    return book;
  }();
  return cb;
}

/// One static experiment: place users, build channels, stream, summarize.
struct StaticRunSpec {
  beamforming::Scheme scheme = beamforming::Scheme::kOptimizedMulticast;
  std::size_t n_users = 2;
  double distance = 3.0;       ///< fixed-distance placement when > 0
  double min_distance = 0.0;   ///< random annulus placement when distance == 0
  double max_distance = 0.0;
  double mas_rad = 1.047;      ///< 60 degrees
  int n_runs = 10;
  int frames_per_run = 8;
  bool optimized_schedule = true;
  bool rate_control = true;
  bool source_coding = true;
  bool high_richness = true;
  std::uint64_t seed = 1;
};

struct StaticRunSummary {
  Summary ssim;
  Summary psnr;
};

/// Runs the spec: `n_runs` independent placements, aggregated like the
/// paper's box plots.
inline StaticRunSummary run_static_experiment(const StaticRunSpec& spec) {
  std::vector<double> all_ssim, all_psnr;
  Rng placement_rng(spec.seed);
  const auto& contexts =
      spec.high_richness ? hr_contexts() : lr_contexts();

  core::Experiment exp(quality_model(), contexts);
  exp.codebook(sector_codebook());
  for (int run = 0; run < spec.n_runs; ++run) {
    core::SessionConfig& cfg = exp.config();
    cfg.scheme = spec.scheme;
    cfg.optimized_schedule = spec.optimized_schedule;
    cfg.engine.rate_control = spec.rate_control;
    cfg.engine.source_coding = spec.source_coding;
    cfg.seed = spec.seed * 1000 + static_cast<std::uint64_t>(run);
    if (spec.distance > 0.0)
      exp.place_fixed(spec.n_users, spec.distance, spec.mas_rad,
                      placement_rng);
    else
      exp.place_random(spec.n_users, spec.min_distance, spec.max_distance,
                       spec.mas_rad, placement_rng);

    const core::SessionReport r = exp.run_static(spec.frames_per_run);
    const auto ssim = r.all_ssim();
    const auto psnr = r.all_psnr();
    all_ssim.insert(all_ssim.end(), ssim.begin(), ssim.end());
    all_psnr.insert(all_psnr.end(), psnr.begin(), psnr.end());
  }
  return StaticRunSummary{summarize(all_ssim), summarize(all_psnr)};
}

inline void print_header(const char* title, const char* paper_note) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title);
  std::printf("paper: %s\n", paper_note);
  std::printf("==============================================================\n");
}

inline void print_row(const std::string& label, const Summary& ssim,
                      const Summary* psnr = nullptr) {
  std::printf("%-28s SSIM %s\n", label.c_str(), to_string(ssim).c_str());
  if (psnr != nullptr)
    std::printf("%-28s PSNR %s\n", "", to_string(*psnr).c_str());
}

}  // namespace w4k::bench

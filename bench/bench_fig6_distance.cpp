// Fig. 6: testbed quality vs AP-STA distance (2 users, MAS 30 deg).
// Paper: SSIM at 3 m = 0.976/0.965/0.963/0.939 across the four schemes,
// at 6 m = 0.966/0.955/0.951/0.924 — graceful degradation with distance,
// optimized multicast best by 0.011-0.042 SSIM / 1.8-5.6 dB PSNR.
#include "common.h"

int main() {
  w4k::bench::BenchMain bm("bench_fig6_distance");
  using namespace w4k;
  bench::print_header("Fig 6: SSIM/PSNR vs distance (2 users, MAS 30)",
                      "graceful degradation; opt-multicast stays best");

  bool shape_ok = true;
  std::vector<double> opt_multi_by_distance;
  for (double distance : {3.0, 6.0, 9.0, 12.0}) {
    std::printf("\n--- %.0f m ---\n", distance);
    double best = -1.0;
    for (const auto scheme : bench::all_schemes()) {
      bench::StaticRunSpec spec;
      spec.scheme = scheme;
      spec.n_users = 2;
      spec.distance = distance;
      spec.mas_rad = 0.5236;  // 30 deg
      spec.n_runs = 10;
      spec.seed = 60 + static_cast<std::uint64_t>(distance);
      const auto res = bench::run_static_experiment(spec);
      bench::print_row(to_string(scheme), res.ssim, &res.psnr);
      if (scheme == beamforming::Scheme::kOptimizedMulticast) {
        opt_multi_by_distance.push_back(res.ssim.mean);
        best = res.ssim.mean;
      } else {
        // Best at every distance within run-to-run noise (at mid
        // distances the pair beam and a unicast pair of slots can land
        // within one MCS step of each other).
        shape_ok &= res.ssim.mean <= best + 0.008;
      }
    }
  }
  // Graceful degradation overall; small per-step fluctuation is physical
  // (the paper: quality "slightly fluctuates" — multipath nulls move with
  // distance).
  shape_ok &= opt_multi_by_distance.back() <
              opt_multi_by_distance.front() - 0.01;
  for (std::size_t i = 1; i < opt_multi_by_distance.size(); ++i)
    shape_ok &= opt_multi_by_distance[i] <=
                opt_multi_by_distance[i - 1] + 0.015;
  std::printf("\nshape check (opt-multicast best at every distance, "
              "graceful decay): %s\n",
              shape_ok ? "PASS" : "FAIL");
  return shape_ok ? 0 : 1;
}

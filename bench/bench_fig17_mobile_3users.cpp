// Fig. 17: trace-driven mobile experiments, three receivers (two moving,
// one static).
// Paper gaps (RT-Update over NoUpdate / RobustMPC / FastMPC):
//   (a) high RSS: 0.034 / 0.059 / 0.064
//   (b) low RSS:  0.026 / 0.087 / 0.248
//   (c) environment: 0.006 / 0.055 / 0.056
// The MPC gaps are much larger than single-user because unicast ABR
// time-shares the link three ways while multicast serves everyone at once.
#include "mobile_common.h"

int main() {
  w4k::bench::BenchMain bm("bench_fig17_mobile_3users");
  using namespace w4k;
  bench::print_header("Fig 17: mobile traces, 3 receivers (2 moving)",
                      "multicast + adaptation dominate; MPC gaps larger "
                      "than the 1-user case");

  bool shape_ok = true;
  double sum_mpc_gap_3u = 0.0;
  for (const auto scenario :
       {bench::MobileScenario::kMovingHighRss,
        bench::MobileScenario::kMovingLowRss,
        bench::MobileScenario::kMovingEnvironment}) {
    std::printf("\n--- %s ---\n", bench::to_string(scenario));
    const auto r = bench::run_mobile(scenario, 3, /*duration=*/30.0,
                                     /*seed=*/1700);
    bench::print_mobile(r);
    shape_ok &= r.rt_update >= r.no_update - 0.003;
    shape_ok &= r.rt_update > r.robust_mpc;
    shape_ok &= r.rt_update > r.fast_mpc;
    sum_mpc_gap_3u += r.rt_update - std::min(r.robust_mpc, r.fast_mpc);
  }

  // Cross-check Fig. 16 vs 17 against the *stronger* MPC baseline
  // (RobustMPC): time-sharing three unicast sessions should widen the gap
  // to the multicast system relative to the single-user case.
  const auto one = bench::run_mobile(bench::MobileScenario::kMovingHighRss, 1,
                                     30.0, 1600);
  const auto three = bench::run_mobile(bench::MobileScenario::kMovingHighRss,
                                       3, 30.0, 1700);
  const double gap1 = one.rt_update - one.robust_mpc;
  const double gap3 = three.rt_update - three.robust_mpc;
  std::printf("\nhigh-RSS RobustMPC gap: 1 user %.4f, 3 users %.4f\n", gap1,
              gap3);
  shape_ok &= gap3 > gap1;
  std::printf("shape check (RT best; 3-user RobustMPC gap > 1-user): %s\n",
              shape_ok ? "PASS" : "FAIL");
  return shape_ok ? 0 : 1;
}

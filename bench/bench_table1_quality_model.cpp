// Table 1: video quality model comparison — SVM vs Linear Regression vs
// the paper's DNN, held-out MSE.
// Paper values: SVM 0.0524, LinReg 0.0231, DNN 2.43e-5.
// Reproduction target: DNN << LinReg < SVM, DNN better by >= 1 order.
#include "common.h"
#include "model/baselines.h"
#include "model/dataset.h"

#include <chrono>

int main() {
  w4k::bench::BenchMain bm("bench_table1_quality_model");
  using namespace w4k;
  bench::print_header(
      "Table 1: quality model MSE by method",
      "SVM 0.0524 | LinReg 0.0231 | DNN 2.43e-5 (ordering + gap matter)");

  // Full-strength dataset: all six standard clips at 512x288.
  model::DatasetConfig cfg;
  cfg.frames_per_video = 4;
  cfg.fractions_per_frame = 60;
  const model::Dataset ds =
      model::build_dataset(video::standard_videos(512, 288, 5), cfg);
  std::printf("dataset: %zu train / %zu test examples\n\n", ds.train.size(),
              ds.test.size());

  model::LinearSvr svr;
  svr.fit(ds.train);
  const double svr_mse = svr.evaluate(ds.test);

  model::LinearRegression linreg;
  linreg.fit(ds.train);
  const double lr_mse = linreg.evaluate(ds.test);

  model::QualityModel dnn(42);
  model::TrainConfig tc;
  tc.epochs = 1500;
  const auto t0 = std::chrono::steady_clock::now();
  dnn.train(ds.train, tc);
  const auto train_ms = std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
  const double dnn_mse = dnn.evaluate(ds.test);

  std::printf("%-22s %-12s %s\n", "method", "test MSE", "paper MSE");
  std::printf("%-22s %-12.4e %.4f\n", "SVM (linear eps-SVR)", svr_mse, 0.0524);
  std::printf("%-22s %-12.4e %.4f\n", "Linear Regression", lr_mse, 0.0231);
  std::printf("%-22s %-12.4e %.1e\n", "DNN (5x9 sigmoid + 1)", dnn_mse,
              2.43e-5);
  std::printf("\nDNN training time: %.0f ms (%d epochs, batch %zu)\n",
              train_ms, tc.epochs, tc.batch_size);

  // Inference latency (paper: ~500 us on WiGig laptops).
  model::Features f;
  f.fraction = {1.0, 1.0, 0.5, 0.2};
  f.up_to_layer = {0.8, 0.9, 0.95, 1.0};
  f.blank = 0.7;
  const auto i0 = std::chrono::steady_clock::now();
  double sink = 0.0;
  for (int i = 0; i < 10000; ++i) sink += dnn.predict(f);
  const double us = std::chrono::duration<double, std::micro>(
                        std::chrono::steady_clock::now() - i0)
                        .count() /
                    10000.0;
  std::printf("DNN inference: %.2f us/prediction (paper: ~500 us on "
              "2016-era laptop)\n",
              us + sink * 0.0);

  const bool shape_ok = dnn_mse < lr_mse / 10.0 && lr_mse < svr_mse;
  std::printf("\nshape check (DNN << LinReg < SVM): %s\n",
              shape_ok ? "PASS" : "FAIL");
  return shape_ok ? 0 : 1;
}

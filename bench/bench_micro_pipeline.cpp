// Microbenchmarks of the per-frame pipeline stages (google-benchmark):
// layered encode, reconstruction, SSIM, quality-model inference, and the
// Eq. 1 optimizer — the budget items behind the paper's claim that the
// optimization stage "takes a few milliseconds".
#include "common.h"

#include <benchmark/benchmark.h>

namespace {

using namespace w4k;

const video::Frame& frame_512() {
  static const video::Frame f = [] {
    video::VideoSpec spec;
    spec.width = 512;
    spec.height = 288;
    spec.frames = 1;
    spec.richness = video::Richness::kHigh;
    return video::SyntheticVideo(spec).frame(0);
  }();
  return f;
}

void BM_LayeredEncode(benchmark::State& state) {
  for (auto _ : state) benchmark::DoNotOptimize(video::encode(frame_512()));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(frame_512().total_bytes()));
}
BENCHMARK(BM_LayeredEncode)->Unit(benchmark::kMillisecond);

void BM_Reconstruct(benchmark::State& state) {
  const auto enc = video::encode(frame_512());
  const auto partial = video::PartialFrame::full(enc);
  for (auto _ : state) benchmark::DoNotOptimize(video::reconstruct(partial));
}
BENCHMARK(BM_Reconstruct)->Unit(benchmark::kMillisecond);

void BM_Ssim(benchmark::State& state) {
  const video::Frame& a = frame_512();
  const video::Frame b = video::reconstruct(
      video::PartialFrame::up_to_layer(video::encode(a), 2));
  for (auto _ : state) benchmark::DoNotOptimize(quality::ssim(a, b));
}
BENCHMARK(BM_Ssim)->Unit(benchmark::kMillisecond);

void BM_QualityModelPredict(benchmark::State& state) {
  auto& model = bench::quality_model();
  model::Features f;
  f.fraction = {1.0, 1.0, 0.6, 0.2};
  f.up_to_layer = {0.8, 0.9, 0.95, 1.0};
  f.blank = 0.7;
  for (auto _ : state) benchmark::DoNotOptimize(model.predict(f));
}
BENCHMARK(BM_QualityModelPredict)->Unit(benchmark::kMicrosecond);

void BM_ScheduleOptimizer(benchmark::State& state) {
  // N users at 8-16 m: enumerate groups once, then time Eq. 1.
  const auto n_users = static_cast<std::size_t>(state.range(0));
  Rng rng(7);
  channel::PropagationConfig prop;
  const auto users = core::place_users_random(n_users, 8.0, 16.0, 2.09, rng);
  const auto channels = core::channels_for(prop, users);
  auto groups = sched::enumerate_groups(
      beamforming::Scheme::kOptimizedMulticast, channels,
      beamforming::Codebook{}, rng, {});
  const double scale = core::rate_scale_for(bench::kWidth, bench::kHeight);
  for (auto& g : groups) g.beam.rate = Mbps{g.beam.rate.value * scale};

  sched::AllocProblem p;
  p.groups = groups;
  p.n_users = n_users;
  p.content = bench::hr_contexts()[0].content;
  auto& model = bench::quality_model();
  for (auto _ : state)
    benchmark::DoNotOptimize(sched::optimize_allocation(p, model));
  state.counters["groups"] = static_cast<double>(groups.size());
}
BENCHMARK(BM_ScheduleOptimizer)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_MulticastBeamSvd(benchmark::State& state) {
  const auto n_users = static_cast<std::size_t>(state.range(0));
  Rng rng(8);
  channel::PropagationConfig prop;
  const auto users = core::place_users_random(n_users, 8.0, 16.0, 2.09, rng);
  const auto channels = core::channels_for(prop, users);
  for (auto _ : state)
    benchmark::DoNotOptimize(beamforming::group_beam(
        beamforming::Scheme::kOptimizedMulticast, channels,
        beamforming::Codebook{}, rng));
}
BENCHMARK(BM_MulticastBeamSvd)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();

// Microbenchmarks of the per-frame pipeline stages (google-benchmark):
// layered encode, reconstruction, SSIM, quality-model inference, and the
// Eq. 1 optimizer — the budget items behind the paper's claim that the
// optimization stage "takes a few milliseconds". The SSIM and GF(256)
// cases report bytes/second (per-kernel MB/s) and label the active SIMD
// tier; BENCH_kernels.json (the machine-readable A/B) is emitted by
// bench_fig2_raptor_timing.
#include "gbench_common.h"

#include "common/thread_pool.h"
#include "gf256/gf256.h"
#include "sched/workspace.h"

namespace {

using namespace w4k;

const video::Frame& frame_512() {
  static const video::Frame f = [] {
    video::VideoSpec spec;
    spec.width = 512;
    spec.height = 288;
    spec.frames = 1;
    spec.richness = video::Richness::kHigh;
    return video::SyntheticVideo(spec).frame(0);
  }();
  return f;
}

void BM_LayeredEncode(benchmark::State& state) {
  for (auto _ : state) benchmark::DoNotOptimize(video::encode(frame_512()));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(frame_512().total_bytes()));
}
BENCHMARK(BM_LayeredEncode)->Unit(benchmark::kMillisecond);

void BM_Reconstruct(benchmark::State& state) {
  const auto enc = video::encode(frame_512());
  const auto partial = video::PartialFrame::full(enc);
  for (auto _ : state) benchmark::DoNotOptimize(video::reconstruct(partial));
}
BENCHMARK(BM_Reconstruct)->Unit(benchmark::kMillisecond);

void BM_Ssim(benchmark::State& state) {
  const video::Frame& a = frame_512();
  const video::Frame b = video::reconstruct(
      video::PartialFrame::up_to_layer(video::encode(a), 2));
  for (auto _ : state) benchmark::DoNotOptimize(quality::ssim(a, b));
  state.counters["pool"] = static_cast<double>(ThreadPool::shared().size());
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(a.y.pix.size()));
}
BENCHMARK(BM_Ssim)->Unit(benchmark::kMillisecond);

// SSIM at the paper's native 4K: the per-frame budget item that forced
// the banded-parallel tiling. Reports plane MB/s on the shared pool.
void BM_Ssim4K(benchmark::State& state) {
  static const video::Frame a = [] {
    video::VideoSpec spec;
    spec.width = 3840;
    spec.height = 2160;
    spec.frames = 1;
    spec.richness = video::Richness::kHigh;
    return video::SyntheticVideo(spec).frame(0);
  }();
  static const video::Frame b = video::reconstruct(
      video::PartialFrame::up_to_layer(video::encode(a), 2));
  for (auto _ : state) benchmark::DoNotOptimize(quality::ssim(a, b));
  state.counters["pool"] = static_cast<double>(ThreadPool::shared().size());
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(a.y.pix.size()));
}
BENCHMARK(BM_Ssim4K)->Unit(benchmark::kMillisecond);

// Raw GF(256) row kernel at the paper's 6000 B symbol size; the label
// names the dispatch tier actually in use.
void BM_GfMulAddRow6000(benchmark::State& state) {
  auto dst = bench::affine_bytes(6000, 7, 3);
  const auto src = bench::affine_bytes(6000, 13, 1);
  for (auto _ : state) {
    gf256::mul_add_row(dst, src, 0xA7);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetLabel(gf256::tier_name(gf256::active_tier()));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(dst.size()));
}
BENCHMARK(BM_GfMulAddRow6000)->Unit(benchmark::kNanosecond);

// One coding unit's worth of repair symbols, batch-encoded on the pool.
void BM_FountainEncodeBatch(benchmark::State& state) {
  const auto data = bench::hashed_bytes(120'000);
  const fec::FountainEncoder enc(data, 6000, 42);
  const auto k = static_cast<fec::Esi>(enc.k());
  for (auto _ : state)
    benchmark::DoNotOptimize(enc.encode_batch(k, enc.k()));
  state.counters["pool"] = static_cast<double>(ThreadPool::shared().size());
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(data.size()));
}
BENCHMARK(BM_FountainEncodeBatch)->Unit(benchmark::kMicrosecond);

void BM_QualityModelPredict(benchmark::State& state) {
  auto& model = bench::quality_model();
  model::Features f;
  f.fraction = {1.0, 1.0, 0.6, 0.2};
  f.up_to_layer = {0.8, 0.9, 0.95, 1.0};
  f.blank = 0.7;
  for (auto _ : state) benchmark::DoNotOptimize(model.predict(f));
}
BENCHMARK(BM_QualityModelPredict)->Unit(benchmark::kMicrosecond);

void BM_ScheduleOptimizer(benchmark::State& state) {
  // N users at 8-16 m: enumerate groups once, then time Eq. 1.
  const auto n_users = static_cast<std::size_t>(state.range(0));
  Rng rng(7);
  channel::PropagationConfig prop;
  const auto users = core::place_users_random(n_users, 8.0, 16.0, 2.09, rng);
  const auto channels = core::channels_for(prop, users);
  sched::SchedWorkspace gws;
  const auto emitted = sched::enumerate_groups(
      beamforming::Scheme::kOptimizedMulticast, channels,
      beamforming::Codebook{}, rng.next(), {}, nullptr, gws);
  // Owning copy: AllocProblem::groups is a span and the workspace-backed
  // span would be invalidated by any further enumeration.
  std::vector<sched::GroupSpec> groups(emitted.begin(), emitted.end());
  const double scale = core::rate_scale_for(bench::kWidth, bench::kHeight);
  for (auto& g : groups) g.beam.rate = Mbps{g.beam.rate.value * scale};

  sched::AllocProblem p;
  p.groups = groups;
  p.n_users = n_users;
  p.content = bench::hr_contexts()[0].content;
  auto& model = bench::quality_model();
  for (auto _ : state)
    benchmark::DoNotOptimize(sched::optimize_allocation(p, model));
  state.counters["groups"] = static_cast<double>(groups.size());
}
BENCHMARK(BM_ScheduleOptimizer)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_MulticastBeamSvd(benchmark::State& state) {
  const auto n_users = static_cast<std::size_t>(state.range(0));
  Rng rng(8);
  channel::PropagationConfig prop;
  const auto users = core::place_users_random(n_users, 8.0, 16.0, 2.09, rng);
  const auto channels = core::channels_for(prop, users);
  for (auto _ : state)
    benchmark::DoNotOptimize(beamforming::group_beam(
        beamforming::Scheme::kOptimizedMulticast, channels,
        beamforming::Codebook{}, rng));
}
BENCHMARK(BM_MulticastBeamSvd)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  return w4k::bench::run_gbench("bench_micro_pipeline", argc, argv);
}

// Ablation: how much does quality-model fidelity matter end to end?
// The Eq. 1 optimizer steers by the DNN's predictions; an under-trained
// model mis-ranks allocations and the delivered SSIM drops. This connects
// Table 1 (model MSE) to the system-level outcome.
#include "common.h"

#include "model/dataset.h"

int main() {
  using namespace w4k;
  bench::BenchMain bm("bench_ablation_model_fidelity");
  bench::print_header(
      "Ablation: quality-model fidelity vs delivered quality "
      "(3 users, 8-16 m)",
      "system quality tracks model quality; a crude model wastes airtime");

  // One dataset, three training budgets.
  model::DatasetConfig dcfg;
  dcfg.frames_per_video = 3;
  dcfg.fractions_per_frame = 40;
  const model::Dataset ds =
      model::build_dataset(video::standard_videos(512, 288, 4), dcfg);

  std::printf("%-18s %-14s %-12s\n", "training epochs", "test MSE",
              "mean SSIM");
  std::vector<std::pair<double, double>> mse_to_ssim;
  for (int epochs : {10, 150, 1500}) {
    model::QualityModel model(42);
    model::TrainConfig tc;
    tc.epochs = epochs;
    model.train(ds.train, tc);
    const double mse = model.evaluate(ds.test);

    std::vector<double> ssim;
    Rng prng(606);
    core::Experiment exp(model, bench::hr_contexts());
    for (int run = 0; run < 8; ++run) {
      exp.config().seed = 606 + static_cast<std::uint64_t>(run);
      exp.place_random(3, 8.0, 16.0, 2.09, prng);
      const auto r = exp.run_static(5);
      const auto run_ssim = r.all_ssim();
      ssim.insert(ssim.end(), run_ssim.begin(), run_ssim.end());
    }
    const double m = mean(ssim);
    std::printf("%-18d %-14.3e %-12.4f\n", epochs, mse, m);
    mse_to_ssim.emplace_back(mse, m);
  }

  // Well-trained model must beat the 10-epoch one end to end.
  const bool shape_ok = mse_to_ssim.back().second >
                        mse_to_ssim.front().second;
  std::printf("\nshape check (trained model beats untrained end-to-end): "
              "%s\n",
              shape_ok ? "PASS" : "FAIL");
  return shape_ok ? 0 : 1;
}

// Fig. 10: with vs without rateless source coding (3 users, 3 m, MAS 60,
// optimized multicast beamforming + scheduling).
// Paper: source coding wins by 0.32 SSIM / 9.5 dB PSNR — without it,
// retransmission to multiple receivers is inefficient and overlapping
// multicast groups deliver redundant bytes.
#include "common.h"

int main() {
  w4k::bench::BenchMain bm("bench_fig10_source_coding");
  using namespace w4k;
  bench::print_header(
      "Fig 10: with vs without source coding (3 users, 3 m)",
      "large gap (paper: 0.32 SSIM / 9.5 dB) and higher variance without");

  bench::StaticRunSummary with_sc, without_sc;
  for (const bool sc : {true, false}) {
    bench::StaticRunSpec spec;
    spec.n_users = 3;
    spec.distance = 3.0;
    spec.mas_rad = 1.047;
    spec.source_coding = sc;
    spec.n_runs = 10;
    spec.seed = 100;
    const auto res = bench::run_static_experiment(spec);
    bench::print_row(sc ? "with source coding" : "without source coding",
                     res.ssim, &res.psnr);
    (sc ? with_sc : without_sc) = res;
  }

  const double gap = with_sc.ssim.mean - without_sc.ssim.mean;
  const double psnr_gap = with_sc.psnr.mean - without_sc.psnr.mean;
  std::printf("\nSSIM gap %.4f, PSNR gap %.2f dB\n", gap, psnr_gap);
  const bool shape_ok = gap > 0.01 && psnr_gap > 1.0;
  std::printf("shape check (clear source-coding win): %s\n",
              shape_ok ? "PASS" : "FAIL");
  return shape_ok ? 0 : 1;
}

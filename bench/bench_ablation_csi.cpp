// Ablation: perfect CSI vs ACO-estimated CSI (Fig. 3 starts with "fetch
// CSI using ACO"). The real system never sees ground-truth channels — it
// reconstructs them from per-beam RSS by phase retrieval. This bench
// quantifies what that costs end to end, including under noisy firmware
// RSS readouts.
#include "common.h"

int main() {
  using namespace w4k;
  bench::BenchMain bm("bench_ablation_csi");
  bench::print_header(
      "Ablation: perfect vs ACO-estimated CSI (2 users, 3 m, MAS 60)",
      "estimation should cost ~nothing at realistic RSS noise");

  // A sweep-friendly codebook: 96 sectors >= 2x the 32 antennas.
  beamforming::CodebookConfig cb_cfg;
  cb_cfg.n_beams = 96;
  const auto codebook = beamforming::make_sector_codebook(cb_cfg);

  std::printf("%-28s %-12s\n", "CSI source", "mean SSIM");
  double perfect_mean = 0.0;
  bool shape_ok = true;
  struct Arm {
    const char* label;
    bool estimated;
    double noise_db;
  };
  for (const Arm arm : {Arm{"perfect (oracle)", false, 0.0},
                        Arm{"ACO estimate, 0.5 dB noise", true, 0.5},
                        Arm{"ACO estimate, 2.0 dB noise", true, 2.0}}) {
    std::vector<double> ssim;
    Rng prng(404);
    core::Experiment exp(bench::quality_model(), bench::hr_contexts());
    exp.codebook(codebook);
    for (int run = 0; run < 6; ++run) {
      core::SessionConfig& cfg = exp.config();
      cfg.use_estimated_csi = arm.estimated;
      cfg.sls_noise_db = arm.noise_db;
      cfg.seed = 404 + static_cast<std::uint64_t>(run);
      exp.place_fixed(2, 3.0, 1.047, prng);
      const auto r = exp.run_static(5);
      const auto run_ssim = r.all_ssim();
      ssim.insert(ssim.end(), run_ssim.begin(), run_ssim.end());
    }
    const double m = mean(ssim);
    std::printf("%-28s %-12.4f\n", arm.label, m);
    if (!arm.estimated) perfect_mean = m;
    else if (arm.noise_db <= 1.0)
      shape_ok &= m > perfect_mean - 0.01;  // near-free at realistic noise
    else
      shape_ok &= m > perfect_mean - 0.05;  // degrades gracefully
  }
  std::printf("\nshape check (ACO estimation nearly free): %s\n",
              shape_ok ? "PASS" : "FAIL");
  return shape_ok ? 0 : 1;
}

// Fig. 9: leaky-bucket rate control on vs off (3 users, 3 m, MAS 60,
// optimized multicast beamforming).
// Paper: without rate control the kernel queue overflows, costing ~0.01
// SSIM / 1.3 dB PSNR on average and inflating variance across frames.
#include "common.h"

int main() {
  w4k::bench::BenchMain bm("bench_fig9_rate_control");
  using namespace w4k;
  bench::print_header(
      "Fig 9: with vs without leaky-bucket rate control (3 users, 3 m)",
      "without: ~0.01 SSIM lower, larger variance from queue drops");

  bench::StaticRunSummary with_rc, without_rc;
  for (const bool rc : {true, false}) {
    bench::StaticRunSpec spec;
    spec.n_users = 3;
    spec.distance = 3.0;
    spec.mas_rad = 1.047;
    spec.rate_control = rc;
    spec.n_runs = 10;
    spec.frames_per_run = 12;  // backlog effects need a few frames
    spec.seed = 90;
    const auto res = bench::run_static_experiment(spec);
    bench::print_row(rc ? "with rate control" : "without rate control",
                     res.ssim, &res.psnr);
    (rc ? with_rc : without_rc) = res;
  }

  const double mean_gap = with_rc.ssim.mean - without_rc.ssim.mean;
  const double spread_with = with_rc.ssim.q3 - with_rc.ssim.q1;
  const double spread_without = without_rc.ssim.q3 - without_rc.ssim.q1;
  std::printf("\nSSIM gap %.4f; IQR with=%.4f without=%.4f\n", mean_gap,
              spread_with, spread_without);
  // Variance comparison uses quartiles: the worst single frame (min) is
  // dominated by placement luck common to both arms.
  const bool shape_ok = mean_gap > 0.003 &&
                        without_rc.ssim.q1 < with_rc.ssim.q1 &&
                        spread_without > spread_with - 1e-6;
  std::printf("shape check (rate control higher mean, fewer deep drops): "
              "%s\n",
              shape_ok ? "PASS" : "FAIL");
  return shape_ok ? 0 : 1;
}

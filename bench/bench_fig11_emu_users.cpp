// Fig. 11: emulation — SSIM vs number of users (2-8) for the four
// beamforming schemes; users random in 8-16 m, MAS 120 deg.
// Paper: opt-multicast's margin over {pre-multicast, opt-unicast,
// pre-unicast} grows from {0.010, 0.013, 0.025} at 2 users to
// {0.035, 0.060, 0.083} at 8 users.
#include "common.h"

int main() {
  w4k::bench::BenchMain bm("bench_fig11_emu_users");
  using namespace w4k;
  bench::print_header(
      "Fig 11: emulation SSIM vs #users x scheme (8-16 m, MAS 120)",
      "multicast margin grows with #users");

  bool shape_ok = true;
  double margin_2 = 0.0, margin_8 = 0.0;
  for (std::size_t users : {2u, 4u, 6u, 8u}) {
    std::printf("\n--- %zu users ---\n", users);
    double opt_multi = 0.0, worst = 1e9;
    for (const auto scheme : bench::all_schemes()) {
      bench::StaticRunSpec spec;
      spec.scheme = scheme;
      spec.n_users = users;
      spec.distance = 0.0;  // random annulus placement
      spec.min_distance = 8.0;
      spec.max_distance = 16.0;
      spec.mas_rad = 2.0944;  // 120 deg
      spec.n_runs = 12;
      spec.frames_per_run = 6;
      spec.seed = 110 + users;
      const auto res = bench::run_static_experiment(spec);
      bench::print_row(to_string(scheme), res.ssim);
      if (scheme == beamforming::Scheme::kOptimizedMulticast)
        opt_multi = res.ssim.mean;
      worst = std::min(worst, res.ssim.mean);
      shape_ok &= res.ssim.mean <= opt_multi + 0.004;
    }
    if (users == 2) margin_2 = opt_multi - worst;
    if (users == 8) margin_8 = opt_multi - worst;
  }
  std::printf("\nopt-multicast margin over worst scheme: 2 users %.4f, "
              "8 users %.4f\n",
              margin_2, margin_8);
  shape_ok &= margin_8 > margin_2;
  std::printf("shape check (margin grows with #users, opt-multicast always "
              "best): %s\n",
              shape_ok ? "PASS" : "FAIL");
  return shape_ok ? 0 : 1;
}

// Fig. 2: rateless encode/decode time vs symbol size for one coding unit
// of fixed total bytes (the paper's 120 kB sublayer).
//
// Reproduction note: the paper's RaptorQ shows a U-shape with a minimum
// near 6000 B. Our simplified dense GF(256) fountain reproduces the left
// branch faithfully (small symbols mean many symbols, and coefficient
// handling dominates: 500 B costs ~12x more than 6000 B) but not the
// right branch — RaptorQ's cost growth at large symbols comes from its
// intermediate-block structure, which this code does not have, so beyond
// 6000 B our times keep improving mildly (~2x from 6000 to 16000 B).
// Operationally the paper's 6000 B remains a sound choice here: the
// returns past it are flat relative to the factor-12 left branch.
//
// Implemented with google-benchmark so the timings are statistically
// sound.
#include "fec/fountain.h"

#include <benchmark/benchmark.h>

#include <cstdio>

#include <vector>

namespace {

constexpr std::size_t kUnitBytes = 120'000;  // paper: 20 x 6000 B

std::vector<std::uint8_t> unit_data() {
  std::vector<std::uint8_t> data(kUnitBytes);
  for (std::size_t i = 0; i < data.size(); ++i)
    data[i] = static_cast<std::uint8_t>(i * 2654435761u >> 24);
  return data;
}

void BM_Encode(benchmark::State& state) {
  const std::size_t symbol = static_cast<std::size_t>(state.range(0));
  const auto data = unit_data();
  const w4k::fec::FountainEncoder enc(data, symbol, 42);
  const std::size_t k = enc.k();
  // Encode one full unit's worth of repair symbols per iteration (what the
  // sender does when a receiver missed everything).
  w4k::fec::Esi esi = static_cast<w4k::fec::Esi>(k);
  for (auto _ : state) {
    for (std::size_t i = 0; i < k; ++i)
      benchmark::DoNotOptimize(enc.encode(esi + static_cast<w4k::fec::Esi>(i)));
    esi += static_cast<w4k::fec::Esi>(k);
  }
  state.counters["k"] = static_cast<double>(k);
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kUnitBytes));
}

void BM_Decode(benchmark::State& state) {
  const std::size_t symbol = static_cast<std::size_t>(state.range(0));
  const auto data = unit_data();
  const w4k::fec::FountainEncoder enc(data, symbol, 42);
  const std::size_t k = enc.k();
  // Pre-encode k repair symbols (worst case: no systematic reception).
  std::vector<w4k::fec::Symbol> symbols;
  for (std::size_t i = 0; i < k + 2; ++i)
    symbols.push_back(enc.encode(static_cast<w4k::fec::Esi>(k + i)));
  for (auto _ : state) {
    w4k::fec::FountainDecoder dec(k, symbol, data.size(), 42);
    for (const auto& s : symbols) {
      dec.add_symbol(s);
      if (dec.can_decode()) break;
    }
    benchmark::DoNotOptimize(dec.decode());
  }
  state.counters["k"] = static_cast<double>(k);
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kUnitBytes));
}

}  // namespace

BENCHMARK(BM_Encode)->Arg(500)->Arg(1000)->Arg(2000)->Arg(4000)->Arg(6000)
    ->Arg(8000)->Arg(12000)->Arg(16000)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Decode)->Arg(500)->Arg(1000)->Arg(2000)->Arg(4000)->Arg(6000)
    ->Arg(8000)->Arg(12000)->Arg(16000)->Unit(benchmark::kMicrosecond);

int main(int argc, char** argv) {
  std::printf(
      "Fig 2: encode/decode time vs symbol size (120 kB unit).\n"
      "paper: U-shape, minimum near 6000 B. here: the expensive-small-"
      "symbol branch\nreproduces; see the file comment for why the right "
      "branch is absent.\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

// Fig. 2: rateless encode/decode time vs symbol size for one coding unit
// of fixed total bytes (the paper's 120 kB sublayer).
//
// Reproduction note: the paper's RaptorQ shows a U-shape with a minimum
// near 6000 B. Our simplified dense GF(256) fountain reproduces the left
// branch faithfully (small symbols mean many symbols, and coefficient
// handling dominates: 500 B costs ~12x more than 6000 B) but not the
// right branch — RaptorQ's cost growth at large symbols comes from its
// intermediate-block structure, which this code does not have, so beyond
// 6000 B our times keep improving mildly (~2x from 6000 to 16000 B).
// Operationally the paper's 6000 B remains a sound choice here: the
// returns past it are flat relative to the factor-12 left branch.
//
// Implemented with google-benchmark so the timings are statistically
// sound. In addition to the Fig. 2 sweep, this binary benchmarks the raw
// GF(256) row kernels (MB/s per dispatch tier) and ends with a scalar-vs-
// SIMD A/B of kernels, encode and decode, written to BENCH_kernels.json
// so the perf trajectory is machine-trackable across PRs.
#include "gbench_common.h"

#include "fec/fountain.h"
#include "gf256/gf256.h"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <vector>

namespace {

constexpr std::size_t kUnitBytes = 120'000;  // paper: 20 x 6000 B
constexpr std::size_t kSymbolBytes = 6'000;  // the paper's operating point

std::vector<std::uint8_t> unit_data() {
  return w4k::bench::hashed_bytes(kUnitBytes);
}

void BM_Encode(benchmark::State& state) {
  const std::size_t symbol = static_cast<std::size_t>(state.range(0));
  const auto data = unit_data();
  const w4k::fec::FountainEncoder enc(data, symbol, 42);
  const std::size_t k = enc.k();
  // Encode one full unit's worth of repair symbols per iteration (what the
  // sender does when a receiver missed everything).
  w4k::fec::Esi esi = static_cast<w4k::fec::Esi>(k);
  for (auto _ : state) {
    for (std::size_t i = 0; i < k; ++i)
      benchmark::DoNotOptimize(enc.encode(esi + static_cast<w4k::fec::Esi>(i)));
    esi += static_cast<w4k::fec::Esi>(k);
  }
  state.counters["k"] = static_cast<double>(k);
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kUnitBytes));
}

void BM_Decode(benchmark::State& state) {
  const std::size_t symbol = static_cast<std::size_t>(state.range(0));
  const auto data = unit_data();
  const w4k::fec::FountainEncoder enc(data, symbol, 42);
  const std::size_t k = enc.k();
  // Pre-encode k repair symbols (worst case: no systematic reception).
  std::vector<w4k::fec::Symbol> symbols;
  for (std::size_t i = 0; i < k + 2; ++i)
    symbols.push_back(enc.encode(static_cast<w4k::fec::Esi>(k + i)));
  for (auto _ : state) {
    w4k::fec::FountainDecoder dec(k, symbol, data.size(), 42);
    for (const auto& s : symbols) {
      dec.add_symbol(s);
      if (dec.can_decode()) break;
    }
    benchmark::DoNotOptimize(dec.decode());
  }
  state.counters["k"] = static_cast<double>(k);
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kUnitBytes));
}

// --- Raw row-kernel bandwidth (bytes/second shows as MB/s) ------------------

void BM_MulAddRow(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  auto dst = w4k::bench::affine_bytes(n, 7, 3);
  const auto src = w4k::bench::affine_bytes(n, 13, 1);
  for (auto _ : state) {
    w4k::gf256::mul_add_row(dst, src, 0xA7);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetLabel(w4k::gf256::tier_name(w4k::gf256::active_tier()));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}

void BM_ScaleRow(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  auto dst = w4k::bench::affine_bytes(n, 11, 5);
  for (auto _ : state) {
    w4k::gf256::scale_row(dst, 0x53);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetLabel(w4k::gf256::tier_name(w4k::gf256::active_tier()));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}

}  // namespace

BENCHMARK(BM_Encode)->Arg(500)->Arg(1000)->Arg(2000)->Arg(4000)->Arg(6000)
    ->Arg(8000)->Arg(12000)->Arg(16000)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Decode)->Arg(500)->Arg(1000)->Arg(2000)->Arg(4000)->Arg(6000)
    ->Arg(8000)->Arg(12000)->Arg(16000)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_MulAddRow)->Arg(64)->Arg(500)->Arg(6000)->Arg(65536)
    ->Unit(benchmark::kNanosecond);
BENCHMARK(BM_ScaleRow)->Arg(64)->Arg(500)->Arg(6000)->Arg(65536)
    ->Unit(benchmark::kNanosecond);

namespace {

// --- Scalar-vs-SIMD A/B written to BENCH_kernels.json -----------------------

/// Calls fn(reps) in growing batches until ~0.25 s of wall time has
/// accumulated, then returns processed MB per second. fn must process
/// `bytes_per_rep` bytes per rep.
double measure_mbps(std::size_t bytes_per_rep,
                    const std::function<void(std::size_t)>& fn) {
  using clock = std::chrono::steady_clock;
  fn(3);  // warm up tables and caches
  std::size_t reps = 1;
  for (;;) {
    const auto t0 = clock::now();
    fn(reps);
    const double sec = std::chrono::duration<double>(clock::now() - t0).count();
    if (sec >= 0.25) {
      const double bytes =
          static_cast<double>(reps) * static_cast<double>(bytes_per_rep);
      return bytes / sec / 1e6;
    }
    reps = sec > 0.0
               ? std::max(reps + 1, static_cast<std::size_t>(
                                        static_cast<double>(reps) * 0.3 / sec))
               : reps * 4;
  }
}

struct AbResult {
  double scalar_mbps = 0.0;
  double simd_mbps = 0.0;
  double speedup() const {
    return scalar_mbps > 0.0 ? simd_mbps / scalar_mbps : 0.0;
  }
};

/// Runs `fn` under the scalar tier and the best available tier.
AbResult ab_measure(std::size_t bytes_per_rep,
                    const std::function<void(std::size_t)>& fn) {
  using w4k::gf256::Tier;
  AbResult r;
  const Tier best = w4k::gf256::refresh_dispatch();
  w4k::gf256::set_active_tier(Tier::kScalar);
  r.scalar_mbps = measure_mbps(bytes_per_rep, fn);
  w4k::gf256::set_active_tier(best);
  r.simd_mbps = measure_mbps(bytes_per_rep, fn);
  return r;
}

void emit_kernel_json(const char* path) {
  using w4k::gf256::Tier;
  const Tier best = w4k::gf256::refresh_dispatch();

  auto dst = w4k::bench::affine_bytes(kSymbolBytes, 7, 3);
  const auto src = w4k::bench::affine_bytes(kSymbolBytes, 13, 1);
  const AbResult mul_add = ab_measure(kSymbolBytes, [&](std::size_t reps) {
    for (std::size_t r = 0; r < reps; ++r) {
      w4k::gf256::mul_add_row(dst, src, 0xA7);
      benchmark::DoNotOptimize(dst.data());
    }
  });
  const AbResult scale = ab_measure(kSymbolBytes, [&](std::size_t reps) {
    for (std::size_t r = 0; r < reps; ++r) {
      w4k::gf256::scale_row(dst, 0x53);
      benchmark::DoNotOptimize(dst.data());
    }
  });

  const auto data = unit_data();
  const w4k::fec::FountainEncoder enc(data, kSymbolBytes, 42);
  const std::size_t k = enc.k();
  const AbResult encode = ab_measure(kUnitBytes, [&](std::size_t reps) {
    for (std::size_t r = 0; r < reps; ++r)
      for (std::size_t i = 0; i < k; ++i)
        benchmark::DoNotOptimize(
            enc.encode(static_cast<w4k::fec::Esi>(k + i)));
  });

  std::vector<w4k::fec::Symbol> symbols;
  for (std::size_t i = 0; i < k + 2; ++i)
    symbols.push_back(enc.encode(static_cast<w4k::fec::Esi>(k + i)));
  const AbResult decode = ab_measure(kUnitBytes, [&](std::size_t reps) {
    for (std::size_t r = 0; r < reps; ++r) {
      w4k::fec::FountainDecoder dec(k, kSymbolBytes, data.size(), 42);
      for (const auto& s : symbols) {
        dec.add_symbol(s);
        if (dec.can_decode()) break;
      }
      benchmark::DoNotOptimize(dec.decode());
    }
  });

  std::FILE* f = std::fopen(path, "w");
  if (!f) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  const auto entry = [&](const char* name, const AbResult& r,
                         const char* trailing_comma) {
    std::fprintf(f,
                 "    \"%s\": {\"scalar_MBps\": %.1f, \"simd_MBps\": %.1f, "
                 "\"speedup\": %.2f}%s\n",
                 name, r.scalar_mbps, r.simd_mbps, r.speedup(),
                 trailing_comma);
  };
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"simd_tier\": \"%s\",\n", w4k::gf256::tier_name(best));
  std::fprintf(f, "  \"symbol_bytes\": %zu,\n", kSymbolBytes);
  std::fprintf(f, "  \"unit_bytes\": %zu,\n", kUnitBytes);
  std::fprintf(f, "  \"k\": %zu,\n", k);
  std::fprintf(f, "  \"kernels\": {\n");
  entry("mul_add_row", mul_add, ",");
  entry("scale_row", scale, "");
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"fountain\": {\n");
  entry("encode", encode, ",");
  entry("decode", decode, "");
  std::fprintf(f, "  }\n");
  std::fprintf(f, "}\n");
  std::fclose(f);

  std::printf("\nScalar vs %s A/B (MB/s, symbol %zu B, unit %zu B, k=%zu):\n",
              w4k::gf256::tier_name(best), kSymbolBytes, kUnitBytes, k);
  std::printf("  mul_add_row  %8.1f -> %8.1f  (%.2fx)\n", mul_add.scalar_mbps,
              mul_add.simd_mbps, mul_add.speedup());
  std::printf("  scale_row    %8.1f -> %8.1f  (%.2fx)\n", scale.scalar_mbps,
              scale.simd_mbps, scale.speedup());
  std::printf("  encode       %8.1f -> %8.1f  (%.2fx)\n", encode.scalar_mbps,
              encode.simd_mbps, encode.speedup());
  std::printf("  decode       %8.1f -> %8.1f  (%.2fx)\n", decode.scalar_mbps,
              decode.simd_mbps, decode.speedup());
  std::printf("written: %s\n", path);
}

}  // namespace

int main(int argc, char** argv) {
  std::printf(
      "Fig 2: encode/decode time vs symbol size (120 kB unit).\n"
      "paper: U-shape, minimum near 6000 B. here: the expensive-small-"
      "symbol branch\nreproduces; see the file comment for why the right "
      "branch is absent.\n"
      "row kernels dispatch on tier \"%s\" (W4K_FORCE_SCALAR=1 pins "
      "scalar).\n\n",
      w4k::gf256::tier_name(w4k::gf256::active_tier()));
  return w4k::bench::run_gbench(
      "bench_fig2_raptor_timing", argc, argv,
      [] { emit_kernel_json("BENCH_kernels.json"); });
}

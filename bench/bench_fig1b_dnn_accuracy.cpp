// Fig. 1(b): DNN estimation accuracy per layer — estimated vs actual SSIM
// with error bars (average / lowest / highest accuracy), bucketed by the
// highest layer that is partially received.
// Paper: high accuracy across all layers (bars indistinguishable from 1).
#include "common.h"
#include "model/dataset.h"

#include <array>

int main() {
  w4k::bench::BenchMain bm("bench_fig1b_dnn_accuracy");
  using namespace w4k;
  bench::print_header(
      "Fig 1(b): DNN per-layer estimation accuracy",
      "accuracy ~1.0 across all four layers, tight error bars");

  model::DatasetConfig cfg;
  cfg.frames_per_video = 4;
  cfg.fractions_per_frame = 60;
  cfg.seed = 4321;  // fresh draw, disjoint from the training cache's
  const model::Dataset ds =
      model::build_dataset(video::standard_videos(512, 288, 5), cfg);

  model::QualityModel& dnn = bench::quality_model();

  // Bucket test examples by the frontier layer (the first layer that is
  // not fully received) and measure accuracy = 1 - |pred - actual|.
  std::array<std::vector<double>, video::kNumLayers> acc;
  for (const auto& ex : ds.test) {
    int frontier = video::kNumLayers - 1;
    for (int l = 0; l < video::kNumLayers; ++l) {
      if (ex.x[static_cast<std::size_t>(l)] < 0.999) {
        frontier = l;
        break;
      }
    }
    model::Features f;
    for (std::size_t l = 0; l < 4; ++l) {
      f.fraction[l] = ex.x[l];
      f.up_to_layer[l] = ex.x[l + 4];
    }
    f.blank = ex.x[8];
    const double err = std::abs(dnn.predict(f) - ex.y);
    acc[static_cast<std::size_t>(frontier)].push_back(1.0 - err);
  }

  std::printf("%-10s %-8s %-10s %-10s %-10s\n", "frontier", "n", "avg acc",
              "min acc", "max acc");
  bool ok = true;
  for (int l = 0; l < video::kNumLayers; ++l) {
    const Summary s = summarize(acc[static_cast<std::size_t>(l)]);
    std::printf("layer %-4d %-8zu %-10.4f %-10.4f %-10.4f\n", l, s.count,
                s.mean, s.min, s.max);
    ok &= s.mean > 0.97;
  }
  std::printf("\nshape check (avg accuracy > 0.97 at every layer): %s\n",
              ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}

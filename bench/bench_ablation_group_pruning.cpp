// Ablation: group-enumeration pruning (Sec. 2.4 "we omit the groups whose
// throughput is below a threshold to speed up computation"). Sweeps the
// rate threshold and reports surviving groups, optimizer wall time, and
// delivered quality — quantifying the compute/quality trade.
#include "common.h"

#include "sched/workspace.h"

#include <chrono>

int main() {
  using namespace w4k;
  bench::BenchMain bm("bench_ablation_group_pruning");
  bench::print_header(
      "Ablation: group pruning threshold vs optimizer cost and quality",
      "aggressive pruning cuts optimizer time with little quality loss");

  Rng rng(2025);
  channel::PropagationConfig prop;
  const auto users = core::place_users_random(6, 8.0, 16.0, 2.0944, rng);
  const auto channels = core::channels_for(prop, users);

  core::Experiment exp(bench::quality_model(), bench::hr_contexts());
  exp.codebook(bench::sector_codebook());
  exp.channels(channels);

  std::printf("%-16s %-10s %-14s %-12s\n", "threshold(Mbps)", "groups",
              "decide(ms)", "mean SSIM");
  double unpruned_ssim = 0.0;
  bool shape_ok = true;
  double prev_ms = 1e18;
  for (double threshold : {0.0, 300.0, 700.0, 1250.0}) {
    core::SessionConfig& cfg = exp.config();
    cfg.group_enum.rate_threshold = Mbps{threshold};
    cfg.seed = 2025;

    // Count groups the config admits.
    Rng grng(1);
    sched::SchedWorkspace gws;
    const auto groups =
        sched::enumerate_groups(cfg.scheme, channels, bench::sector_codebook(),
                                grng.next(), cfg.group_enum, nullptr, gws);

    const auto t0 = std::chrono::steady_clock::now();
    const auto run = exp.run_static(6);
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t0)
                          .count() /
                      6.0;
    const double ssim = run.ssim_summary().mean;
    std::printf("%-16.0f %-10zu %-14.2f %-12.4f\n", threshold, groups.size(),
                ms, ssim);
    if (threshold == 0.0) unpruned_ssim = ssim;
    // Moderate pruning must be quality-free; the most aggressive setting
    // (6 groups left) may pay a visible but bounded price.
    if (threshold <= 700.0) shape_ok &= ssim > unpruned_ssim - 0.01;
    else shape_ok &= ssim > unpruned_ssim - 0.05;
    prev_ms = std::min(prev_ms, ms);
  }
  std::printf("\nshape check (moderate pruning free, aggressive bounded): "
              "%s\n",
              shape_ok ? "PASS" : "FAIL");
  return shape_ok ? 0 : 1;
}

// Allocation A/B of the per-frame hot path (DESIGN.md Sec. 4g).
//
// Runs the pinned static 4-user scenario through both frame-path surfaces:
//   wrapper    — step()/decide(), fresh FrameOutcome/Decision per call
//                (the pre-arena "before" shape);
//   workspace  — step_into()/decide_into(), every buffer reused
//                (the zero-allocation "after" shape).
// Reports heap allocations per frame (exact under a W4K_COUNT_ALLOCS
// build, n/a otherwise) and the step/decide latency distribution of each
// surface, written to BENCH_alloc.json for cross-commit comparison. The
// workspace path's post-warmup allocation count is the number the tier-1
// alloc gate pins to zero; this bench is the measurement twin that also
// shows what the wrappers cost.
#include "common.h"

#include "common/alloc_count.h"

#include <algorithm>
#include <chrono>
#include <fstream>

namespace {

using namespace w4k;

constexpr int kWarmupFrames = 3;
constexpr int kFrames = 120;

struct PathStats {
  double allocs_per_frame = 0.0;  ///< mean over measured frames
  std::uint64_t allocs_max = 0;   ///< worst single frame
  double step_p99_ms = 0.0;
  double step_mean_ms = 0.0;
  double decide_p99_ms = 0.0;
};

double percentile(std::vector<double> v, double q) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  return v[static_cast<std::size_t>(q * static_cast<double>(v.size() - 1))];
}

double mean(const std::vector<double>& v) {
  double s = 0.0;
  for (double x : v) s += x;
  return v.empty() ? 0.0 : s / static_cast<double>(v.size());
}

/// One full measurement of a frame-path surface. `use_workspace` selects
/// step_into/decide_into vs the allocating wrappers; both run the same
/// pinned scenario so the outputs are byte-identical and only the
/// allocation/latency profile differs.
PathStats measure_path(bool use_workspace,
                       const std::vector<linalg::CVector>& channels,
                       const std::vector<core::FrameContext>& contexts) {
  core::SessionConfig cfg = core::SessionConfig::scaled(bench::kWidth,
                                                        bench::kHeight);
  cfg.seed = 2025;
  core::MulticastSession session(cfg, bench::quality_model(),
                                 beamforming::Codebook{});
  const fault::FrameFaults no_faults;
  core::FrameOutcome outcome;

  PathStats out;
  std::vector<double> step_ms;
  std::vector<std::uint64_t> allocs;
  step_ms.reserve(kFrames);
  allocs.reserve(kFrames);
  for (int f = 0; f < kWarmupFrames + kFrames; ++f) {
    const core::FrameContext& ctx =
        contexts[static_cast<std::size_t>(f) % contexts.size()];
    const alloc_count::Scope scope;
    const auto t0 = std::chrono::steady_clock::now();
    if (use_workspace) {
      session.step_into(channels, channels, ctx, no_faults, outcome);
    } else {
      outcome = session.step(channels, channels, ctx);
    }
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
    if (f < kWarmupFrames) continue;
    step_ms.push_back(ms);
    allocs.push_back(scope.taken());
  }
  out.step_p99_ms = percentile(step_ms, 0.99);
  out.step_mean_ms = mean(step_ms);
  double total = 0.0;
  for (std::uint64_t a : allocs) {
    total += static_cast<double>(a);
    out.allocs_max = std::max(out.allocs_max, a);
  }
  out.allocs_per_frame = total / static_cast<double>(allocs.size());

  // decide()-only latency on a fresh session (its own warmup, so workspace
  // sizing is not inherited from the frame loop above).
  core::MulticastSession dsession(cfg, bench::quality_model(),
                                  beamforming::Codebook{});
  const std::vector<std::uint8_t> exclude(channels.size(), 0);
  core::MulticastSession::Decision decision;
  std::vector<double> decide_ms;
  decide_ms.reserve(kFrames);
  for (int f = 0; f < kWarmupFrames + kFrames; ++f) {
    const auto t0 = std::chrono::steady_clock::now();
    if (use_workspace) {
      dsession.decide_into(channels, contexts.front(), exclude, decision);
    } else {
      decision = dsession.decide(channels, contexts.front(), exclude);
    }
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
    if (f >= kWarmupFrames) decide_ms.push_back(ms);
  }
  out.decide_p99_ms = percentile(decide_ms, 0.99);
  return out;
}

void print_path(const char* label, const PathStats& s, bool counting) {
  if (counting)
    std::printf("%-10s allocs/frame %8.1f (max %6llu)  step p99 %7.3f ms  "
                "decide p99 %7.3f ms\n",
                label, s.allocs_per_frame,
                static_cast<unsigned long long>(s.allocs_max), s.step_p99_ms,
                s.decide_p99_ms);
  else
    std::printf("%-10s allocs/frame      n/a             step p99 %7.3f ms  "
                "decide p99 %7.3f ms\n",
                label, s.step_p99_ms, s.decide_p99_ms);
}

}  // namespace

int main() {
  bench::BenchMain bm("bench_alloc", /*telemetry=*/false);
  bench::print_header(
      "Zero-allocation frame path: wrapper vs workspace surface",
      "workspace path reaches 0 allocs/frame after warmup; wrappers pay "
      "per-call heap traffic");

  const bool counting = alloc_count::counting_available();
  bm.set("count_allocs_build", counting ? "on" : "off");
  bm.set("frames", static_cast<std::int64_t>(kFrames));
  bm.set("warmup_frames", static_cast<std::int64_t>(kWarmupFrames));
  if (!counting)
    std::printf("# W4K_COUNT_ALLOCS is off: allocation counts read as n/a; "
                "latency columns remain valid\n");

  Rng rng(5);
  channel::PropagationConfig prop;
  const auto channels = core::channels_for(
      prop, core::place_users_fixed(4, 3.0, 1.047, rng));
  const auto& contexts = bench::hr_contexts();

  const PathStats wrapper = measure_path(false, channels, contexts);
  const PathStats workspace = measure_path(true, channels, contexts);
  print_path("wrapper", wrapper, counting);
  print_path("workspace", workspace, counting);

  std::ofstream os("BENCH_alloc.json");
  os << "{\n"
     << "  \"counting_available\": " << (counting ? "true" : "false")
     << ",\n"
     << "  \"frames\": " << kFrames << ",\n"
     << "  \"warmup_frames\": " << kWarmupFrames << ",\n";
  const auto emit = [&os](const char* name, const PathStats& s,
                          const char* tail) {
    os << "  \"" << name << "\": {\"allocs_per_frame\": "
       << s.allocs_per_frame << ", \"allocs_max\": " << s.allocs_max
       << ", \"step_mean_ms\": " << s.step_mean_ms
       << ", \"step_p99_ms\": " << s.step_p99_ms
       << ", \"decide_p99_ms\": " << s.decide_p99_ms << "}" << tail << "\n";
  };
  emit("wrapper", wrapper, ",");
  emit("workspace", workspace, "");
  os << "}\n";
  os.close();
  std::printf("written: BENCH_alloc.json\n");

  // Shape check: in a counting build the workspace path must be exactly
  // allocation-free after warmup — the same contract the tier-1 gate pins.
  bool ok = true;
  if (counting) {
    ok = workspace.allocs_max == 0;
    std::printf("workspace steady-state allocs: %llu (%s)\n",
                static_cast<unsigned long long>(workspace.allocs_max),
                ok ? "PASS" : "FAIL");
  }
  return ok ? 0 : 1;
}
